//! A bin target: panics are operator-facing, so U003/U004 do not apply;
//! the D002 wall-clock reads are covered by the corpus lint.toml.

use std::time::SystemTime;

fn main() {
    let t = SystemTime::now();
    let _ = t.elapsed().unwrap();
    println!("ok");
}
