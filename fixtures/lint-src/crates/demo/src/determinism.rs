//! Planted determinism defects for the source-audit golden test.
//! Each marked line must produce exactly the code named in its comment.

use std::collections::HashMap; // D001
use std::time::Instant;

pub fn elapsed_ms() -> f64 {
    let start = Instant::now(); // D002
    start.elapsed().as_secs_f64() * 1e3
}

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng(); // D003
    rng.gen()
}

pub fn total(weights: &HashMap<u32, f64>) -> f64 {
    // ^ D001 on the signature line as well
    weights.values().sum::<f64>() // D004: float reduction over a hash view
}
