//! Tricky constructs that must stay clean — the false-positive guard of
//! the golden test. Mentions of HashMap or Instant::now() in prose and
//! strings do not count.

use std::collections::BTreeMap;

pub fn describe() -> &'static str {
    "uses HashMap and Instant::now() by name only"
}

pub fn dim_cast(xs: &[f64], dim: usize) -> f64 {
    // `dim as i32` is an integer operand; the f64 nearby is irrelevant.
    (xs.len() as f64).powi(dim as i32)
}

pub fn hex_cast() -> usize {
    0x9E37 as usize // the hex `E` is not a float exponent
}

pub fn rounded(x: f64) -> u64 {
    x.round() as u64
}

pub fn keyed() -> BTreeMap<u32, f64> {
    BTreeMap::new()
}

pub struct Parser {
    pos: usize,
}

impl Parser {
    fn expect(&mut self, want: u8) -> Result<(), String> {
        let _ = want;
        self.pos += 1;
        Ok(())
    }

    pub fn parse(&mut self) -> Result<(), String> {
        // A domain `expect` returning Result, propagated with `?`.
        self.expect(b'{')?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn unwrap_and_hashes_are_fine_in_tests() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.get(&0).copied().is_none());
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
