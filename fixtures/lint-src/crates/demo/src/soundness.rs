//! Planted soundness defects for the source-audit golden test.

pub fn raw_read(p: *const u8) -> u8 {
    unsafe { *p } // U001: no SAFETY comment
}

pub fn raw_read_documented(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn to_ticks(seconds: f64) -> u64 {
    (seconds * 1e9) as u64 // U002: truncating float cast
}

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // U003
}

pub fn header(o: Option<u8>) -> u8 {
    o.expect(magic()) // U003: message is not a string literal
}

fn magic() -> &'static str {
    "m"
}

pub fn documented(o: Option<u8>) -> u8 {
    o.expect("set by the constructor") // U004: documented panic inventory
}
