//! End-to-end tests of the `chebymc` command-line binary: generate a
//! workload file, analyze, design, and simulate it through real process
//! invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn chebymc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chebymc-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn help_prints_usage() {
    let out = chebymc(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
    assert!(text.contains("simulate"));
    assert!(text.contains("chebymc exp run"), "help must list exp");
}

#[test]
fn version_flag_prints_the_version() {
    for flag in ["--version", "-V", "version"] {
        let out = chebymc(&[flag]);
        assert!(out.status.success(), "{flag} must succeed");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.trim().starts_with("chebymc 0."),
            "{flag} printed {text:?}"
        );
    }
}

#[test]
fn typos_suggest_the_nearest_subcommand() {
    let cases = [
        ("desing", "design"),
        ("analyse", "analyze"),
        ("simluate", "simulate"),
        ("exps", "exp"),
    ];
    for (typo, expected) in cases {
        let out = chebymc(&[typo]);
        assert!(!out.status.success());
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("did you mean `{expected}`?")),
            "`{typo}` should suggest `{expected}`: {err}"
        );
    }
    // Nothing close → no suggestion.
    let out = chebymc(&["frobnicate"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!err.contains("did you mean"), "{err}");
}

#[test]
fn missing_subcommand_fails_with_usage() {
    let out = chebymc(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = chebymc(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn generate_analyze_design_simulate_pipeline() {
    let raw = tmp("raw.json");
    let designed = tmp("designed.json");

    // generate
    let out = chebymc(&[
        "generate",
        "--u",
        "0.6",
        "--seed",
        "3",
        "-o",
        raw.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(raw.exists());

    // analyze (pessimistic start: P_MS = 1 because C_LO = C_HI < ACET+nσ? no:
    // C_LO = C_HI is the max level, bound < 1; just check the fields print).
    let out = chebymc(&["analyze", raw.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P_MS bound"));
    assert!(text.contains("schedulable"));

    // design (GA) and write the designed workload.
    let out = chebymc(&[
        "design",
        raw.to_str().unwrap(),
        "--seed",
        "1",
        "-o",
        designed.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("schedulable  = true"), "{text}");
    assert!(designed.exists());

    // The designed file re-loads as a valid workload with lower U_HC^LO.
    let designed_json = std::fs::read_to_string(&designed).unwrap();
    let w = chebymc::task::workload::Workload::load_json(&designed_json).unwrap();
    assert!(w.tasks.u_hc_lo() < w.tasks.u_hc_hi());

    // simulate the designed system.
    let out = chebymc(&[
        "simulate",
        designed.to_str().unwrap(),
        "--seconds",
        "10",
        "--policy",
        "degrade:0.5",
        "--model",
        "profile",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("HC deadline misses   = 0"), "{text}");

    let _ = std::fs::remove_file(&raw);
    let _ = std::fs::remove_file(&designed);
}

#[test]
fn design_uniform_n_reports_factor() {
    let raw = tmp("uniform.json");
    let out = chebymc(&[
        "generate",
        "--u",
        "0.5",
        "--seed",
        "9",
        "-o",
        raw.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = chebymc(&["design", raw.to_str().unwrap(), "--uniform-n", "4"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("n = 4.00"), "{text}");
    let _ = std::fs::remove_file(&raw);
}

#[test]
fn design_handles_lc_only_workloads() {
    // A workload with no HC tasks has the trivial design (empty factor
    // vector); the CLI must not crash on it.
    let path = tmp("lc-only.json");
    let out = chebymc(&[
        "generate",
        "--u",
        "0.4",
        "--seed",
        "5",
        "--p-high",
        "0.0",
        "-o",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = chebymc(&["design", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("P_MS bound   = 0.0000"), "{text}");
    assert!(text.contains("schedulable  = true"), "{text}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn exp_run_trace_and_trace_summary_round_trip() {
    let store = tmp("trace-store.jsonl");
    let trace = tmp("trace-out.jsonl");
    for p in [&store, &trace] {
        let _ = std::fs::remove_file(p);
    }
    let out = chebymc(&[
        "exp",
        "run",
        "fig5",
        "--sets",
        "1",
        "--threads",
        "1",
        "--quiet",
        "--store",
        store.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("trace written to"),
        "stderr should point at the trace file"
    );

    // Every trace line is an object with a known kind, led by the meta
    // header.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.lines().next().unwrap().contains("\"k\":\"meta\""));
    assert!(text.lines().count() > 1, "trace must hold events");

    let out = chebymc(&["trace", "summary", trace.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("schema 1"), "{rendered}");
    assert!(rendered.contains("exp.unit"), "{rendered}");
    assert!(rendered.contains("store.fsync"), "{rendered}");

    for p in [&store, &trace] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn trace_summary_rejects_garbage() {
    let out = chebymc(&["trace", "summary", "/nonexistent/missing.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let bad = tmp("not-a-trace.jsonl");
    std::fs::write(&bad, "{\"hello\": 1}\n").unwrap();
    let out = chebymc(&["trace", "summary", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("not a valid chebymc trace"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn simulate_rejects_bad_flags() {
    let raw = tmp("badflags.json");
    let out = chebymc(&["generate", "-o", raw.to_str().unwrap()]);
    assert!(out.status.success());
    let out = chebymc(&["simulate", raw.to_str().unwrap(), "--policy", "nonsense"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown policy"));
    let out = chebymc(&["simulate", raw.to_str().unwrap(), "--model", "warp"]);
    assert!(!out.status.success());
    let out = chebymc(&["analyze"]);
    assert!(!out.status.success());
    let out = chebymc(&["analyze", "/nonexistent/definitely-missing.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let _ = std::fs::remove_file(&raw);
}

#[test]
fn fault_sweep_runs_clean_and_reports_counts() {
    let out = chebymc(&[
        "fault", "sweep", "--seed", "3", "--count", "30", "--ops", "12",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("30 schedules"), "{text}");
    assert!(text.contains("invariant held"), "{text}");
    // A sweep that never crashed or never injected an error would be
    // vacuous — the report makes that visible, so check it here too.
    let crashes: u64 = text
        .split(", ")
        .find_map(|part| part.strip_suffix(" crashes"))
        .and_then(|n| n.trim().parse().ok())
        .expect("report lists crashes");
    assert!(crashes > 0, "{text}");
}

#[test]
fn fault_sweep_rejects_bad_flags() {
    let out = chebymc(&["fault"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("sweep"));

    let out = chebymc(&["fault", "resect"]);
    assert!(!out.status.success());

    let out = chebymc(&["fault", "sweep", "--count", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--count"));

    let out = chebymc(&["fault", "sweep", "--ops", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--ops"));

    let out = chebymc(&["fault", "sweep", "--bogus", "1"]);
    assert!(!out.status.success());
}

#[test]
fn help_lists_fault_sweep() {
    let out = chebymc(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chebymc fault sweep"), "help must list fault");
    assert!(text.contains("reproduces"), "{text}");
}

#[test]
fn serve_with_real_worker_processes_matches_a_serial_run() {
    use std::io::BufRead;

    let serial = tmp("serve-serial.jsonl");
    let ckpt = tmp("serve-ckpt.jsonl");
    let merged = tmp("serve-merged.jsonl");
    let addr_file = tmp("serve-addr.txt");
    for p in [&serial, &ckpt, &merged, &addr_file] {
        let _ = std::fs::remove_file(p);
    }

    // The byte-identity reference: the same campaign run serially.
    let out = chebymc(&[
        "exp",
        "run",
        "table2",
        "--samples",
        "150",
        "--store",
        serial.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut serve = Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .args([
            "serve",
            "table2",
            "--samples",
            "150",
            "--store",
            ckpt.to_str().unwrap(),
            "--addr-file",
            addr_file.to_str().unwrap(),
            "-o",
            merged.to_str().unwrap(),
            "--leases",
            "4",
            "--timeout-ms",
            "2000",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve spawns");
    // Keep the stdout pipe open for serve's whole lifetime — dropping it
    // would make its completion summary a broken-pipe panic.
    let mut serve_stdout = std::io::BufReader::new(serve.stdout.take().expect("piped stdout"));
    let mut first_line = String::new();
    serve_stdout
        .read_line(&mut first_line)
        .expect("serve announces its address");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement {first_line:?}"))
        .to_string();

    // One worker by fixed address, one discovering it through the file.
    // Units are throttled so the campaign outlives both process startups
    // — otherwise one fast worker could drain it before the other ever
    // connects.
    let workers: Vec<_> = [
        vec![
            "worker",
            "--connect",
            addr.as_str(),
            "--throttle-ms",
            "10",
            "--quiet",
        ],
        vec![
            "worker",
            "--connect-file",
            addr_file.to_str().unwrap(),
            "--throttle-ms",
            "10",
            "--quiet",
        ],
    ]
    .into_iter()
    .map(|args| {
        Command::new(env!("CARGO_BIN_EXE_chebymc"))
            .args(&args)
            .spawn()
            .expect("worker spawns")
    })
    .collect();

    let serve_status = serve.wait().expect("serve exits");
    drop(serve_stdout);
    assert!(serve_status.success(), "serve failed");
    for mut w in workers {
        let status = w.wait().expect("worker exits");
        assert!(status.success(), "worker failed");
    }

    let merged_bytes = std::fs::read(&merged).expect("merged store written");
    let serial_bytes = std::fs::read(&serial).expect("serial store written");
    assert_eq!(
        merged_bytes, serial_bytes,
        "distributed merge must be byte-identical to the serial run"
    );
    assert_eq!(
        std::fs::read_to_string(&addr_file).unwrap(),
        "",
        "completion withdraws the published address"
    );

    for p in [&serial, &ckpt, &merged, &addr_file] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn serve_rejects_bad_invocations() {
    let out = chebymc(&["serve"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("campaign name"));

    let out = chebymc(&["serve", "table2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store"));

    let out = chebymc(&["worker"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--connect"));

    let out = chebymc(&["worker", "--connect", "1.2.3.4:1", "--connect-file", "x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one"));
}

#[test]
fn exp_status_breaks_completion_down_per_shard() {
    let store = tmp("status-shards.jsonl");
    let _ = std::fs::remove_file(&store);

    // Run only stripe 0/2: status must show it complete and 1/2 empty.
    let out = chebymc(&[
        "exp",
        "run",
        "table2",
        "--samples",
        "150",
        "--store",
        store.to_str().unwrap(),
        "--shard",
        "0/2",
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = chebymc(&["exp", "status", store.to_str().unwrap(), "--shards", "2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("shard 0/2  13/13 units  (complete)"),
        "{text}"
    );
    assert!(text.contains("shard 1/2  0/12 units"), "{text}");

    let out = chebymc(&["exp", "status", store.to_str().unwrap(), "--shards", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards"));

    let _ = std::fs::remove_file(&store);
}
