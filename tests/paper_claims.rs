//! Small-scale checks of the paper's headline claims — the qualitative
//! *shapes* of its tables and figures, run fast enough for CI. The full
//! regeneration lives in `crates/bench`'s experiment binaries.

use chebymc::core::policy::paper_lambda_baselines;
use chebymc::prelude::*;
use rand::SeedableRng;

/// Table II's structure: the analysis column is exactly `1/(1+n²)` and the
/// measured column is far below it for every benchmark.
#[test]
fn table2_analysis_column_and_measured_slack() {
    let analysis: Vec<f64> = (0..=4).map(|n| one_sided_bound(n as f64) * 100.0).collect();
    assert_eq!(analysis[0], 100.0);
    assert_eq!(analysis[1], 50.0);
    assert!((analysis[2] - 20.0).abs() < 1e-9);
    assert!((analysis[3] - 10.0).abs() < 1e-9);
    assert!((analysis[4] - 5.882).abs() < 0.001);

    for bench in benchmarks::table2_suite().unwrap() {
        let trace = bench.sample_trace(20_000, 77).unwrap();
        let s = trace.summary().unwrap();
        // At n = 2 the paper measures ~2–3 % against the 20 % bound: at
        // least a 4x gap holds for every benchmark model.
        let measured = trace
            .overrun_rate(s.mean() + 2.0 * s.std_dev())
            .unwrap()
            .rate();
        assert!(
            measured < 0.05,
            "{}: measured {measured} not ≪ 0.2",
            bench.name()
        );
    }
}

/// Fig. 2's structure: as the uniform n grows, both P_MS and max U_LC^LO
/// fall, and the Eq. 13 objective peaks at an interior n.
#[test]
fn fig2_shape_interior_optimum() {
    // The paper's case study: U_HC^HI = 0.85.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let ts = generate_hc_taskset(0.85, &GeneratorConfig::default(), &mut rng).unwrap();
    let problem = WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap();

    let sweep = chebymc::opt::grid::integer_sweep(&problem, 40).unwrap();
    for pair in sweep.windows(2) {
        assert!(pair[1].objective.p_ms <= pair[0].objective.p_ms + 1e-12);
        assert!(pair[1].objective.max_u_lc_lo <= pair[0].objective.max_u_lc_lo + 1e-12);
    }
    let best =
        chebymc::opt::grid::best_uniform(&problem, &(0..=40).map(f64::from).collect::<Vec<_>>())
            .unwrap();
    assert!(best.n > 0.0, "n = 0 has P_MS = 1 and zero objective");
    assert!(best.n < 40.0, "the objective must decay for huge n");
    assert!(best.objective.fitness > 0.0);
}

/// Fig. 3's structure: P_MS grows with U_HC^HI at fixed n; max U_LC^LO
/// falls; the optimum uniform n (weakly) decreases with utilisation.
#[test]
fn fig3_shape_utilization_trends() {
    let batch = BatchConfig {
        task_sets: 30,
        seed: 9,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let policy = WcetPolicy::ChebyshevUniform { n: 10.0 };
    let pts = evaluate_policy_over_utilization(&[0.4, 0.6, 0.8], &policy, &batch).unwrap();
    assert!(pts[0].mean_p_ms < pts[1].mean_p_ms);
    assert!(pts[1].mean_p_ms < pts[2].mean_p_ms);
    assert!(pts[0].mean_max_u_lc_lo > pts[2].mean_max_u_lc_lo);
}

/// Fig. 4/5's headline: the GA scheme dominates every λ-range baseline on
/// the combined objective, at low and high utilisation alike.
#[test]
fn fig4_fig5_scheme_dominates_lambda_baselines() {
    let batch = BatchConfig {
        task_sets: 25,
        seed: 31,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let scheme = WcetPolicy::ChebyshevGa {
        ga: GaConfig {
            population_size: 32,
            generations: 25,
            ..GaConfig::default()
        },
        problem: ProblemConfig::default(),
    };
    let us = [0.4, 0.8];
    let ours = evaluate_policy_over_utilization(&us, &scheme, &batch).unwrap();
    for baseline in paper_lambda_baselines() {
        let theirs = evaluate_policy_over_utilization(&us, &baseline, &batch).unwrap();
        for (o, t) in ours.iter().zip(&theirs) {
            assert!(
                o.mean_objective >= t.mean_objective,
                "U = {}: scheme {} vs {} {}",
                o.u_hc_hi,
                o.mean_objective,
                baseline.name(),
                t.mean_objective
            );
        }
    }
    // And the paper's worst-case P_MS claim shape: bounded around ~10 %.
    assert!(
        ours.iter().all(|p| p.mean_p_ms < 0.25),
        "P_MS stays bounded: {:?}",
        ours.iter().map(|p| p.mean_p_ms).collect::<Vec<_>>()
    );
}

/// Fig. 6's structure: acceptance is 1 at low bounds, decays at high
/// bounds, and the scheme's curve sits on or above the λ baseline for both
/// scheduling approaches.
#[test]
fn fig6_acceptance_ordering() {
    let batch = BatchConfig {
        task_sets: 30,
        seed: 17,
        generator: GeneratorConfig::default(),
        threads: 0,
    };
    let bounds = [0.5, 0.8, 0.95];
    let ours = WcetPolicy::ChebyshevUniform { n: 3.0 };
    let baseline = WcetPolicy::LambdaRange {
        lambda_min: 0.25,
        seed: 0,
    };
    for approach in [
        SchedulingApproach::BaruahDropAll,
        SchedulingApproach::LiuDegrade { fraction: 0.5 },
    ] {
        let a = acceptance_ratio(&bounds, &ours, approach, &batch).unwrap();
        let b = acceptance_ratio(&bounds, &baseline, approach, &batch).unwrap();
        assert_eq!(a[0].ratio, 1.0, "everything fits at U = 0.5");
        for (x, y) in a.iter().zip(&b) {
            assert!(
                x.ratio >= y.ratio,
                "{approach:?} at U = {}: ours {} < baseline {}",
                x.u_bound,
                x.ratio,
                y.ratio
            );
        }
        // Monotone decay.
        assert!(a[0].ratio >= a[1].ratio && a[1].ratio >= a[2].ratio);
    }
}

/// Table I's motivating observation: no single λ works across benchmarks —
/// at λ = 1/16 some benchmarks overrun on almost every job while others
/// almost never do.
#[test]
fn table1_no_single_lambda_fits_all() {
    let mut rates = Vec::new();
    for bench in benchmarks::all().unwrap() {
        let trace = bench.sample_trace(20_000, 55).unwrap();
        let level = bench.spec().wcet_pes / 16.0;
        rates.push((
            bench.name().to_string(),
            trace.overrun_rate(level).unwrap().rate(),
        ));
    }
    let max = rates.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    let min = rates.iter().map(|(_, r)| *r).fold(1.0f64, f64::min);
    assert!(
        max > 0.9,
        "some benchmark must overrun WCET/16 almost always: {rates:?}"
    );
    assert!(
        min < 0.05,
        "some benchmark must almost never overrun WCET/16: {rates:?}"
    );
    // Whereas ACET-relative levels behave uniformly (~50 % at the mean).
    for bench in benchmarks::all().unwrap() {
        let trace = bench.sample_trace(20_000, 56).unwrap();
        let rate = trace.overrun_rate(bench.spec().acet).unwrap().rate();
        assert!(
            (0.4..0.6).contains(&rate),
            "{}: ACET-level overrun {rate}",
            bench.name()
        );
    }
}
