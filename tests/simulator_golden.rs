//! Golden tests: hand-computed schedules checked against the simulator,
//! nanosecond-exact. If any of these fail, the engine's dispatching,
//! mode-switch timing, or accounting changed semantics.

use chebymc::prelude::*;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn lc(id: u32, c_ms: u64, p_ms: u64) -> McTask {
    McTask::builder(TaskId::new(id))
        .period(ms(p_ms))
        .c_lo(ms(c_ms))
        .build()
        .unwrap()
}

fn hc(id: u32, c_lo_ms: u64, c_hi_ms: u64, p_ms: u64) -> McTask {
    McTask::builder(TaskId::new(id))
        .criticality(Criticality::Hi)
        .period(ms(p_ms))
        .c_lo(ms(c_lo_ms))
        .c_hi(ms(c_hi_ms))
        .build()
        .unwrap()
}

/// Two LC tasks at exactly full utilisation: EDF keeps the processor busy
/// every instant and misses nothing.
///
/// Hand schedule over one 10 ms hyperperiod (T1: C=4 P=10, T2: C=3 P=5):
/// T2 [0,3) → T1 [3,7) → T2' [7,10). Busy the whole time.
#[test]
fn full_utilization_edf_schedule() {
    let ts = TaskSet::from_tasks(vec![lc(0, 4, 10), lc(1, 3, 5)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(20),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullLoBudget,
        x_factor: Some(1.0),
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.busy_time, ms(20), "U = 1 keeps the core busy");
    assert_eq!(m.lc_released, 2 + 4);
    // The final T2 job completes exactly at the horizon; the simulator
    // stops *at* the horizon, so that completion is not recorded.
    assert_eq!(m.lc_completed, 5);
    assert_eq!(m.lc_deadline_misses, 0);
    assert_eq!(m.mode_switches, 0);
}

/// One HC task that always overruns plus one LC task: the switch fires the
/// instant the HC job's LO budget (2 ms) is exhausted, the LC job is
/// discarded, the HC job finishes at 6 ms, and the system drops back to LO.
///
/// Per 10 ms period: 1 switch at t = 2, 4 ms in HI mode, 6 ms busy,
/// 1 LC job dropped.
#[test]
fn mode_switch_timing_is_exact() {
    let ts = TaskSet::from_tasks(vec![hc(0, 2, 6, 10), lc(1, 3, 10)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(50),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullHiBudget,
        x_factor: None, // x = 0.2/(1-0.3) = 2/7; VD ≈ 2.857 ms < 10 ms
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.mode_switches, 5, "one switch per period");
    assert_eq!(m.time_in_hi, ms(20), "4 ms of HI mode per period");
    assert_eq!(m.busy_time, ms(30), "6 ms of execution per period");
    assert_eq!(m.lc_dropped_at_switch, 5);
    assert_eq!(m.lc_rejected_in_hi, 0, "LC releases align with LO mode");
    assert_eq!(m.hc_completed, 5);
    assert_eq!(m.hc_deadline_misses, 0);
    assert_eq!(m.lc_completed, 0);
}

/// Same scenario under Degrade(0.5): the LC job survives the switch with a
/// 1.5 ms budget and completes degraded right after the HC job.
///
/// Per period: HC [0,2) LO + [2,6) HI; LC degraded [6,7.5); busy 7.5 ms.
#[test]
fn degraded_lc_execution_is_exact() {
    let ts = TaskSet::from_tasks(vec![hc(0, 2, 6, 10), lc(1, 3, 10)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(50),
        lc_policy: LcPolicy::Degrade(0.5),
        exec_model: JobExecModel::FullHiBudget,
        x_factor: None,
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.mode_switches, 5);
    assert_eq!(m.lc_degraded, 5, "every LC job completes degraded");
    assert_eq!(m.lc_dropped_at_switch, 0);
    assert_eq!(m.busy_time, ms(30) + Duration::from_micros(5 * 1_500));
    assert_eq!(m.hc_deadline_misses, 0);
    assert_eq!(m.lc_deadline_misses, 0);
}

/// Virtual deadlines really reorder execution: with x < 1 an HC job with a
/// later real deadline preempts an LC job with an earlier one.
///
/// HC: C_LO = 2, P = 20 (VD factor forced to 0.1 → VD = 2 ms).
/// LC: C = 4, P = 10. At t = 0 EDF-VD runs HC first (VD 2 ms < 10 ms);
/// plain EDF (x = 1) runs LC first (10 ms < 20 ms).
#[test]
fn virtual_deadlines_change_the_dispatch_order() {
    let ts = TaskSet::from_tasks(vec![hc(0, 2, 2, 20), lc(1, 4, 10)]).unwrap();
    // A 3 ms horizon admits exactly one completed job plus a partial one.
    let mut cfg = SimConfig {
        horizon: ms(3),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullLoBudget,
        x_factor: Some(0.1),
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let vd = simulate(&ts, &cfg).unwrap();
    assert_eq!(vd.hc_completed, 1, "EDF-VD runs the HC job first");
    assert_eq!(vd.lc_completed, 0);

    cfg.x_factor = Some(1.0);
    let edf = simulate(&ts, &cfg).unwrap();
    assert_eq!(edf.hc_completed, 0, "plain EDF runs the LC job first");
}

/// An idle gap: a single 1 ms job per 10 ms period leaves exactly 90 %
/// idle, and the job conservation numbers are exact.
#[test]
fn idle_accounting_is_exact() {
    let ts = TaskSet::from_tasks(vec![lc(0, 1, 10)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(100),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullLoBudget,
        x_factor: Some(1.0),
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.busy_time, ms(10));
    assert!((m.utilization() - 0.1).abs() < 1e-12);
    assert_eq!(m.lc_released, 10);
    assert_eq!(m.lc_completed, 10);
}

/// Deadline-miss timing: a genuinely overloaded LO mode misses at the
/// first deadline boundary, not later.
///
/// Two LC tasks with C = 6, P = 10 (U = 1.2): by t = 10 only 10 ms of the
/// 12 ms demand fits, so exactly one of the two first jobs misses at
/// t = 10; the pattern repeats.
#[test]
fn overload_misses_at_the_deadline_boundary() {
    let ts = TaskSet::from_tasks(vec![lc(0, 6, 10), lc(1, 6, 10)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(21), // one tick past t = 20 so the second miss lands inside
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullLoBudget,
        x_factor: Some(1.0),
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    // Each hyperperiod: one job completes (6 ms), the other misses at the
    // period boundary having run only 4 ms.
    assert_eq!(m.lc_deadline_misses, 2);
    assert_eq!(m.lc_completed, 2);
    assert_eq!(m.busy_time, ms(21), "overloaded core never idles");
}

fn hc_ns(id: u32, c_lo: Duration, c_hi: Duration, p_ms: u64) -> McTask {
    McTask::builder(TaskId::new(id))
        .criticality(Criticality::Hi)
        .period(ms(p_ms))
        .c_lo(c_lo)
        .c_hi(c_hi)
        .build()
        .unwrap()
}

/// The budget boundary itself, one nanosecond at a time: a job that runs
/// *exactly* `C_LO` completes without a switch; a job that needs one more
/// nanosecond switches the instant the budget is exhausted.
///
/// With `C_HI = C_LO` the completion event and the would-be overrun event
/// coincide, and completion must win (the job has no remaining demand).
/// With `C_HI = C_LO + 1 ns` the job still has 1 ns of demand at the
/// boundary, so each period carries exactly 1 ns of HI mode.
#[test]
fn overrun_exactly_at_the_budget_boundary() {
    let two_ms = ms(2);
    let cfg = SimConfig {
        horizon: ms(50),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullHiBudget,
        x_factor: None,
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };

    // C_HI == C_LO: running to the pessimistic budget *is* running to the
    // LO budget — never an overrun.
    let ts = TaskSet::from_tasks(vec![hc_ns(0, two_ms, two_ms, 10)]).unwrap();
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.mode_switches, 0, "exactly C_LO is not an overrun");
    assert_eq!(m.time_in_hi, Duration::ZERO);
    assert_eq!(m.hc_completed, 5);
    assert_eq!(m.busy_time, ms(10));

    // C_HI == C_LO + 1 ns: the switch fires at the boundary tick and the
    // system spends exactly that final nanosecond in HI mode.
    let ns1 = Duration::from_nanos(1);
    let ts = TaskSet::from_tasks(vec![hc_ns(0, two_ms, two_ms + ns1, 10)]).unwrap();
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.mode_switches, 5, "one boundary overrun per period");
    assert_eq!(m.time_in_hi, Duration::from_nanos(5));
    assert_eq!(m.hc_completed, 5);
    assert_eq!(m.hc_deadline_misses, 0);
    assert_eq!(m.busy_time, ms(10) + Duration::from_nanos(5));
}

/// A mode switch landing on the very tick of an LC deadline: the switch
/// is processed first, so the starved LC job counts as dropped-at-switch,
/// not as a deadline miss — and an LC release on the same tick is
/// rejected in HI mode.
///
/// HC (C_LO 5, C_HI 10, P 20) with x = 0.2 gets VD = 4 ms < 5 ms, so it
/// runs ahead of the LC job (C 2, P 5) and exhausts its budget at t = 5 —
/// exactly the first LC deadline and the second LC release.
/// Hand schedule: HC [0,5) LO + [5,10) HI; LC₃ [10,12); LC₄ [15,17).
#[test]
fn mode_switch_on_an_lc_deadline_tick() {
    let ts = TaskSet::from_tasks(vec![hc(0, 5, 10, 20), lc(1, 2, 5)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(20), // one hyperperiod
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullHiBudget,
        x_factor: Some(0.2),
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(m.mode_switches, 1);
    assert_eq!(m.time_in_hi, ms(5));
    assert_eq!(
        m.lc_dropped_at_switch, 1,
        "the starved job is charged to the switch, not the deadline"
    );
    assert_eq!(m.lc_deadline_misses, 0);
    assert_eq!(m.lc_rejected_in_hi, 1, "the t = 5 release lands in HI mode");
    assert_eq!(m.lc_released, 3, "releases at 0, 10 and 15 are admitted");
    assert_eq!(m.lc_completed, 2);
    assert_eq!(m.hc_completed, 1);
    assert_eq!(m.hc_deadline_misses, 0);
    assert_eq!(m.busy_time, ms(14));
}

/// Back-to-back overruns inside one 20 ms hyperperiod: the first HC job
/// overruns at t = 1 (switch #1), the second overruns *while already in
/// HI mode* — which must not count as another switch — and the next
/// period's job overruns at t = 11 (switch #2) after a clean return to LO.
///
/// Hand schedule (x = 1, FullHiBudget):
/// J1 [0,2) — switch at t = 1; J2 [2,6) in HI; LO again at t = 6;
/// J1' [10,12) — switch at t = 11; LO again at t = 12; idle to 20.
#[test]
fn back_to_back_overruns_in_one_hyperperiod() {
    let ts = TaskSet::from_tasks(vec![hc(0, 1, 2, 10), hc(1, 2, 4, 20)]).unwrap();
    let cfg = SimConfig {
        horizon: ms(20),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::FullHiBudget,
        x_factor: Some(1.0),
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 0,
    };
    let m = simulate(&ts, &cfg).unwrap();
    assert_eq!(
        m.mode_switches, 2,
        "the second overrun happens inside HI mode and must not re-switch"
    );
    assert_eq!(m.time_in_hi, ms(5) + ms(1), "HI over [1,6) and [11,12)");
    assert_eq!(m.hc_released, 3);
    assert_eq!(m.hc_completed, 3);
    assert_eq!(m.hc_deadline_misses, 0);
    assert_eq!(m.busy_time, ms(8), "2 + 4 + 2 ms of execution");
}
