//! Cross-validation between the analytic schedulability tests and the
//! discrete-event simulator. For EDF on a synchronous periodic task set the
//! processor-demand criterion is exact, and the synchronous release is the
//! critical instant — so over one analysis horizon the simulator and the
//! test must agree *both ways*.

use chebymc::prelude::*;
use chebymc::sched::analysis::dbf;
use rand::{Rng, SeedableRng};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Random constrained-deadline task sets (D ≤ P) with no MC semantics.
fn random_constrained_set(seed: u64) -> TaskSet {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let count = rng.random_range(2..6usize);
    let mut ts = TaskSet::new();
    for i in 0..count {
        let period = rng.random_range(20..200u64);
        let deadline = rng.random_range(period / 2..=period);
        let c = rng.random_range(1..=deadline / 2 + 1);
        ts.push(
            McTask::builder(TaskId::new(i as u32))
                .period(ms(period))
                .deadline(ms(deadline))
                .c_lo(ms(c))
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    ts
}

#[test]
fn demand_test_agrees_with_simulation_both_ways() {
    let mut schedulable_seen = 0;
    let mut unschedulable_seen = 0;
    for seed in 0..60u64 {
        let ts = random_constrained_set(seed);
        let verdict = match dbf::edf_demand_test(&ts, Criticality::Lo, 0) {
            Ok(v) => v,
            Err(_) => continue, // point-budget guard; skip pathological sets
        };
        // Simulate the synchronous (critical-instant) release pattern over
        // the analysis horizon plus one hyperperiod for safety.
        let horizon = ts
            .hyperperiod()
            .unwrap_or(ms(10_000))
            .min(ms(60_000))
            .max(verdict.horizon)
            + ms(1);
        let cfg = SimConfig {
            horizon,
            lc_policy: LcPolicy::DropAll,
            exec_model: JobExecModel::FullLoBudget,
            x_factor: Some(1.0), // plain EDF over real deadlines
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed,
        };
        let sim = simulate(&ts, &cfg).unwrap();
        let missed = sim.lc_deadline_misses > 0;
        assert_eq!(
            verdict.schedulable,
            !missed,
            "seed {seed}: analysis says {} but simulation {} ({:?})",
            verdict.schedulable,
            if missed {
                "missed"
            } else {
                "met all deadlines"
            },
            verdict.violation_at
        );
        if verdict.schedulable {
            schedulable_seen += 1;
        } else {
            unschedulable_seen += 1;
        }
    }
    // The generator must exercise both verdicts for the test to mean much.
    assert!(
        schedulable_seen >= 10,
        "only {schedulable_seen} schedulable sets"
    );
    assert!(
        unschedulable_seen >= 5,
        "only {unschedulable_seen} unschedulable sets"
    );
}

/// EDF-VD's Eq. 8 is sufficient: whenever it accepts, the simulator must
/// observe zero HC misses even under constant worst-case overruns — and the
/// LO-mode necessary condition shows up as misses when violated.
#[test]
fn eq8_sufficiency_has_no_runtime_counterexamples() {
    let mut accepted = 0;
    for seed in 100..160u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = 0.5 + (seed % 5) as f64 * 0.1;
        let mut ts = match generate_mixed_taskset(u, &GeneratorConfig::default(), &mut rng) {
            Ok(ts) => ts,
            Err(_) => continue,
        };
        WcetPolicy::ChebyshevUniform { n: 2.0 }
            .assign(&mut ts)
            .unwrap();
        if !edf_vd::analyze(&ts).schedulable {
            continue;
        }
        accepted += 1;
        let cfg = SimConfig {
            horizon: Duration::from_secs(15),
            lc_policy: LcPolicy::DropAll,
            exec_model: JobExecModel::FullHiBudget,
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed,
        };
        let sim = simulate(&ts, &cfg).unwrap();
        assert_eq!(sim.hc_deadline_misses, 0, "seed {seed}");
    }
    assert!(accepted >= 20, "only {accepted} sets accepted by Eq. 8");
}
