//! End-to-end observability validation against a real campaign run.
//!
//! Tracing is a read-only observer: it must not change what a campaign
//! computes or persists, and the trace it produces must account for the
//! session's wall clock. Everything lives in one `#[test]` because the
//! mc-obs sink is process-wide state.

use chebymc::exp::{catalog, run_campaign, RunConfig, Shard, Store};
use chebymc::obs;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chebymc-trace-it-{}-{name}", std::process::id()));
    p
}

#[test]
fn tracing_leaves_the_store_bit_identical_and_accounts_for_the_session() {
    let opts = catalog::CatalogOptions {
        sets: Some(2),
        ..catalog::CatalogOptions::default()
    };
    let cfg = RunConfig {
        threads: 1, // serial: unit spans must tile the session wall clock
        shard: Shard::default(),
        progress: false,
    };
    let plain_store = tmp("plain-store.jsonl");
    let traced_store = tmp("traced-store.jsonl");
    let trace = tmp("trace.jsonl");
    for p in [&plain_store, &traced_store, &trace] {
        let _ = std::fs::remove_file(p);
    }

    // Untraced reference run.
    let campaign = catalog::build("fig5", &opts).expect("catalog");
    let (mut store, _) = Store::create_or_resume(&plain_store, &campaign.spec).expect("store");
    let plain =
        run_campaign(&campaign.spec, campaign.runner.as_ref(), &mut store, &cfg).expect("run");
    drop(store);
    assert!(plain.ran > 0, "smoke campaign must actually run units");

    // Identical run with the trace sink installed.
    obs::init_file(&trace).expect("install trace sink");
    let campaign = catalog::build("fig5", &opts).expect("catalog");
    let (mut store, _) = Store::create_or_resume(&traced_store, &campaign.spec).expect("store");
    let traced =
        run_campaign(&campaign.spec, campaign.runner.as_ref(), &mut store, &cfg).expect("run");
    obs::shutdown().expect("finalize trace");
    drop(store);

    assert_eq!(traced.ran, plain.ran);
    assert_eq!(traced.skipped, plain.skipped);
    let a = std::fs::read(&plain_store).expect("read plain store");
    let b = std::fs::read(&traced_store).expect("read traced store");
    assert!(
        a == b,
        "tracing changed the persisted store ({} vs {} bytes)",
        a.len(),
        b.len()
    );

    // The trace parses under the current schema and its per-unit spans
    // account for the session: one exp.unit span per ran unit, and (the
    // run being serial) their total duration tiles the measured elapsed
    // time. The bound is loose against scheduler noise; in practice the
    // coverage is >99%.
    let text = std::fs::read_to_string(&trace).expect("read trace");
    let summary = obs::summary::TraceSummary::parse(&text).expect("valid trace");
    assert_eq!(summary.schema, obs::TRACE_SCHEMA_VERSION);
    assert_eq!(summary.span_count("exp.session"), 1);
    assert_eq!(summary.span_count("exp.unit"), traced.ran as u64);
    assert_eq!(summary.span_count("store.fsync"), traced.ran as u64);

    let unit_ns = summary.span_total_ns("exp.unit");
    let elapsed_ns = traced.elapsed.as_nanos() as u64;
    let coverage = unit_ns as f64 / elapsed_ns as f64;
    assert!(
        (0.80..=1.05).contains(&coverage),
        "exp.unit spans cover {:.1}% of RunSummary::elapsed ({unit_ns} ns of {elapsed_ns} ns)",
        coverage * 100.0
    );

    for p in [&plain_store, &traced_store, &trace] {
        let _ = std::fs::remove_file(p);
    }
}
