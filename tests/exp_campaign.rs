//! End-to-end tests of the experiment-campaign subsystem through real
//! `chebymc exp` process invocations: crash-safe resume (truncation at a
//! record boundary and mid-record), shard determinism (merged shards ==
//! single-process run, byte for byte), status/export, and the `E0xx`
//! fail-fast diagnostics.
//!
//! The campaign under test is `table2` at a tiny sample count — 25 units
//! of pure trace sampling, fast and bit-deterministic.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn chebymc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chebymc-exp-test-{}-{name}", std::process::id()));
    p
}

/// Runs the tiny table2 campaign into `store`, asserting success.
fn run_tiny(store: &Path, extra: &[&str]) -> Output {
    let mut args = vec![
        "exp",
        "run",
        "table2",
        "--samples",
        "300",
        "--store",
        store.to_str().unwrap(),
        "--quiet",
    ];
    args.extend_from_slice(extra);
    let out = chebymc(&args);
    assert!(
        out.status.success(),
        "exp run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The uninterrupted reference store for this process, built once.
fn reference_store() -> Vec<u8> {
    let store = tmp("reference.jsonl");
    let _ = std::fs::remove_file(&store);
    run_tiny(&store, &[]);
    let bytes = std::fs::read(&store).expect("store written");
    std::fs::remove_file(&store).unwrap();
    bytes
}

#[test]
fn resume_after_truncation_at_record_boundary_rebuilds_identical_store() {
    let reference = reference_store();
    let store = tmp("boundary.jsonl");
    let _ = std::fs::remove_file(&store);
    run_tiny(&store, &[]);

    // Cut the store back to roughly half its records, on a line boundary —
    // the state after a clean kill between two units.
    let text = String::from_utf8(std::fs::read(&store).unwrap()).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    let keep: String = lines[..1 + (lines.len() - 1) / 2].concat();
    std::fs::write(&store, &keep).unwrap();

    let out = run_tiny(&store, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("skipped 12 already-complete"),
        "resume must skip the surviving records: {stdout}"
    );
    assert_eq!(
        std::fs::read(&store).unwrap(),
        reference,
        "resumed store must be byte-identical to an uninterrupted run"
    );
    std::fs::remove_file(&store).unwrap();
}

#[test]
fn resume_after_mid_record_truncation_drops_the_torn_tail_and_recovers() {
    let reference = reference_store();
    let store = tmp("midrecord.jsonl");
    let _ = std::fs::remove_file(&store);
    run_tiny(&store, &[]);

    // Cut mid-way through a record line — the state after a crash during
    // a write: keep the header, five full records, and the first few
    // bytes of the sixth, so the tail is genuinely torn.
    let text = String::from_utf8(std::fs::read(&store).unwrap()).unwrap();
    let lines: Vec<&str> = text.split_inclusive('\n').collect();
    let mut keep = lines[..6].concat();
    keep.push_str(&lines[6][..8]);
    std::fs::write(&store, &keep).unwrap();

    let out = run_tiny(&store, &[]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("recovered a torn tail"),
        "the torn tail must be reported: {stderr}"
    );
    assert_eq!(
        std::fs::read(&store).unwrap(),
        reference,
        "recovered store must be byte-identical to an uninterrupted run"
    );
    std::fs::remove_file(&store).unwrap();
}

#[test]
fn shards_merge_to_the_single_process_store_byte_for_byte() {
    let reference = reference_store();
    let shard0 = tmp("shard0.jsonl");
    let shard1 = tmp("shard1.jsonl");
    let merged = tmp("merged.jsonl");
    for p in [&shard0, &shard1, &merged] {
        let _ = std::fs::remove_file(p);
    }
    run_tiny(&shard0, &["--shard", "0/2"]);
    run_tiny(&shard1, &["--shard", "1/2"]);

    let out = chebymc(&[
        "exp",
        "merge",
        "-o",
        merged.to_str().unwrap(),
        shard0.to_str().unwrap(),
        shard1.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "merge failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        reference,
        "merged shard stores must equal the single-process store"
    );
    for p in [&shard0, &shard1, &merged] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn status_and_export_describe_a_store() {
    let store = tmp("status.jsonl");
    let _ = std::fs::remove_file(&store);
    run_tiny(&store, &[]);

    let out = chebymc(&["exp", "status", store.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("table2"), "{text}");
    assert!(text.contains("25/25 units"), "{text}");
    assert!(text.contains("25/25 points fully done"), "{text}");

    let out = chebymc(&["exp", "export-csv", store.to_str().unwrap()]);
    assert!(out.status.success());
    let csv = String::from_utf8_lossy(&out.stdout);
    assert!(csv.starts_with("point,label,replicas,analysis_bound,overrun_rate"));
    assert_eq!(csv.lines().count(), 26, "header + one row per point");

    let out = chebymc(&["exp", "export-csv", "--per-unit", store.to_str().unwrap()]);
    assert!(out.status.success());
    let csv = String::from_utf8_lossy(&out.stdout);
    assert!(csv.starts_with("unit,point,label,replica,seed,"));
    std::fs::remove_file(&store).unwrap();
}

#[test]
fn invalid_shard_fails_fast_with_a_named_diagnostic() {
    let store = tmp("badshard.jsonl");
    let _ = std::fs::remove_file(&store);
    let out = chebymc(&[
        "exp",
        "run",
        "table2",
        "--store",
        store.to_str().unwrap(),
        "--shard",
        "3/2",
        "--quiet",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("E003"),
        "shard error must carry its code: {err}"
    );
    assert!(
        !store.exists(),
        "a campaign that fails static analysis must not create a store"
    );
}

#[test]
fn store_csv_collision_fails_fast() {
    let store = tmp("collide.jsonl");
    let out = chebymc(&[
        "exp",
        "run",
        "table2",
        "--store",
        store.to_str().unwrap(),
        "--csv",
        store.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("E005"), "{err}");
}

#[test]
fn a_store_cannot_be_resumed_under_a_different_campaign() {
    let store = tmp("wrongspec.jsonl");
    let _ = std::fs::remove_file(&store);
    run_tiny(&store, &[]);
    // Same campaign, different scale → different fingerprint.
    let out = chebymc(&[
        "exp",
        "run",
        "table2",
        "--samples",
        "400",
        "--store",
        store.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("different campaign"), "{err}");
    std::fs::remove_file(&store).unwrap();
}

#[test]
fn exp_list_names_the_catalog() {
    let out = chebymc(&["exp", "list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["fig5", "table2", "ablation_sigma"] {
        assert!(text.contains(name), "{text}");
    }
}
