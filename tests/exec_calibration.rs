//! Regression tests for the mc-exec execution-time sampler: every
//! benchmark's sampler must truncate at its pessimistic WCET, stay
//! strictly positive, reproduce from its seed, and land its empirical
//! `(mean, σ)` within tolerance of the published Table I statistics it
//! was calibrated against.

use chebymc::prelude::*;

/// Relative tolerances for the empirical moments of a 20 000-sample
/// trace. Truncation at `WCET_pes` biases both moments slightly low, so
/// σ gets more room than the mean.
const MEAN_RTOL: f64 = 0.05;
const SIGMA_RTOL: f64 = 0.15;

const TRACE_LEN: usize = 20_000;

#[test]
fn samplers_truncate_at_wcet_pes_and_stay_positive() {
    for b in benchmarks::all().unwrap() {
        let wcet_pes = b.spec().wcet_pes;
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let trace = b.sample_trace(TRACE_LEN, seed).unwrap();
            let s = trace.summary().unwrap();
            assert!(
                s.max() <= wcet_pes,
                "{} (seed {seed}): sample {} exceeds WCET_pes {wcet_pes}",
                b.name(),
                s.max()
            );
            assert!(
                s.min() > 0.0,
                "{} (seed {seed}): non-positive sample {}",
                b.name(),
                s.min()
            );
        }
    }
}

#[test]
fn samplers_are_calibrated_to_table_one() {
    for b in benchmarks::all().unwrap() {
        let spec = *b.spec();
        let s = b.sample_trace(TRACE_LEN, 7).unwrap().summary().unwrap();
        let mean_err = (s.mean() - spec.acet).abs() / spec.acet;
        assert!(
            mean_err <= MEAN_RTOL,
            "{}: empirical mean {} vs Table I ACET {} (rel err {:.4})",
            b.name(),
            s.mean(),
            spec.acet,
            mean_err
        );
        if spec.sigma > 0.0 {
            let sigma_err = (s.std_dev() - spec.sigma).abs() / spec.sigma;
            assert!(
                sigma_err <= SIGMA_RTOL,
                "{}: empirical σ {} vs Table I σ {} (rel err {:.4})",
                b.name(),
                s.std_dev(),
                spec.sigma,
                sigma_err
            );
        }
    }
}

#[test]
fn sampling_is_deterministic_per_seed() {
    for b in benchmarks::all().unwrap() {
        let a = b.sample_trace(256, 42).unwrap();
        let c = b.sample_trace(256, 42).unwrap();
        assert_eq!(
            a.samples(),
            c.samples(),
            "{}: seed 42 not reproducible",
            b.name()
        );
        let d = b.sample_trace(256, 43).unwrap();
        assert_ne!(
            a.samples(),
            d.samples(),
            "{}: different seeds produced identical traces",
            b.name()
        );
    }
}
