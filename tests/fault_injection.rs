//! Workspace-level fault-injection integration tests: the seeded crash
//! sweep over the experiment store holds its invariant, actually
//! exercises the fault paths (non-vacuity), and — mutation sanity check —
//! a sabotaged store is caught with a reproducing seed.

use chebymc::exp::{sweep, Sabotage, SweepConfig};

#[test]
fn crash_sweep_holds_the_store_invariant() {
    let report = sweep(&SweepConfig::new(0x5EED, 60));
    assert!(
        report.ok(),
        "sweep reported violations: {:?}",
        report.violations
    );
    assert_eq!(report.schedules, 60);
    // Non-vacuity: a sweep that never crashed or never injected an error
    // proves nothing about crash safety.
    assert!(report.crashes > 0, "no schedule actually crashed");
    assert!(report.injected_errors > 0, "no I/O error was injected");
    assert!(
        report.cycles > report.schedules,
        "every schedule must drive at least one crash/resume cycle plus \
         the final fault-free session"
    );
}

#[test]
fn sweep_is_deterministic() {
    let a = sweep(&SweepConfig::new(17, 20));
    let b = sweep(&SweepConfig::new(17, 20));
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.injected_errors, b.injected_errors);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.violations, b.violations);
}

/// Mutation sanity check: silently dropping a durable record after a
/// crash must be detected, and the printed seed must replay the same
/// violation on its own — the workflow `chebymc fault sweep` tells users
/// to follow.
#[test]
fn sabotaged_store_is_caught_with_a_reproducing_seed() {
    let cfg = SweepConfig {
        sabotage: Some(Sabotage::DropDurableRecord),
        ..SweepConfig::new(900, 40)
    };
    let report = sweep(&cfg);
    assert!(
        !report.ok(),
        "a dropped durable record went completely undetected"
    );
    let v = &report.violations[0];
    let replay = sweep(&SweepConfig {
        seed: v.seed,
        count: 1,
        ..cfg
    });
    assert_eq!(
        replay.violations.len(),
        1,
        "seed {} did not replay its violation",
        v.seed
    );
    assert_eq!(replay.violations[0].detail, v.detail);
    assert_eq!(replay.violations[0].cycle, v.cycle);
}
