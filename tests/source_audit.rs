//! Integration tests for `chebymc lint --source`: the fixture corpus is
//! pinned to a golden JSON report, the report is byte-identical across
//! runs and thread counts, the gate flags promote/demote findings, and —
//! the same check CI gates on — the workspace's own sources carry zero
//! deny-level findings under the checked-in `lint.toml`.

use chebymc::lint::LintReport;
use std::process::{Command, Output};

const CORPUS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/lint-src");
const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/fixtures/lint-src/expected.json"
);

fn chebymc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn corpus_matches_the_golden_json() {
    let out = chebymc(&["lint", "--source", "--root", CORPUS, "--json"]);
    assert!(
        !out.status.success(),
        "the corpus plants deny-level defects"
    );
    let golden = std::fs::read(GOLDEN).expect("golden file exists");
    assert_eq!(
        out.stdout,
        golden,
        "corpus report drifted from the golden file:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn corpus_json_is_byte_identical_across_thread_counts() {
    let one = chebymc(&[
        "lint",
        "--source",
        "--root",
        CORPUS,
        "--json",
        "--threads",
        "1",
    ]);
    let five = chebymc(&[
        "lint",
        "--source",
        "--root",
        CORPUS,
        "--json",
        "--threads",
        "5",
    ]);
    assert_eq!(one.stdout, five.stdout);
    let golden = std::fs::read(GOLDEN).expect("golden file exists");
    assert_eq!(one.stdout, golden, "--threads must not change the report");
}

#[test]
fn corpus_json_round_trips_through_serde() {
    let out = chebymc(&["lint", "--source", "--root", CORPUS, "--json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: LintReport = serde_json::from_str(&text).expect("valid JSON report");
    let again: LintReport = serde_json::from_str(&serde_json::to_string(&parsed).unwrap()).unwrap();
    assert_eq!(again, parsed);
}

#[test]
fn gate_flags_demote_and_promote() {
    // Demoting both source classes clears the gate without changing the
    // report body (same diagnostics, now below deny level).
    let out = chebymc(&["lint", "--source", "--root", CORPUS, "--allow", "D,U"]);
    assert!(
        out.status.success(),
        "allow D,U must clear the corpus gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A partial allow leaves the U-class errors standing.
    let out = chebymc(&["lint", "--source", "--root", CORPUS, "--allow", "D"]);
    assert!(!out.status.success(), "U001/U003 must still gate");
    // Unknown gate entries are rejected up front.
    let out = chebymc(&["lint", "--source", "--root", CORPUS, "--deny", "X9"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("X9"));
}

/// The CI gate, as a test: the workspace's own sources must carry zero
/// deny-level findings under the checked-in lint.toml — and promoting
/// warnings must not change that (no warning-level findings either).
#[test]
fn workspace_sources_are_deny_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let out = chebymc(&["lint", "--source", "--root", root, "--deny", "warnings"]);
    assert!(
        out.status.success(),
        "workspace source audit is not clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn workspace_report_is_byte_identical_across_thread_counts() {
    let root = env!("CARGO_MANIFEST_DIR");
    let one = chebymc(&[
        "lint",
        "--source",
        "--root",
        root,
        "--json",
        "--threads",
        "1",
    ]);
    let many = chebymc(&[
        "lint",
        "--source",
        "--root",
        root,
        "--json",
        "--threads",
        "6",
    ]);
    assert_eq!(one.stdout, many.stdout);
    assert!(!one.stdout.is_empty());
}

#[test]
fn source_only_flags_require_source_mode() {
    let out = chebymc(&["lint", "--benchmark", "all", "--threads", "2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--source"));
}
