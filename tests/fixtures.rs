//! The committed `.prog` fixtures parse, validate, and analyse cleanly —
//! and the `chebymc wcet` CLI agrees with the library analysis.

use chebymc::exec::parse::{parse_program, to_source};
use chebymc::exec::wcet::analyze;
use std::path::PathBuf;
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_paths() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "prog"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no fixtures found");
    paths
}

#[test]
fn all_fixtures_parse_and_analyse() {
    for path in fixture_paths() {
        let src = std::fs::read_to_string(&path).unwrap();
        let program = parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = analyze(&program).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(report.wcet > 0, "{}: zero WCET", path.display());
        assert!(
            report.bcet as f64 <= report.acet_estimate
                && report.acet_estimate <= report.wcet as f64,
            "{}: analyses out of order",
            path.display()
        );
    }
}

#[test]
fn fixtures_round_trip_through_the_printer() {
    for path in fixture_paths() {
        let src = std::fs::read_to_string(&path).unwrap();
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&to_source(&p1)).unwrap();
        assert_eq!(p1.wcet(), p2.wcet(), "{}", path.display());
        assert_eq!(p1.bcet(), p2.bcet(), "{}", path.display());
    }
}

#[test]
fn image_kernel_wcet_is_the_hand_computed_value() {
    let src = std::fs::read_to_string(fixtures_dir().join("image_kernel.prog")).unwrap();
    let p = parse_program(&src).unwrap();
    // init + rows(65 headers) + 64 · (cols: 65 headers · 2 + 64·(2+180)) + commit.
    let per_row = 65 * 2 + 64 * (2 + 180);
    assert_eq!(p.wcet(), 120 + 65 * 4 + 64 * per_row + 40);
}

#[test]
fn cli_wcet_matches_library_analysis() {
    let path = fixtures_dir().join("state_machine.prog");
    let src = std::fs::read_to_string(&path).unwrap();
    let report = analyze(&parse_program(&src).unwrap()).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .arg("wcet")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains(&format!("WCET          = {} cycles", report.wcet)),
        "{text}"
    );
}

#[test]
fn committed_workload_fixture_designs_and_simulates() {
    use chebymc::prelude::*;
    let json = std::fs::read_to_string(fixtures_dir().join("synthetic_u075.json")).unwrap();
    let mut w = Workload::load_json(&json).unwrap();
    assert_eq!(w.tasks.len(), 7);
    assert_eq!(w.tasks.hc_count(), 4);
    let report = ChebyshevScheme::with_seed(1).design(&mut w.tasks).unwrap();
    assert!(report.metrics.schedulable);
    let sim = simulate(&w.tasks, &SimConfig::new(Duration::from_secs(10))).unwrap();
    assert_eq!(sim.hc_deadline_misses, 0);
}

#[test]
fn cli_wcet_reports_parse_errors_with_position() {
    let bad = std::env::temp_dir().join(format!("chebymc-bad-{}.prog", std::process::id()));
    std::fs::write(&bad, "loop l 1 { block b 2; }").unwrap(); // missing bound
    let out = Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .arg("wcet")
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bound"));
    let _ = std::fs::remove_file(&bad);
}
