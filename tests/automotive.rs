//! The committed automotive golden fixture is byte-stable: regenerating
//! it from its pinned seed through the real CLI reproduces the checked-in
//! file exactly. Any drift in the calibration tables, the UUniFast or
//! factor-pair draw order, the Weibull fit, or the JSON encoding shows up
//! here as a byte diff before it can silently invalidate campaign results.

use std::path::PathBuf;
use std::process::Command;

/// The fixture's generation parameters — keep in lockstep with the file
/// name and the regeneration command in EXPERIMENTS.md.
const FIXTURE: &str = "automotive_u070_seed1.json";
const FIXTURE_ARGS: [&str; 8] = [
    "--family",
    "automotive",
    "--u",
    "0.7",
    "--seed",
    "1",
    "--runnables",
    "120",
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

#[test]
fn golden_automotive_fixture_is_byte_identical_on_regeneration() {
    let tmp = std::env::temp_dir().join(format!("chebymc-automotive-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .arg("generate")
        .args(FIXTURE_ARGS)
        .arg("-o")
        .arg(&tmp)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let regenerated = std::fs::read(&tmp).expect("regenerated fixture");
    let committed = std::fs::read(fixtures_dir().join(FIXTURE)).expect("committed fixture");
    let _ = std::fs::remove_file(&tmp);
    assert!(
        regenerated == committed,
        "regenerated fixture differs from the committed one ({} vs {} bytes); \
         if the generator contract changed intentionally, regenerate with \
         `chebymc generate {} -o fixtures/{FIXTURE}` and document the break",
        regenerated.len(),
        committed.len(),
        FIXTURE_ARGS.join(" "),
    );
}

#[test]
fn automotive_fixture_loads_and_matches_the_calibration() {
    use chebymc::prelude::*;
    let json = std::fs::read_to_string(fixtures_dir().join(FIXTURE)).unwrap();
    let w = Workload::load_json(&json).unwrap();
    assert_eq!(w.tasks.len(), 120);
    assert!(w.tasks.hc_count() > 0 && w.tasks.lc_count() > 0);
    // Budget utilisation hits the generation bound.
    let u: f64 = w
        .tasks
        .iter()
        .map(|t| t.c_hi().as_nanos() as f64 / t.period().as_nanos() as f64)
        .sum();
    assert!((u - 0.7).abs() < 1e-3, "budget utilisation {u}");
    // Periods come from the Bosch bin table.
    for t in w.tasks.iter() {
        let ms = t.period().as_nanos() / 1_000_000;
        assert!(
            chebymc::task::automotive::PERIOD_MS.contains(&ms),
            "{}: period {} ms is not a calibration bin",
            t.id(),
            ms
        );
    }
    // Every HC task carries a fitted Weibull law the simulator will use.
    for t in w
        .tasks
        .iter()
        .filter(|t| t.criticality() == Criticality::Hi)
    {
        let p = t
            .profile()
            .unwrap_or_else(|| panic!("{}: no profile", t.id()));
        assert!(p.weibull().is_some(), "{}: no Weibull fit", t.id());
    }
}

#[test]
fn automotive_fixture_simulates_under_the_arena_design() {
    use chebymc::prelude::*;
    let json = std::fs::read_to_string(fixtures_dir().join(FIXTURE)).unwrap();
    let mut w = Workload::load_json(&json).unwrap();
    WcetPolicy::ChebyshevUniform { n: 3.0 }
        .assign(&mut w.tasks)
        .unwrap();
    let sim = simulate(&w.tasks, &SimConfig::new(Duration::from_secs(1))).unwrap();
    assert!(sim.hc_released > 0 && sim.lc_released > 0);
}
