//! Integration tests for the mc-lint subsystem and the `chebymc lint`
//! subcommand: the defect fixture must produce one diagnostic per planted
//! defect, every shipped benchmark must lint clean, and the JSON renderer
//! must round-trip through `serde_json`.

use chebymc::lint::{Code, LintBundle, LintReport, Severity};
use std::process::{Command, Output};

const DEFECTS: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/lint_defects.json");

fn chebymc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chebymc"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The headline acceptance test: a fixture with an unbounded loop, an
/// unreachable block, and a task with `C_LO > C_HI` yields exactly the
/// three matching diagnostic codes.
#[test]
fn defect_fixture_emits_one_code_per_planted_defect() {
    let json = std::fs::read_to_string(DEFECTS).unwrap();
    let report = LintBundle::from_json(&json).unwrap().lint();
    assert_eq!(
        report.codes(),
        vec![Code::C003, Code::C005, Code::T001],
        "unexpected diagnostics:\n{}",
        report.render_human()
    );
    assert_eq!(report.count(Severity::Error), 3);
    assert!(report.has_errors());
}

#[test]
fn cli_lint_reports_the_defects_and_exits_nonzero() {
    let out = chebymc(&["lint", DEFECTS]);
    assert!(!out.status.success(), "defective bundle must fail the lint");
    let text = String::from_utf8_lossy(&out.stdout);
    for code in ["C003", "C005", "T001"] {
        assert!(text.contains(code), "missing {code} in:\n{text}");
    }
    assert!(String::from_utf8_lossy(&out.stderr).contains("lint found 3 deny-level finding(s)"));
}

#[test]
fn cli_lint_json_output_round_trips_through_serde() {
    let out = chebymc(&["lint", DEFECTS, "--format", "json"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: LintReport = serde_json::from_str(&text).expect("valid JSON report");
    assert_eq!(parsed.codes(), vec![Code::C003, Code::C005, Code::T001]);
    // Full round-trip: re-serialise and parse again to the same value.
    let again: LintReport = serde_json::from_str(&serde_json::to_string(&parsed).unwrap()).unwrap();
    assert_eq!(again, parsed);
}

#[test]
fn cli_lint_clean_inputs_exit_zero() {
    let out = chebymc(&["lint", "--benchmark", "all"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    let out = chebymc(&["lint", "--benchmark", "nonsense"]);
    assert!(!out.status.success());

    let out = chebymc(&["lint"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one input"));
}

/// Every benchmark CFG the workspace ships is lint-clean — the structural
/// analyser and the WCET analyser agree that these graphs are well-formed.
#[test]
fn every_benchmark_cfg_lints_clean() {
    for b in chebymc::exec::benchmarks::all().unwrap() {
        let cfg = b.program().to_cfg().unwrap();
        let report = chebymc::lint::lint_benchmark_cfg(b.name(), &cfg);
        assert!(
            report.is_clean(),
            "benchmark {} is not lint-clean:\n{}",
            b.name(),
            report.render_human()
        );
    }
}

/// The shipped `.prog` fixtures lint clean through the `--program` path.
#[test]
fn program_fixtures_lint_clean() {
    for prog in [
        "image_kernel.prog",
        "sort_kernel.prog",
        "state_machine.prog",
    ] {
        let path = format!("{}/fixtures/{prog}", env!("CARGO_MANIFEST_DIR"));
        let out = chebymc(&["lint", "--program", &path]);
        assert!(
            out.status.success(),
            "{prog}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
