//! Integration tests for the multi-level criticality extension: model,
//! analysis, scheme and simulator working together across crates.

use chebymc::core::multi::MultiScheme;
use chebymc::prelude::*;
use chebymc::sched::analysis::multi::analyze;
use chebymc::sched::sim::{simulate_multi, MultiExecModel, MultiSimConfig};
use chebymc::task::multi::{MultiTask, MultiTaskSet};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// A three-level system whose level ≥ 1 tasks carry profiles derived from
/// the paper's benchmark statistics.
fn build_system() -> MultiTaskSet {
    let mut ts = MultiTaskSet::new(3).unwrap();
    let from_bench = |id: u32, level: usize, name: &str, period_ms: u64| {
        let bench = benchmarks::by_name(name).unwrap();
        let spec = *bench.spec();
        let top = Duration::from_nanos(spec.wcet_pes as u64);
        MultiTask::new(
            TaskId::new(id),
            name,
            level,
            vec![top; level + 1],
            ms(period_ms),
            Some(ExecutionProfile::new(spec.acet, spec.sigma, spec.wcet_pes).unwrap()),
        )
        .unwrap()
    };
    ts.push(from_bench(0, 2, "corner", 25)).unwrap();
    ts.push(from_bench(1, 2, "qsort-100", 5)).unwrap();
    ts.push(from_bench(2, 1, "edge", 40)).unwrap();
    ts.push(
        MultiTask::new(
            TaskId::new(3),
            "best-effort",
            0,
            vec![ms(30)],
            ms(100),
            None,
        )
        .unwrap(),
    )
    .unwrap();
    ts
}

#[test]
fn design_makes_pessimistic_system_schedulable() {
    let mut ts = build_system();
    // Fully pessimistic budgets: mode-0 demand equals the top budgets and
    // the pairwise reduction fails.
    let before = analyze(&ts);
    assert!(!before.schedulable);

    let report = MultiScheme::with_seed(2).design(&mut ts).unwrap();
    assert!(report.metrics.analysis.schedulable);
    assert!(report.factors.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    assert!(report.metrics.escalation_bounds.iter().all(|p| *p < 0.5));
    assert!(report.metrics.p_reach_top < 0.25);
    assert!(report.metrics.max_u_lowest > 0.3);
}

#[test]
fn designed_system_survives_adversarial_runtime() {
    let mut ts = build_system();
    MultiScheme::with_seed(3).design(&mut ts).unwrap();
    let m = simulate_multi(
        &ts,
        &MultiSimConfig {
            horizon: Duration::from_secs(20),
            exec_model: MultiExecModel::FullTopBudget,
            seed: 1,
        },
    )
    .unwrap();
    assert_eq!(
        m.top_level_misses(),
        0,
        "pairwise-schedulable designs must protect the top level"
    );
    assert!(m.total_escalations() > 0, "constant overruns must escalate");
}

#[test]
fn profile_runtime_escalates_rarely_for_designed_systems() {
    let mut ts = build_system();
    let report = MultiScheme::with_seed(4).design(&mut ts).unwrap();
    let m = simulate_multi(
        &ts,
        &MultiSimConfig {
            horizon: Duration::from_secs(30),
            exec_model: MultiExecModel::Profile,
            seed: 2,
        },
    )
    .unwrap();
    // Observed escalation frequency per released upper-level job must sit
    // below the design-time Chebyshev bound for mode 0.
    let upper_jobs: u64 = m.released_per_level[1..].iter().sum();
    let rate = m.escalations[0] as f64 / upper_jobs.max(1) as f64;
    assert!(
        rate <= report.metrics.escalation_bounds[0] + 1e-9,
        "measured {rate} vs bound {}",
        report.metrics.escalation_bounds[0]
    );
    assert_eq!(m.misses_per_level.iter().sum::<u64>(), 0);
}

#[test]
fn dual_criticality_is_the_two_level_special_case() {
    // Design the same logical system through both APIs and compare the
    // design-time bounds.
    let bench = benchmarks::by_name("corner").unwrap();
    let spec = *bench.spec();
    let top = Duration::from_nanos(spec.wcet_pes as u64);

    // Dual path.
    let mut dual = TaskSet::new();
    dual.push(
        McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(ms(40))
            .c_lo(top)
            .c_hi(top)
            .profile(ExecutionProfile::new(spec.acet, spec.sigma, spec.wcet_pes).unwrap())
            .build()
            .unwrap(),
    )
    .unwrap();
    dual.push(
        McTask::builder(TaskId::new(1))
            .period(ms(100))
            .c_lo(ms(10))
            .build()
            .unwrap(),
    )
    .unwrap();
    let dual_report = ChebyshevScheme::new()
        .design_uniform(&mut dual, 3.0)
        .unwrap();

    // Multi path with the same uniform factor.
    let mut multi = MultiTaskSet::new(2).unwrap();
    multi
        .push(
            MultiTask::new(
                TaskId::new(0),
                "corner",
                1,
                vec![top, top],
                ms(40),
                Some(ExecutionProfile::new(spec.acet, spec.sigma, spec.wcet_pes).unwrap()),
            )
            .unwrap(),
        )
        .unwrap();
    multi
        .push(MultiTask::new(TaskId::new(1), "lc", 0, vec![ms(10)], ms(100), None).unwrap())
        .unwrap();
    MultiScheme::default().assign(&mut multi, &[3.0]).unwrap();
    let multi_metrics = MultiScheme::metrics(&multi).unwrap();

    // P_MS of the dual design equals the mode-0 escalation bound.
    assert!((dual_report.metrics.p_ms - multi_metrics.escalation_bounds[0]).abs() < 1e-9);
    // And both agree on schedulability.
    assert_eq!(
        dual_report.metrics.schedulable,
        multi_metrics.analysis.schedulable
    );
}
