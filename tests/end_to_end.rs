//! End-to-end integration: measurement → profile → design → analysis →
//! runtime simulation, across every crate in the workspace.

use chebymc::prelude::*;
use rand::SeedableRng;

/// The full pipeline on the paper's own benchmarks: sample a trace with the
/// MEET stand-in, summarise it into a profile (Eqs. 3–4), build tasks,
/// design with the scheme, and validate at runtime.
#[test]
fn measured_traces_drive_a_safe_design() {
    let mut ts = TaskSet::new();
    for (i, (name, period_ms)) in [("corner", 25u64), ("edge", 50), ("qsort-100", 10)]
        .iter()
        .enumerate()
    {
        let bench = benchmarks::by_name(name).unwrap();
        // "Execute 20000 instances" and measure.
        let trace = bench.sample_trace(20_000, 7 + i as u64).unwrap();
        let summary = trace.summary().unwrap();
        let profile = ExecutionProfile::from_summary(&summary, bench.spec().wcet_pes).unwrap();
        let c_hi = Duration::from_nanos(bench.spec().wcet_pes as u64);
        ts.push(
            McTask::builder(TaskId::new(i as u32))
                .name(*name)
                .criticality(Criticality::Hi)
                .period(Duration::from_millis(*period_ms))
                .c_lo(c_hi)
                .c_hi(c_hi)
                .profile(profile)
                .build()
                .unwrap(),
        )
        .unwrap();
    }
    // Two LC tasks sharing the slack.
    for (i, (c_ms, p_ms)) in [(5u64, 100u64), (10, 250)].iter().enumerate() {
        ts.push(
            McTask::builder(TaskId::new(10 + i as u32))
                .period(Duration::from_millis(*p_ms))
                .c_lo(Duration::from_millis(*c_ms))
                .build()
                .unwrap(),
        )
        .unwrap();
    }

    let report = ChebyshevScheme::with_seed(3).design(&mut ts).unwrap();
    assert!(report.metrics.schedulable, "design must satisfy Eq. 8");
    assert!(
        report.metrics.p_ms < 0.5,
        "P_MS bound {}",
        report.metrics.p_ms
    );
    assert!(
        report.metrics.u_hc_lo < ts.u_hc_hi(),
        "optimistic demand must sit below pessimistic demand"
    );

    // Runtime check: profile-driven execution, one minute.
    let cfg = SimConfig {
        horizon: Duration::from_secs(60),
        lc_policy: LcPolicy::DropAll,
        exec_model: JobExecModel::Profile,
        x_factor: None,
        release_jitter: Duration::ZERO,
        mode_switch: ModeSwitchPolicy::System,
        seed: 42,
    };
    let sim = simulate(&ts, &cfg).unwrap();
    assert_eq!(sim.hc_deadline_misses, 0);
    assert_eq!(sim.lc_deadline_misses, 0);
    // The design-time bound dominates the empirical switch rate per HC job
    // only in aggregate across tasks; sanity-check it is not wildly off.
    assert!(sim.mode_switches < sim.hc_released);
}

/// The measured overrun rate of a designed task never exceeds its
/// Chebyshev bound (Theorem 1 end to end).
#[test]
fn theorem1_holds_end_to_end_for_all_benchmarks() {
    for bench in benchmarks::all().unwrap() {
        let trace = bench.sample_trace(20_000, 123).unwrap();
        let summary = trace.summary().unwrap();
        for n in [0.5, 1.0, 2.0, 3.0, 5.0] {
            let level = summary.mean() + n * summary.std_dev();
            let measured = trace.overrun_rate(level).unwrap().rate();
            let bound = one_sided_bound(n);
            assert!(
                measured <= bound,
                "{} at n = {n}: measured {measured} > bound {bound}",
                bench.name()
            );
        }
    }
}

/// The generator, scheme and simulator compose over many random systems
/// with zero HC deadline misses — the safety half of the paper's claim.
#[test]
fn random_systems_designed_by_the_scheme_protect_hc_tasks() {
    for seed in 0..10u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let u = 0.5 + 0.04 * seed as f64;
        let mut ts = generate_mixed_taskset(u, &GeneratorConfig::default(), &mut rng).unwrap();
        let scheme = ChebyshevScheme::with_seed(seed);
        let report = scheme.design(&mut ts).unwrap();
        if !report.metrics.schedulable {
            continue; // infeasible sets carry no runtime guarantee
        }
        let cfg = SimConfig {
            horizon: Duration::from_secs(20),
            lc_policy: LcPolicy::DropAll,
            exec_model: JobExecModel::FullHiBudget, // adversarial
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed,
        };
        let sim = simulate(&ts, &cfg).unwrap();
        assert_eq!(
            sim.hc_deadline_misses, 0,
            "seed {seed}: HC tasks must survive constant overruns"
        );
    }
}

/// Design-time EDF-VD verdicts agree with observed runtime behaviour in
/// the non-overrun regime: schedulable sets run miss-free on C_LO budgets.
#[test]
fn analysis_and_simulation_agree_without_overruns() {
    for seed in 100..110u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ts = generate_mixed_taskset(0.8, &GeneratorConfig::default(), &mut rng).unwrap();
        WcetPolicy::ChebyshevUniform { n: 5.0 }
            .assign(&mut ts)
            .unwrap();
        let verdict = edf_vd::analyze(&ts).schedulable;
        if !verdict {
            continue;
        }
        let cfg = SimConfig {
            horizon: Duration::from_secs(20),
            lc_policy: LcPolicy::DropAll,
            exec_model: JobExecModel::FullLoBudget,
            x_factor: None,
            release_jitter: Duration::ZERO,
            mode_switch: ModeSwitchPolicy::System,
            seed,
        };
        let sim = simulate(&ts, &cfg).unwrap();
        assert_eq!(sim.hc_deadline_misses, 0, "seed {seed}");
        assert_eq!(sim.lc_deadline_misses, 0, "seed {seed}");
        assert_eq!(sim.mode_switches, 0, "seed {seed}");
    }
}

/// The facade's module aliases expose every substrate.
#[test]
fn facade_modules_resolve() {
    let _ = chebymc::stats::chebyshev::one_sided_bound(1.0);
    let _ = chebymc::task::time::Duration::from_millis(1);
    let _ = chebymc::exec::benchmarks::qsort(10).unwrap();
    let _ = chebymc::sched::analysis::edf_vd::max_u_lc_lo(0.2, 0.5);
    let _ = chebymc::opt::GaConfig::default();
    let _ = chebymc::core::ChebyshevScheme::new();
}
