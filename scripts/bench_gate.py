#!/usr/bin/env python3
"""CI regression gate for the GA hot-path benchmark (BENCH_ga.json).

Validates the schema and internal consistency of a fresh ``ga_perf``
report, then gates against the checked-in reference. What can be gated
strictly differs by how reproducible each quantity is:

* **Evaluation-count efficiency** (objective computations and gene-term
  folds per considered candidate) is bit-deterministic for a fixed seed
  and config, identical on every machine. A >``--tolerance`` regression
  here — the memo stops hitting, deltas stop carrying, the incremental
  engine re-folds more than it should — fails the job. This is the
  machine-independent form of effective throughput: candidates served
  per unit of objective work.
* **Within-run wall-clock ratios** are gated only where both sides are
  measurable (>= ``WALL_FLOOR_S``): on those cells the incremental
  backend must hold a minimum advantage over the closure backend.
  Sub-millisecond cells swing tens of percent on shared runners and are
  reported, not gated.
* **Cross-machine wall ratios** against the reference are printed as
  informational trajectory context only — the reference was recorded on
  different hardware.

Usage:
    python3 scripts/bench_gate.py --current /tmp/bench.json \
        --reference BENCH_ga.json [--tolerance 0.10]
"""

import argparse
import json
import sys

# Below this wall time a cell's throughput is scheduler noise, not a
# measurement; such cells are exempt from wall-clock gating.
WALL_FLOOR_S = 0.002
# Measurable scaling cells must show at least this incremental-vs-closure
# effective-throughput advantage (observed ~3-4x at 1000 tasks).
MIN_INCREMENTAL_ADVANTAGE = 1.5

RUN_FIELDS = {
    "name",
    "threads",
    "wall_s",
    "considered",
    "raw_objective_evals",
    "delta_evals",
    "carried",
    "memo_hits",
    "batch_dups",
    "genes_evaluated",
    "genes_total",
    "raw_evals_per_sec",
    "effective_evals_per_sec",
    "best_fitness",
}
RUN_NAMES = [
    "baseline_serial",
    "new_serial",
    "new_parallel",
    "incremental_serial",
    "incremental_parallel",
]
SCALING_FIELDS = {
    "hc_tasks",
    "population_size",
    "generations",
    "threads",
    "backend",
    "wall_s",
    "considered",
    "raw_objective_evals",
    "raw_evals_per_sec",
    "effective_evals_per_sec",
    "best_fitness",
    "bit_identical_vs_t1",
}
SPEEDUPS = [
    "speedup_new_serial_vs_baseline",
    "speedup_parallel_vs_new_serial",
    "speedup_parallel_vs_baseline",
    "speedup_incremental_vs_new_serial",
    "speedup_incremental_vs_baseline",
]

failures = []


def check(ok, msg):
    if ok:
        print(f"  ok: {msg}")
    else:
        failures.append(msg)
        print(f"  FAIL: {msg}", file=sys.stderr)


def validate_schema(report):
    print("schema validation (v2):")
    check(report.get("schema_version") == 2, "schema_version is 2")
    for key in (
        ["machine_threads", "repeats", "hc_tasks", "runs", "scaling_mode", "scaling"]
        + ["results_bit_identical", "stage_breakdown"]
        + SPEEDUPS
    ):
        check(key in report, f"top-level field {key!r} present")
    runs = {r.get("name"): r for r in report.get("runs", [])}
    check(list(runs) == RUN_NAMES, f"runs are exactly {RUN_NAMES}")
    for name, run in runs.items():
        check(
            set(run) == RUN_FIELDS,
            f"run {name!r} has the v2 field set (got {sorted(set(run) ^ RUN_FIELDS)} off)",
        )
    for i, cell in enumerate(report.get("scaling", [])):
        check(set(cell) == SCALING_FIELDS, f"scaling cell {i} has the v2 field set")
    if report.get("scaling_mode", "off") != "off":
        check(bool(report.get("scaling")), "scaling sweep ran and recorded cells")
    return runs


def validate_consistency(report, runs):
    print("internal consistency:")
    for name, run in runs.items():
        # raw_objective_evals = full + delta folds; every considered
        # candidate is served exactly once: computed, carried from its
        # bitwise-identical parent, or found in the memo / batch table.
        served = (
            run["raw_objective_evals"]
            + run["carried"]
            + run["memo_hits"]
            + run["batch_dups"]
        )
        check(
            run["considered"] == served,
            f"{name}: considered {run['considered']} == evals served {served}",
        )
        check(
            run["genes_evaluated"] <= run["genes_total"],
            f"{name}: genes_evaluated <= genes_total",
        )
    check(report["results_bit_identical"] is True, "all five runs bit-identical")
    fitness = {run["best_fitness"] for run in runs.values()}
    check(len(fitness) == 1, f"one best fitness across runs (got {sorted(fitness)})")
    inc = runs.get("incremental_serial")
    if inc:
        check(inc["delta_evals"] > 0, "incremental path actually delta-evaluated")
        check(
            inc["genes_evaluated"] < inc["genes_total"],
            "incremental path folded fewer gene-terms than a full recompute",
        )
    for cell in report.get("scaling", []):
        where = (
            f"scaling {cell['hc_tasks']}t/p{cell['population_size']}"
            f"/t{cell['threads']}/{cell['backend']}"
        )
        check(cell["bit_identical_vs_t1"] is True, f"{where}: bit-identical vs t1")
    sb = report["stage_breakdown"]
    check(sb["ga_run_ns"] > 0 and sb["objective_evals"] > 0, "traced closure run recorded")
    check(sb["fitness_batch_ns"] <= sb["ga_run_ns"], "closure fitness time within run time")
    check(
        sb["incremental_fitness_batch_ns"] <= sb["incremental_ga_run_ns"],
        "incremental fitness time within run time",
    )
    check(sb["incremental_delta_evals"] > 0, "traced incremental run delta-evaluated")


def efficiency(run):
    """Deterministic per-run efficiency: objective work per candidate."""
    return {
        "compute_fraction": run["raw_objective_evals"] / run["considered"],
        "fold_fraction": run["genes_evaluated"] / max(run["genes_total"], 1),
    }


def validate_count_regression(runs, ref_runs, tolerance):
    print(f"deterministic efficiency vs reference (tolerance {tolerance:.0%}):")
    for name, run in runs.items():
        ref = ref_runs.get(name)
        if ref is None:
            print(f"  (run {name!r} absent from reference, skipped)")
            continue
        cur_eff, ref_eff = efficiency(run), efficiency(ref)
        for metric in cur_eff:
            check(
                cur_eff[metric] <= ref_eff[metric] * (1.0 + tolerance),
                f"{name}: {metric} {cur_eff[metric]:.4f} vs reference "
                f"{ref_eff[metric]:.4f}",
            )


def scaling_cells(report):
    out = {}
    for c in report.get("scaling", []):
        key = (c["hc_tasks"], c["population_size"], c["generations"], c["threads"])
        out.setdefault(key, {})[c["backend"]] = c
    return out


def validate_scaling(report, reference, tolerance):
    print("scaling trajectory:")
    ref_cells = scaling_cells(reference)
    gated = 0
    for key, by_backend in scaling_cells(report).items():
        if len(by_backend) < 2:
            continue
        inc, clo = by_backend["incremental"], by_backend["closure_memo"]
        where = f"scaling {key[0]}t/p{key[1]}/g{key[2]}/t{key[3]}"
        # Deterministic part: objective computations per candidate must
        # not regress against the stored trajectory.
        ref = ref_cells.get(key)
        if ref and len(ref) == 2:
            for backend in ("incremental", "closure_memo"):
                cur_cf = by_backend[backend]["raw_objective_evals"] / by_backend[
                    backend
                ]["considered"]
                ref_cf = ref[backend]["raw_objective_evals"] / ref[backend]["considered"]
                check(
                    cur_cf <= ref_cf * (1.0 + tolerance),
                    f"{where}/{backend}: compute fraction {cur_cf:.4f} vs "
                    f"reference {ref_cf:.4f}",
                )
        # Wall-clock part: only where the measurement is meaningful, and
        # only within this run (same machine, same process).
        advantage = inc["effective_evals_per_sec"] / clo["effective_evals_per_sec"]
        if inc["wall_s"] >= WALL_FLOOR_S and clo["wall_s"] >= WALL_FLOOR_S:
            gated += 1
            check(
                advantage >= MIN_INCREMENTAL_ADVANTAGE,
                f"{where}: incremental advantage {advantage:.2f}x >= "
                f"{MIN_INCREMENTAL_ADVANTAGE}x",
            )
        else:
            print(f"  ({where}: advantage {advantage:.2f}x, sub-measurable wall, not gated)")
    check(gated > 0, "at least one measurable scaling cell was wall-gated")


def print_wall_context(report, reference):
    print("wall-clock trajectory vs reference (informational, different hardware):")
    for name in SPEEDUPS:
        cur, ref = report.get(name), reference.get(name)
        if cur is not None and ref is not None:
            print(f"  {name}: current {cur:.3f}x, reference {ref:.3f}x")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, help="fresh ga_perf report")
    ap.add_argument("--reference", required=True, help="checked-in BENCH_ga.json")
    ap.add_argument("--tolerance", type=float, default=0.10)
    args = ap.parse_args()

    with open(args.current) as f:
        report = json.load(f)
    with open(args.reference) as f:
        reference = json.load(f)

    runs = validate_schema(report)
    if failures:
        print(f"\nbench gate: {len(failures)} schema failure(s)", file=sys.stderr)
        return 1
    validate_consistency(report, runs)
    ref_runs = {r.get("name"): r for r in reference.get("runs", [])}
    if reference.get("schema_version") == 2:
        validate_count_regression(runs, ref_runs, args.tolerance)
        validate_scaling(report, reference, args.tolerance)
    else:
        print("(reference predates schema v2; count-regression gate skipped)")
    print_wall_context(report, reference)

    if failures:
        print(f"\nbench gate: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nbench gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
