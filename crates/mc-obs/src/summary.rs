//! Trace aggregation: parse a JSONL trace back into per-stage statistics.
//!
//! The parser is a minimal recursive-descent JSON reader covering exactly
//! the subset the sink emits (flat objects of strings, numbers and arrays
//! of numbers) — the crate stays dependency-free in both directions.
//! [`TraceSummary`] backs both `chebymc trace summary` and the `ga_perf`
//! stage breakdown.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{bucket_floor, ObsError, HIST_BUCKETS, TRACE_SCHEMA_VERSION};

/// Aggregated statistics for one span name.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Span name as recorded.
    pub name: String,
    /// Number of recorded intervals.
    pub count: u64,
    /// Sum of `t1 - t0` over all intervals, in nanoseconds.
    pub total_ns: u64,
    /// Shortest interval, ns.
    pub min_ns: u64,
    /// Longest interval, ns.
    pub max_ns: u64,
    /// Trace-local thread ids that recorded this span.
    pub tids: BTreeSet<u64>,
}

/// Aggregated total for one counter name.
#[derive(Debug, Clone)]
pub struct CounterStat {
    /// Counter name as recorded.
    pub name: String,
    /// Sum over all threads and flushes.
    pub total: u64,
}

/// Aggregated statistics for one value-sample name.
#[derive(Debug, Clone)]
pub struct ValueStat {
    /// Value name as recorded.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Sample with the latest timestamp.
    pub last: f64,
    t_last: u64,
}

/// Merged log-scale histogram for one name.
#[derive(Debug, Clone)]
pub struct HistStat {
    /// Histogram name as recorded.
    pub name: String,
    /// Total sample count across all buckets.
    pub count: u64,
    /// Per-bucket counts; see [`crate::bucket_index`] for the layout.
    pub buckets: Box<[u64; HIST_BUCKETS]>,
}

impl HistStat {
    /// Lower edge of the bucket where the cumulative count first reaches
    /// quantile `q` (clamped to `[0, 1]`). `0.0` for an empty histogram.
    #[must_use]
    pub fn quantile_floor(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_floor(i);
            }
        }
        bucket_floor(HIST_BUCKETS - 1)
    }
}

/// A fully aggregated trace: what `chebymc trace summary` prints.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Schema version from the `meta` header.
    pub schema: u64,
    /// Number of event records (everything except `meta` lines).
    pub events: u64,
    /// Per-span aggregates, sorted by descending total time.
    pub spans: Vec<SpanStat>,
    /// Counter totals, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Value-sample aggregates, sorted by name.
    pub values: Vec<ValueStat>,
    /// Histogram aggregates, sorted by name.
    pub hists: Vec<HistStat>,
    /// Earliest timestamp observed in the trace, ns.
    pub t_min: u64,
    /// Latest timestamp observed in the trace, ns.
    pub t_max: u64,
}

impl TraceSummary {
    /// Wall-clock extent covered by the trace's timestamps, ns.
    #[must_use]
    pub fn wall_ns(&self) -> u64 {
        self.t_max.saturating_sub(self.t_min)
    }

    /// Number of recorded intervals for span `name` (0 if absent).
    #[must_use]
    pub fn span_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.count)
    }

    /// Total nanoseconds spent in span `name` (0 if absent).
    #[must_use]
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.total_ns)
    }

    /// Total for counter `name` (0 if absent).
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total)
    }

    /// Parses a JSONL trace produced by this crate's sink.
    ///
    /// The trace must carry a `meta` record with the current
    /// [`TRACE_SCHEMA_VERSION`]; unknown record kinds are rejected so
    /// schema drift fails loudly instead of silently dropping data.
    pub fn parse(text: &str) -> Result<Self, ObsError> {
        let mut schema = None;
        let mut events = 0u64;
        let mut spans: Vec<SpanStat> = Vec::new();
        let mut counters: Vec<CounterStat> = Vec::new();
        let mut values: Vec<ValueStat> = Vec::new();
        let mut hists: Vec<HistStat> = Vec::new();
        let mut t_min = u64::MAX;
        let mut t_max = 0u64;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let fields = parse_flat_object(line).map_err(|reason| ObsError::Parse {
                line: lineno,
                reason,
            })?;
            let kind = fields.str_field("k").map_err(|reason| ObsError::Parse {
                line: lineno,
                reason,
            })?;
            let fail = |reason: String| ObsError::Parse {
                line: lineno,
                reason,
            };
            match kind {
                "meta" => {
                    let v = fields.num_field("schema").map_err(fail)? as u64;
                    if v != TRACE_SCHEMA_VERSION {
                        return Err(ObsError::Parse {
                            line: lineno,
                            reason: format!(
                                "unsupported schema {v} (this build reads {TRACE_SCHEMA_VERSION})"
                            ),
                        });
                    }
                    schema = Some(v);
                }
                "span" => {
                    events += 1;
                    let name = fields.str_field("name").map_err(fail)?;
                    let tid = fields.num_field("tid").map_err(fail)? as u64;
                    let t0 = fields.num_field("t0").map_err(fail)? as u64;
                    let t1 = fields.num_field("t1").map_err(fail)? as u64;
                    let dur = t1.saturating_sub(t0);
                    t_min = t_min.min(t0);
                    t_max = t_max.max(t1);
                    match spans.iter_mut().find(|s| s.name == name) {
                        Some(s) => {
                            s.count += 1;
                            s.total_ns += dur;
                            s.min_ns = s.min_ns.min(dur);
                            s.max_ns = s.max_ns.max(dur);
                            s.tids.insert(tid);
                        }
                        None => spans.push(SpanStat {
                            name: name.to_owned(),
                            count: 1,
                            total_ns: dur,
                            min_ns: dur,
                            max_ns: dur,
                            tids: BTreeSet::from([tid]),
                        }),
                    }
                }
                "ctr" => {
                    events += 1;
                    let name = fields.str_field("name").map_err(fail)?;
                    let n = fields.num_field("n").map_err(fail)? as u64;
                    match counters.iter_mut().find(|c| c.name == name) {
                        Some(c) => c.total += n,
                        None => counters.push(CounterStat {
                            name: name.to_owned(),
                            total: n,
                        }),
                    }
                }
                "val" => {
                    events += 1;
                    let name = fields.str_field("name").map_err(fail)?;
                    let t = fields.num_field("t").map_err(fail)? as u64;
                    let v = fields.num_field("v").map_err(fail)?;
                    t_min = t_min.min(t);
                    t_max = t_max.max(t);
                    match values.iter_mut().find(|s| s.name == name) {
                        Some(s) => {
                            s.count += 1;
                            s.min = s.min.min(v);
                            s.max = s.max.max(v);
                            s.mean += (v - s.mean) / s.count as f64;
                            if t >= s.t_last {
                                s.t_last = t;
                                s.last = v;
                            }
                        }
                        None => values.push(ValueStat {
                            name: name.to_owned(),
                            count: 1,
                            min: v,
                            max: v,
                            mean: v,
                            last: v,
                            t_last: t,
                        }),
                    }
                }
                "hist" => {
                    events += 1;
                    let name = fields.str_field("name").map_err(fail)?;
                    let pairs = fields.arr_field("buckets").map_err(fail)?;
                    let stat = match hists.iter_mut().find(|h| h.name == name) {
                        Some(h) => h,
                        None => {
                            hists.push(HistStat {
                                name: name.to_owned(),
                                count: 0,
                                buckets: Box::new([0; HIST_BUCKETS]),
                            });
                            hists.last_mut().expect("just pushed")
                        }
                    };
                    for pair in pairs {
                        let Val::Arr(pair) = pair else {
                            return Err(ObsError::Parse {
                                line: lineno,
                                reason: "histogram buckets must be [index, count] pairs".into(),
                            });
                        };
                        let (Some(Val::Num(i)), Some(Val::Num(c))) = (pair.first(), pair.get(1))
                        else {
                            return Err(ObsError::Parse {
                                line: lineno,
                                reason: "histogram bucket pair must hold two numbers".into(),
                            });
                        };
                        let i = *i as usize;
                        if i >= HIST_BUCKETS {
                            return Err(ObsError::Parse {
                                line: lineno,
                                reason: format!("bucket index {i} out of range"),
                            });
                        }
                        stat.buckets[i] += *c as u64;
                        stat.count += *c as u64;
                    }
                }
                other => {
                    return Err(ObsError::Parse {
                        line: lineno,
                        reason: format!("unknown record kind {other:?}"),
                    });
                }
            }
        }

        let Some(schema) = schema else {
            return Err(ObsError::Parse {
                line: 0,
                reason: "trace has no meta record (empty or truncated file?)".into(),
            });
        };

        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        values.sort_by(|a, b| a.name.cmp(&b.name));
        hists.sort_by(|a, b| a.name.cmp(&b.name));
        if t_min == u64::MAX {
            t_min = 0;
        }
        Ok(TraceSummary {
            schema,
            events,
            spans,
            counters,
            values,
            hists,
            t_min,
            t_max,
        })
    }

    /// Whether the trace carries campaign-service (`serve.*`)
    /// instrumentation from `chebymc serve` or `chebymc worker`.
    #[must_use]
    pub fn has_serve_events(&self) -> bool {
        self.spans.iter().any(|s| s.name.starts_with("serve."))
            || self.counters.iter().any(|c| c.name.starts_with("serve."))
    }

    /// Renders the human-readable per-stage breakdown.
    ///
    /// `%wall` is each span's total time against the trace's wall-clock
    /// extent; spans running concurrently on several threads can exceed
    /// 100%. Traces from the campaign service additionally get a
    /// coordinator-health digest of the `serve.*` events.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let wall = self.wall_ns();
        let _ = writeln!(
            out,
            "trace summary: schema {}, {} events, wall {}",
            self.schema,
            self.events,
            fmt_ns(wall as f64)
        );
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspans (per-stage time breakdown):");
            let _ = writeln!(
                out,
                "  {:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>7} {:>4}",
                "name", "count", "total", "mean", "min", "max", "%wall", "thr"
            );
            for s in &self.spans {
                let mean = s.total_ns as f64 / s.count as f64;
                let pct = if wall == 0 {
                    0.0
                } else {
                    100.0 * s.total_ns as f64 / wall as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>6.1}% {:>4}",
                    s.name,
                    s.count,
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(mean),
                    fmt_ns(s.min_ns as f64),
                    fmt_ns(s.max_ns as f64),
                    pct,
                    s.tids.len(),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for c in &self.counters {
                let _ = writeln!(out, "  {:<24} {:>14}", c.name, c.total);
            }
        }
        if !self.values.is_empty() {
            let _ = writeln!(out, "\nvalues:");
            for v in &self.values {
                let _ = writeln!(
                    out,
                    "  {:<24} count {:>7}  last {:.6}  mean {:.6}  min {:.6}  max {:.6}",
                    v.name, v.count, v.last, v.mean, v.min, v.max
                );
            }
        }
        if self.has_serve_events() {
            let _ = writeln!(out, "\ncoordinator health (serve.*):");
            for (label, total) in [
                ("records accepted", self.counter_total("serve.records")),
                (
                    "duplicates absorbed",
                    self.counter_total("serve.duplicates"),
                ),
                (
                    "heartbeats received",
                    self.counter_total("serve.heartbeats"),
                ),
                ("leases reclaimed", self.counter_total("serve.reclaims")),
                ("lease assignments", self.span_count("serve.assign")),
                ("lease sessions run", self.span_count("serve.lease")),
                ("records streamed", self.counter_total("serve.sent")),
            ] {
                let _ = writeln!(out, "  {label:<24} {total:>14}");
            }
        }
        if !self.hists.is_empty() {
            let _ = writeln!(
                out,
                "\nhistograms (log-scale buckets, quantile lower bounds):"
            );
            for h in &self.hists {
                // Only `*_ns` histograms carry time units; the rest are
                // plain magnitudes (queue depths, counts).
                let q = |p: f64| {
                    let floor = h.quantile_floor(p);
                    if h.name.ends_with("_ns") {
                        fmt_ns(floor)
                    } else {
                        format!("{floor:.0}")
                    }
                };
                let _ = writeln!(
                    out,
                    "  {:<24} count {:>7}  p50 >= {}  p90 >= {}  p99 >= {}",
                    h.name,
                    h.count,
                    q(0.50),
                    q(0.90),
                    q(0.99),
                );
            }
        }
        out
    }
}

/// Formats a nanosecond quantity with an adaptive unit. Histogram sample
/// units are nominally ns throughout the workspace instrumentation.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// A parsed JSON value — exactly the subset the sink emits.
#[derive(Debug, Clone)]
enum Val {
    Num(f64),
    Str(String),
    Arr(Vec<Val>),
}

struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&Val> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Val::Str(s)) => Ok(s),
            Some(_) => Err(format!("field {key:?} is not a string")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Val::Num(n)) => Ok(*n),
            Some(_) => Err(format!("field {key:?} is not a number")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn arr_field(&self, key: &str) -> Result<&[Val], String> {
        match self.get(key) {
            Some(Val::Arr(a)) => Ok(a),
            Some(_) => Err(format!("field {key:?} is not an array")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

/// Parses one line as a flat JSON object.
fn parse_flat_object(line: &str) -> Result<Fields, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.parse_value()?;
            fields.push((key, val));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing bytes after JSON object".into());
    }
    Ok(Fields(fields))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
                Ok(Val::Arr(items))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "number is not utf-8".to_owned())?;
        text.parse::<f64>()
            .map(Val::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "bad utf-8 in string".to_owned())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"k":"meta","schema":1}
{"k":"span","name":"exp.unit","tid":0,"t0":100,"t1":1100}
{"k":"span","name":"exp.unit","tid":1,"t0":200,"t1":700}
{"k":"span","name":"store.fsync","tid":0,"t0":1100,"t1":1200}
{"k":"val","name":"ga.gen_best","tid":0,"t":500,"v":0.5}
{"k":"val","name":"ga.gen_best","tid":0,"t":900,"v":0.875}
{"k":"ctr","name":"ga.evals","tid":0,"n":40}
{"k":"ctr","name":"ga.evals","tid":1,"n":2}
{"k":"hist","name":"par.chunk_ns","tid":1,"buckets":[[3,5],[10,1]]}
"#;

    #[test]
    fn parses_and_aggregates_every_record_kind() {
        let s = TraceSummary::parse(SAMPLE).unwrap();
        assert_eq!(s.schema, 1);
        assert_eq!(s.events, 8);
        assert_eq!(s.span_count("exp.unit"), 2);
        assert_eq!(s.span_total_ns("exp.unit"), 1500);
        assert_eq!(s.span_total_ns("store.fsync"), 100);
        assert_eq!(s.counter_total("ga.evals"), 42);
        assert_eq!(s.wall_ns(), 1100);
        let best = s.values.iter().find(|v| v.name == "ga.gen_best").unwrap();
        assert_eq!(best.count, 2);
        assert!(
            (best.last - 0.875).abs() < 1e-12,
            "last sample by timestamp"
        );
        assert!((best.mean - 0.6875).abs() < 1e-12);
        let h = s.hists.iter().find(|h| h.name == "par.chunk_ns").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[3], 5);
        assert_eq!(h.quantile_floor(0.5), bucket_floor(3));
        assert_eq!(h.quantile_floor(1.0), bucket_floor(10));
    }

    #[test]
    fn spans_sort_by_descending_total_time() {
        let s = TraceSummary::parse(SAMPLE).unwrap();
        assert_eq!(s.spans[0].name, "exp.unit");
        assert_eq!(s.spans[1].name, "store.fsync");
    }

    #[test]
    fn render_mentions_every_section() {
        let text = TraceSummary::parse(SAMPLE).unwrap().render();
        for needle in [
            "trace summary",
            "spans (per-stage time breakdown)",
            "exp.unit",
            "counters:",
            "ga.evals",
            "values:",
            "histograms",
            "par.chunk_ns",
        ] {
            assert!(
                text.contains(needle),
                "render output misses {needle:?}:\n{text}"
            );
        }
    }

    #[test]
    fn serve_traces_get_a_coordinator_health_digest() {
        let plain = TraceSummary::parse(SAMPLE).unwrap();
        assert!(!plain.has_serve_events());
        assert!(!plain.render().contains("coordinator health"));

        let serve_trace = concat!(
            "{\"k\":\"meta\",\"schema\":1}\n",
            "{\"k\":\"span\",\"name\":\"serve.assign\",\"tid\":0,\"t0\":10,\"t1\":20}\n",
            "{\"k\":\"ctr\",\"name\":\"serve.records\",\"tid\":0,\"n\":25}\n",
            "{\"k\":\"ctr\",\"name\":\"serve.duplicates\",\"tid\":0,\"n\":3}\n",
            "{\"k\":\"ctr\",\"name\":\"serve.reclaims\",\"tid\":0,\"n\":1}\n",
        );
        let s = TraceSummary::parse(serve_trace).unwrap();
        assert!(s.has_serve_events());
        let text = s.render();
        for needle in [
            "coordinator health (serve.*):",
            "records accepted",
            "duplicates absorbed",
            "leases reclaimed",
        ] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn missing_meta_and_wrong_schema_are_rejected() {
        let no_meta = "{\"k\":\"ctr\",\"name\":\"x\",\"tid\":0,\"n\":1}\n";
        assert!(matches!(
            TraceSummary::parse(no_meta),
            Err(ObsError::Parse { .. })
        ));
        let bad_schema = "{\"k\":\"meta\",\"schema\":999}\n";
        let err = TraceSummary::parse(bad_schema).unwrap_err();
        assert!(err.to_string().contains("unsupported schema 999"), "{err}");
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let text = "{\"k\":\"meta\",\"schema\":1}\nnot json\n";
        match TraceSummary::parse(text) {
            Err(ObsError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let unknown = "{\"k\":\"meta\",\"schema\":1}\n{\"k\":\"mystery\"}\n";
        assert!(
            TraceSummary::parse(unknown).is_err(),
            "unknown kinds fail loudly"
        );
    }
}
