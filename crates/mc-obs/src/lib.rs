//! Zero-dependency observability for the chebymc workspace.
//!
//! The crate exposes a process-wide event sink that records **spans**
//! (RAII-guarded intervals with monotonic nanosecond timestamps),
//! **counters** (monotone `u64` accumulators), **values** (raw `f64`
//! samples, e.g. per-generation GA fitness) and **histograms** (`f64`
//! samples bucketed into fixed log-scale, power-of-two buckets), and
//! writes them as schema-versioned JSONL — one self-contained JSON
//! object per line.
//!
//! # No-op mode
//!
//! Until [`init_file`] or [`init_writer`] installs a writer, every
//! recording call short-circuits on a single `Relaxed` atomic load and
//! allocates nothing, so instrumentation left in hot paths costs nothing
//! measurable when tracing is off.
//!
//! # Thread safety
//!
//! Events land in per-thread buffers (registered in a global registry on
//! first use), so worker threads from `mc-par` record without contending
//! on a shared lock. Buffers drain through a single writer — on
//! [`flush`], on [`shutdown`], or when a thread's buffer crosses an
//! internal threshold — so emitted lines never interleave. Per-thread
//! event order is preserved; events from different threads are ordered
//! only by their timestamps.
//!
//! # Quickstart
//!
//! ```
//! let sink = mc_obs::SharedBuffer::default();
//! mc_obs::init_writer(Box::new(sink.clone())).unwrap();
//! {
//!     let _span = mc_obs::span("demo.work");
//!     mc_obs::counter("demo.items", 3);
//!     mc_obs::record_f64("demo.latency_ns", 1500.0);
//! }
//! mc_obs::shutdown().unwrap();
//! let summary = mc_obs::summary::TraceSummary::parse(&sink.take_string()).unwrap();
//! assert_eq!(summary.counter_total("demo.items"), 3);
//! assert_eq!(summary.span_count("demo.work"), 1);
//! ```

#![warn(missing_docs)]

pub mod summary;

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Version stamped into the `meta` record at the head of every trace.
///
/// Bump when the line format changes incompatibly; [`summary::TraceSummary::parse`]
/// rejects traces with a different major schema.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Number of fixed log-scale histogram buckets.
///
/// Bucket `0` holds samples below `1.0` (and any non-finite or negative
/// sample); bucket `i >= 1` holds samples in `[2^(i-1), 2^i)`, with the
/// last bucket open-ended.
pub const HIST_BUCKETS: usize = 64;

/// Flush a thread's buffer to the writer once it holds this many events.
const AUTO_FLUSH_EVENTS: usize = 4096;

/// Errors from the observability layer.
#[derive(Debug)]
pub enum ObsError {
    /// The underlying writer failed.
    Io(std::io::Error),
    /// `init_*` was called while a writer is already installed.
    AlreadyInstalled,
    /// A trace file could not be parsed; carries the 1-based line number
    /// and a reason.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Io(e) => write!(f, "trace i/o error: {e}"),
            ObsError::AlreadyInstalled => {
                write!(
                    f,
                    "a trace writer is already installed; call shutdown() first"
                )
            }
            ObsError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

/// Maps a sample to its log-scale bucket: `0` for anything below `1.0`
/// (including negatives and non-finite values), else `floor(log2(v)) + 1`
/// clamped to the last bucket.
#[must_use]
pub fn bucket_index(v: f64) -> usize {
    // NaN, negatives and sub-1.0 samples all land in the underflow bucket.
    if v.is_nan() || v < 1.0 {
        return 0;
    }
    if v == f64::INFINITY {
        return HIST_BUCKETS - 1;
    }
    let exp = v.log2().floor() as i64 + 1;
    exp.clamp(1, (HIST_BUCKETS - 1) as i64) as usize
}

/// Inclusive lower edge of bucket `i`: `0.0` for the underflow bucket,
/// else `2^(i-1)`.
#[must_use]
pub fn bucket_floor(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        2f64.powi((i - 1) as i32)
    }
}

/// One buffered event. Counters and histograms are pre-aggregated per
/// thread (see [`ThreadEvents`]) rather than buffered per call.
enum Event {
    Span {
        name: &'static str,
        t0: u64,
        t1: u64,
    },
    Value {
        name: &'static str,
        t: u64,
        v: f64,
    },
}

/// Per-thread event storage. Spans/values keep arrival order; counters
/// and histograms accumulate into small linear-scan tables (the
/// instrumentation uses a handful of distinct names, so a `Vec` beats a
/// hash map here and keeps the crate dependency-free).
#[derive(Default)]
struct ThreadEvents {
    events: Vec<Event>,
    counters: Vec<(&'static str, u64)>,
    hists: Vec<(&'static str, Box<[u64; HIST_BUCKETS]>)>,
}

impl ThreadEvents {
    fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.hists.is_empty()
    }
}

struct ThreadBuf {
    tid: u64,
    events: Mutex<ThreadEvents>,
}

struct Global {
    start: Instant,
    /// Lock order: `writer` before any `ThreadBuf::events`. Threads
    /// recording events take only their own `events` lock, so recording
    /// never contends with other threads except during a drain.
    writer: Mutex<Option<Box<dyn Write + Send>>>,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
    next_tid: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Global> = OnceLock::new();

fn global() -> &'static Global {
    GLOBAL.get_or_init(|| Global {
        start: Instant::now(),
        writer: Mutex::new(None),
        threads: Mutex::new(Vec::new()),
        next_tid: AtomicU64::new(0),
    })
}

/// A poisoned mutex only means an instrumented thread panicked mid-record;
/// the protected data is plain event storage, so keep going.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        let g = global();
        let buf = Arc::new(ThreadBuf {
            tid: g.next_tid.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(ThreadEvents::default()),
        });
        lock(&g.threads).push(Arc::clone(&buf));
        buf
    };
}

/// True while a writer is installed. Hot paths may use this to skip
/// computing event payloads; every recording call also checks it.
#[inline(always)]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process-wide trace clock started (first use of
/// the sink). Monotonic; shared by every thread.
#[must_use]
pub fn now_ns() -> u64 {
    global().start.elapsed().as_nanos() as u64
}

/// Installs a writer and enables recording. Writes the schema `meta`
/// header line. Fails with [`ObsError::AlreadyInstalled`] if a writer is
/// active; stale events buffered since the last [`shutdown`] are
/// discarded so a new trace starts clean.
pub fn init_writer(w: Box<dyn Write + Send>) -> Result<(), ObsError> {
    let g = global();
    let mut writer = lock(&g.writer);
    if writer.is_some() {
        return Err(ObsError::AlreadyInstalled);
    }
    for buf in lock(&g.threads).iter() {
        let mut ev = lock(&buf.events);
        *ev = ThreadEvents::default();
    }
    let mut w = w;
    writeln!(w, "{{\"k\":\"meta\",\"schema\":{TRACE_SCHEMA_VERSION}}}")?;
    *writer = Some(w);
    ENABLED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Creates (truncates) `path` and installs a buffered file writer.
pub fn init_file(path: &Path) -> Result<(), ObsError> {
    let file = File::create(path)?;
    init_writer(Box::new(BufWriter::new(file)))
}

/// Drains every thread buffer through the writer and flushes it.
/// A no-op when no writer is installed.
pub fn flush() -> Result<(), ObsError> {
    let g = global();
    let mut writer = lock(&g.writer);
    if let Some(w) = writer.as_mut() {
        drain_all(g, w)?;
        w.flush()?;
    }
    Ok(())
}

/// Disables recording, drains every buffer, flushes and drops the
/// writer. After shutdown a new trace may be started with `init_*`.
pub fn shutdown() -> Result<(), ObsError> {
    ENABLED.store(false, Ordering::SeqCst);
    let g = global();
    let mut writer = lock(&g.writer);
    let res = match writer.as_mut() {
        Some(w) => drain_all(g, w).and_then(|()| w.flush().map_err(ObsError::from)),
        None => Ok(()),
    };
    *writer = None;
    res
}

fn drain_all(g: &Global, w: &mut (dyn Write + Send)) -> Result<(), ObsError> {
    let threads = lock(&g.threads);
    for buf in threads.iter() {
        let drained = {
            let mut ev = lock(&buf.events);
            if ev.is_empty() {
                continue;
            }
            std::mem::take(&mut *ev)
        };
        write_events(w, buf.tid, &drained)?;
    }
    Ok(())
}

fn write_events(w: &mut (dyn Write + Send), tid: u64, ev: &ThreadEvents) -> Result<(), ObsError> {
    let mut line = String::with_capacity(128);
    for e in &ev.events {
        line.clear();
        match e {
            Event::Span { name, t0, t1 } => {
                line.push_str("{\"k\":\"span\",\"name\":");
                push_json_str(&mut line, name);
                line.push_str(&format!(",\"tid\":{tid},\"t0\":{t0},\"t1\":{t1}}}"));
            }
            Event::Value { name, t, v } => {
                line.push_str("{\"k\":\"val\",\"name\":");
                push_json_str(&mut line, name);
                line.push_str(&format!(",\"tid\":{tid},\"t\":{t},\"v\":"));
                push_json_f64(&mut line, *v);
                line.push('}');
            }
        }
        writeln!(w, "{line}")?;
    }
    for (name, n) in &ev.counters {
        line.clear();
        line.push_str("{\"k\":\"ctr\",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(&format!(",\"tid\":{tid},\"n\":{n}}}"));
        writeln!(w, "{line}")?;
    }
    for (name, buckets) in &ev.hists {
        line.clear();
        line.push_str("{\"k\":\"hist\",\"name\":");
        push_json_str(&mut line, name);
        line.push_str(&format!(",\"tid\":{tid},\"buckets\":["));
        let mut first = true;
        for (i, &count) in buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("[{i},{count}]"));
        }
        line.push_str("]}");
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Appends `s` as a JSON string literal. Instrumentation names are plain
/// ASCII identifiers, but escape defensively so the output always parses.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. Rust's shortest-roundtrip `{}` format
/// for finite doubles is valid JSON except that integral values print
/// without a fraction — which JSON also allows.
fn push_json_f64(out: &mut String, v: f64) {
    debug_assert!(
        v.is_finite(),
        "non-finite values are filtered before buffering"
    );
    out.push_str(&format!("{v}"));
}

/// Runs `f` against the calling thread's buffer, then auto-flushes the
/// buffer if it grew past the threshold. Never panics during thread
/// teardown (events recorded from TLS destructors are dropped).
fn with_local(f: impl FnOnce(&mut ThreadEvents)) {
    let _ = LOCAL.try_with(|buf| {
        let over = {
            let mut ev = lock(&buf.events);
            f(&mut ev);
            ev.events.len() >= AUTO_FLUSH_EVENTS
        };
        if over {
            // Respect the writer -> events lock order: re-acquire under
            // the writer lock. I/O errors here cannot propagate (we may
            // be inside a Drop); the final flush()/shutdown() reports them.
            let g = global();
            let mut writer = lock(&g.writer);
            if let Some(w) = writer.as_mut() {
                let drained = std::mem::take(&mut *lock(&buf.events));
                let _ = write_events(w.as_mut(), buf.tid, &drained);
            }
        }
    });
}

/// RAII span guard: measures from [`span`] to drop and records one
/// `span` event on the calling thread. Safe to create on any thread,
/// including `mc-par` workers. If tracing is disabled when the guard is
/// created — or shut down before it drops — nothing is recorded.
#[must_use = "a span measures until dropped; binding it to `_` ends it immediately"]
pub struct Scope {
    open: Option<(&'static str, u64)>,
}

impl Scope {
    /// A guard that records nothing; what [`span`] returns when disabled.
    pub const fn disabled() -> Self {
        Scope { open: None }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.open.take() {
            if !is_enabled() {
                return;
            }
            let t1 = now_ns();
            with_local(|ev| ev.events.push(Event::Span { name, t0, t1 }));
        }
    }
}

/// Opens a span named `name`, closed when the returned guard drops.
#[inline]
pub fn span(name: &'static str) -> Scope {
    if !is_enabled() {
        return Scope::disabled();
    }
    Scope {
        open: Some((name, now_ns())),
    }
}

/// Adds `delta` to the process-wide counter `name`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    with_local(|ev| {
        if let Some(slot) = ev.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
        } else {
            ev.counters.push((name, delta));
        }
    });
}

/// Records one raw `f64` sample under `name` (a `val` event with its own
/// timestamp). Non-finite samples are dropped — JSON cannot carry them.
#[inline]
pub fn value(name: &'static str, v: f64) {
    if !is_enabled() || !v.is_finite() {
        return;
    }
    let t = now_ns();
    with_local(|ev| ev.events.push(Event::Value { name, t, v }));
}

/// Adds one sample to the log-scale histogram `name` (see
/// [`bucket_index`] for the bucket layout).
#[inline]
pub fn record_f64(name: &'static str, v: f64) {
    if !is_enabled() {
        return;
    }
    let idx = bucket_index(v);
    with_local(|ev| {
        if let Some((_, buckets)) = ev.hists.iter_mut().find(|(n, _)| *n == name) {
            buckets[idx] += 1;
        } else {
            let mut buckets = Box::new([0u64; HIST_BUCKETS]);
            buckets[idx] += 1;
            ev.hists.push((name, buckets));
        }
    });
}

/// A cloneable in-memory `Write` sink, for capturing traces in tests and
/// benchmarks without touching the filesystem.
#[derive(Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffered bytes as a string, leaving the buffer empty.
    /// Non-UTF-8 bytes are replaced (the sink only ever writes ASCII).
    #[must_use]
    pub fn take_string(&self) -> String {
        let bytes = std::mem::take(&mut *lock(&self.0));
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        lock(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::TraceSummary;

    /// The sink is process-global; tests that install a writer must not
    /// overlap. (Library users get the same guarantee from
    /// `AlreadyInstalled`; tests want determinism, not errors.)
    fn sink_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock(&LOCK)
    }

    #[test]
    fn bucket_index_layout() {
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.999), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.999), 1);
        assert_eq!(bucket_index(2.0), 2);
        assert_eq!(bucket_index(1024.0), 11);
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
        for i in 0..HIST_BUCKETS {
            assert_eq!(
                bucket_index(bucket_floor(i)),
                i,
                "floor of bucket {i} maps back"
            );
        }
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = sink_lock();
        assert!(!is_enabled());
        {
            let _span = span("noop.section");
            counter("noop.counter", 7);
            record_f64("noop.hist", 3.5);
            value("noop.val", 1.0);
        }
        // Install a writer afterwards: the trace must start clean.
        let sink = SharedBuffer::new();
        init_writer(Box::new(sink.clone())).unwrap();
        shutdown().unwrap();
        let text = sink.take_string();
        assert_eq!(text.lines().count(), 1, "only the meta header: {text}");
        assert!(text.contains("\"schema\":1"));
    }

    #[test]
    fn events_round_trip_through_the_summary_parser() {
        let _guard = sink_lock();
        let sink = SharedBuffer::new();
        init_writer(Box::new(sink.clone())).unwrap();
        {
            let _outer = span("rt.outer");
            for i in 0..10 {
                let _inner = span("rt.inner");
                counter("rt.count", 2);
                record_f64("rt.hist_ns", 1000.0 * (i + 1) as f64);
            }
            value("rt.best", 0.75);
            value("rt.best", f64::NAN); // dropped
        }
        shutdown().unwrap();
        let text = sink.take_string();
        let s = TraceSummary::parse(&text).unwrap();
        assert_eq!(s.schema, TRACE_SCHEMA_VERSION);
        assert_eq!(s.span_count("rt.inner"), 10);
        assert_eq!(s.span_count("rt.outer"), 1);
        assert!(s.span_total_ns("rt.outer") >= s.span_total_ns("rt.inner"));
        assert_eq!(s.counter_total("rt.count"), 20);
        let hist = s.hists.iter().find(|h| h.name == "rt.hist_ns").unwrap();
        assert_eq!(hist.count, 10);
        let val = s.values.iter().find(|v| v.name == "rt.best").unwrap();
        assert_eq!(val.count, 1, "non-finite samples never reach the trace");
        assert!((val.last - 0.75).abs() < 1e-12);
    }

    #[test]
    fn double_init_is_rejected_and_reinit_after_shutdown_works() {
        let _guard = sink_lock();
        let first = SharedBuffer::new();
        init_writer(Box::new(first.clone())).unwrap();
        assert!(matches!(
            init_writer(Box::new(SharedBuffer::new())),
            Err(ObsError::AlreadyInstalled)
        ));
        shutdown().unwrap();
        let second = SharedBuffer::new();
        init_writer(Box::new(second.clone())).unwrap();
        counter("reinit.count", 1);
        shutdown().unwrap();
        let text = second.take_string();
        assert!(
            text.contains("reinit.count"),
            "second trace records: {text}"
        );
    }

    #[test]
    fn worker_threads_flush_through_one_writer_without_interleaving() {
        let _guard = sink_lock();
        let sink = SharedBuffer::new();
        init_writer(Box::new(sink.clone())).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..2000 {
                        let _s = span("mt.task");
                        counter("mt.done", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        shutdown().unwrap();
        let text = sink.take_string();
        for (i, line) in text.lines().enumerate() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "line {} is a whole JSON object: {line:?}",
                i + 1
            );
        }
        let s = TraceSummary::parse(&text).unwrap();
        assert_eq!(s.span_count("mt.task"), 8000);
        assert_eq!(s.counter_total("mt.done"), 8000);
        let tids: std::collections::BTreeSet<u64> = s
            .spans
            .iter()
            .flat_map(|st| st.tids.iter().copied())
            .collect();
        assert!(
            tids.len() >= 4,
            "each worker thread got its own tid: {tids:?}"
        );
    }
}
