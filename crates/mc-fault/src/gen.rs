//! Seeded generators for the adversarial suites.
//!
//! Everything here is a pure function of the [`FaultRng`] it is handed,
//! so any failing case reproduces from the property harness's printed
//! case seed. The generators deliberately avoid
//! `mc_task::generate` (which draws through the vendored `rand` traits):
//! this crate stays on its own PRNG so it can sit below every crate it
//! tests.

use crate::rng::FaultRng;
use mc_task::time::Duration;
use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};

/// The period ladder (milliseconds) used by [`mixed_taskset`]. Chosen so
/// random sets keep a small hyperperiod (≤ 200 ms here), which keeps the
/// differential simulations fast enough for thousands of cases.
pub const PERIOD_LADDER_MS: [u64; 5] = [5, 10, 20, 25, 50];

/// A random dual-criticality task set: 1–3 HC tasks and 0–3 LC tasks on
/// the [`PERIOD_LADDER_MS`], with per-task budgets scaled down by the
/// task count so a useful fraction of generated sets is schedulable
/// (an all-unschedulable stream would make "schedulable ⇒ no miss"
/// oracles vacuous).
#[must_use]
pub fn mixed_taskset(rng: &mut FaultRng) -> TaskSet {
    let hc = rng.range_u64(1, 3) as usize;
    let lc = rng.below(4) as usize;
    let total = (hc + lc) as u64;
    let mut ts = TaskSet::new();
    for i in 0..hc + lc {
        let high = i < hc;
        let period_ms = PERIOD_LADDER_MS[rng.below(PERIOD_LADDER_MS.len() as u64) as usize];
        let period = Duration::from_millis(period_ms);
        // Cap each budget near period/(2·total) so U stays plausible.
        let cap = (period.as_nanos() / (2 * total)).max(2);
        let task = if high {
            let c_hi = rng.range_u64(2, cap.max(2));
            let c_lo = rng.range_u64(1, c_hi);
            McTask::builder(TaskId::new(i as u32))
                .name(format!("hc{i}"))
                .criticality(Criticality::Hi)
                .period(period)
                .c_lo(Duration::from_nanos(c_lo))
                .c_hi(Duration::from_nanos(c_hi))
                .build()
        } else {
            let c = rng.range_u64(1, cap.max(1));
            McTask::builder(TaskId::new(i as u32))
                .name(format!("lc{i}"))
                .criticality(Criticality::Lo)
                .period(period)
                .c_lo(Duration::from_nanos(c))
                .build()
        };
        ts.push(task.expect("generator respects builder invariants"))
            .expect("generator ids are unique");
    }
    ts
}

/// A single high-criticality task with an attached [`ExecutionProfile`]
/// and `C_LO = ⌈ACET + n·σ⌉` (the paper's Eq. 6 budget, clamped to
/// `[1, WCET_pes]`). The period leaves slack (`≥ 4 × WCET_pes`) so any
/// deadline miss in simulation is a scheduling bug, not overload.
#[must_use]
pub fn profiled_hc_task(rng: &mut FaultRng, id: u32, n: f64) -> McTask {
    let wcet_pes = rng.range_u64(10_000, 1_000_000); // 10 µs – 1 ms
    let acet = wcet_pes as f64 * rng.range_f64(0.10, 0.40);
    let sigma = acet * rng.range_f64(0.05, 0.30);
    let profile = ExecutionProfile::new(acet, sigma, wcet_pes as f64)
        .expect("generator respects profile invariants");
    let c_lo = (acet + n * sigma).ceil().clamp(1.0, wcet_pes as f64) as u64;
    let period = Duration::from_nanos(wcet_pes * rng.range_u64(4, 20));
    McTask::builder(TaskId::new(id))
        .name(format!("profiled{id}"))
        .criticality(Criticality::Hi)
        .period(period)
        .c_lo(Duration::from_nanos(c_lo))
        .c_hi(Duration::from_nanos(wcet_pes))
        .profile(profile)
        .build()
        .expect("generator respects builder invariants")
}

/// The shape of a random campaign, expressed as plain data so `mc-exp`
/// (which sits *above* this crate) can turn it into a `CampaignSpec`
/// without a dependency cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecShape {
    /// Campaign seed.
    pub seed: u64,
    /// One parameter value per axis point (e.g. target utilizations).
    pub point_values: Vec<f64>,
    /// Replicas per point.
    pub replicas: usize,
}

/// A random campaign shape: 1–5 points, 1–4 replicas, values in
/// `[0.05, 0.95]` rounded to two decimals (keeps labels and JSON short).
#[must_use]
pub fn spec_shape(rng: &mut FaultRng) -> SpecShape {
    let points = rng.range_u64(1, 5) as usize;
    let point_values = (0..points)
        .map(|_| (rng.range_f64(0.05, 0.95) * 100.0).round() / 100.0)
        .collect();
    SpecShape {
        seed: rng.next_u64(),
        point_values,
        replicas: rng.range_u64(1, 4) as usize,
    }
}

/// The distribution families [`exec_samples`] draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFamily {
    /// Gaussian clipped to stay positive.
    Normal,
    /// Heavy right tail (exponential of a Gaussian).
    LogNormal,
    /// Flat over a positive interval.
    Uniform,
    /// Two Gaussian modes — the cache-hit/cache-miss shape real
    /// execution-time traces show.
    Bimodal,
}

/// One standard-normal draw (Box–Muller; consumes two uniforms).
fn normal(rng: &mut FaultRng) -> f64 {
    // Map [0,1) → (0,1] so ln() is finite.
    let u1 = 1.0 - rng.f64();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `count` positive execution-time samples (nanosecond scale) from a
/// randomly chosen [`TraceFamily`]. Returns the family alongside the
/// samples so oracles can report which shape failed.
#[must_use]
pub fn exec_samples(rng: &mut FaultRng, count: usize) -> (TraceFamily, Vec<f64>) {
    let family = match rng.below(4) {
        0 => TraceFamily::Normal,
        1 => TraceFamily::LogNormal,
        2 => TraceFamily::Uniform,
        _ => TraceFamily::Bimodal,
    };
    let mean = rng.range_f64(1_000.0, 100_000.0);
    let sigma = mean * rng.range_f64(0.05, 0.5);
    let samples = (0..count)
        .map(|_| {
            let x = match family {
                TraceFamily::Normal => mean + sigma * normal(rng),
                TraceFamily::LogNormal => mean * (0.4 * normal(rng)).exp(),
                TraceFamily::Uniform => rng.range_f64(mean - sigma, mean + sigma),
                TraceFamily::Bimodal => {
                    let centre = if rng.bool(0.7) { mean } else { mean * 2.0 };
                    centre + 0.2 * sigma * normal(rng)
                }
            };
            x.max(1.0)
        })
        .collect();
    (family, samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_tasksets_satisfy_the_model_invariants() {
        let mut rng = FaultRng::new(101);
        for _ in 0..300 {
            let ts = mixed_taskset(&mut rng);
            assert!(ts.hc_count() >= 1);
            assert!(ts.len() <= 6);
            for t in ts.iter() {
                assert!(t.c_lo() <= t.c_hi());
                assert!(t.c_hi() <= t.deadline());
                if !t.is_high() {
                    assert_eq!(t.c_lo(), t.c_hi());
                }
            }
            let hp = ts.hyperperiod().expect("ladder periods have an lcm");
            assert!(hp <= Duration::from_millis(200), "hyperperiod {hp:?}");
        }
    }

    #[test]
    fn taskset_generation_is_deterministic() {
        let a = mixed_taskset(&mut FaultRng::new(7));
        let b = mixed_taskset(&mut FaultRng::new(7));
        assert_eq!(a.tasks(), b.tasks());
    }

    #[test]
    fn profiled_tasks_keep_the_budget_inside_the_pessimistic_wcet() {
        let mut rng = FaultRng::new(5);
        for i in 0..200 {
            let t = profiled_hc_task(&mut rng, i, 3.0);
            let p = t.profile().expect("profiled task carries a profile");
            assert!(t.c_lo().as_nanos() as f64 >= p.acet());
            assert!(t.c_lo() <= t.c_hi());
            assert_eq!(t.c_hi().as_nanos() as f64, p.wcet_pes());
            assert!(t.period() >= t.c_hi().saturating_mul(4));
        }
    }

    #[test]
    fn spec_shapes_are_small_and_valid() {
        let mut rng = FaultRng::new(9);
        for _ in 0..200 {
            let s = spec_shape(&mut rng);
            assert!((1..=5).contains(&s.point_values.len()));
            assert!((1..=4).contains(&s.replicas));
            assert!(s.point_values.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn exec_samples_are_positive_and_family_shaped() {
        let mut rng = FaultRng::new(13);
        let mut families = std::collections::HashSet::new();
        for _ in 0..40 {
            let (family, xs) = exec_samples(&mut rng, 500);
            families.insert(format!("{family:?}"));
            assert_eq!(xs.len(), 500);
            assert!(xs.iter().all(|&x| x >= 1.0 && x.is_finite()));
        }
        assert!(
            families.len() >= 3,
            "sampler covers the families: {families:?}"
        );
    }
}
