//! The narrow store I/O abstraction and its two implementations.
//!
//! [`StoreIo`] captures exactly the four operations the mc-exp store
//! performs on its file — read everything, append bytes, make appended
//! bytes durable, truncate — so the store can run unchanged against a
//! real [`std::fs::File`] ([`RealFile`]) or against an in-memory
//! [`SimDisk`] that injects faults from a seed-derived
//! [`FaultSchedule`](crate::schedule::FaultSchedule).
//!
//! The simulated disk distinguishes *durable* bytes (survived a
//! successful sync) from the *unsynced tail* (written but still in the
//! "page cache"). A scheduled crash keeps the durable bytes plus a
//! schedule-derived prefix of the tail — exactly the torn-tail shape the
//! store's resume path must repair. That asymmetry is the point: an
//! append the store has acknowledged (write + sync both returned `Ok`)
//! must survive any crash, while an unacknowledged record may or may not
//! — both outcomes are legal, and the sweeps assert only the
//! one-directional invariant.

use crate::schedule::{Fault, FaultSchedule};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::sync::{Arc, Mutex};

/// The file operations the experiment store needs, and nothing more.
///
/// Positioning contract (which is what lets the trait drop explicit
/// seeks): after [`StoreIo::read_to_end`] or [`StoreIo::truncate`] the
/// implicit cursor is at end-of-file, and [`StoreIo::write_all`] always
/// appends there.
pub trait StoreIo: std::fmt::Debug + Send {
    /// Reads the entire file from the beginning, leaving the cursor at
    /// end-of-file.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<()>;

    /// Appends `buf` at end-of-file. Not durable until
    /// [`StoreIo::sync_data`] succeeds.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures; a short write may leave a
    /// prefix of `buf` in the file.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Makes every previously written byte durable (`fsync`).
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Truncates the file to `len` bytes and leaves the cursor at the new
    /// end-of-file.
    ///
    /// # Errors
    ///
    /// Underlying (or injected) I/O failures.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// [`StoreIo`] over a real [`File`] — the production implementation.
/// Allocation-free on the append hot path (`write_all` + `sync_data`
/// delegate directly).
#[derive(Debug)]
pub struct RealFile(File);

impl RealFile {
    /// Wraps an open file handle.
    #[must_use]
    pub fn new(file: File) -> Self {
        RealFile(file)
    }
}

impl StoreIo for RealFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(0))?;
        self.0.read_to_end(buf)?;
        Ok(())
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        // `set_len` does not move the cursor; re-seek so later appends
        // land at the new end instead of leaving a hole.
        self.0.set_len(len)?;
        self.0.seek(SeekFrom::End(0))?;
        Ok(())
    }
}

/// Operation counters kept by a [`SimDisk`] — the sweeps use these to
/// prove a run actually exercised faults rather than passing vacuously.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `read_to_end` calls observed.
    pub reads: u64,
    /// `write_all` calls observed.
    pub writes: u64,
    /// `sync_data` calls observed.
    pub syncs: u64,
    /// `truncate` calls observed.
    pub truncates: u64,
    /// Operations failed with an injected error (non-crash).
    pub injected_errors: u64,
    /// Scheduled crashes that fired.
    pub crashes: u64,
}

#[derive(Debug)]
struct DiskState {
    /// Bytes guaranteed to survive a crash (synced, or pre-existing).
    durable: Vec<u8>,
    /// Bytes written but not yet synced ("page cache"); a crash keeps
    /// only a schedule-derived prefix of these.
    tail: Vec<u8>,
    schedule: FaultSchedule,
    /// Index of the next I/O operation, fed to the schedule.
    op: u64,
    /// Whether the simulated process has crashed; all I/O fails until
    /// [`SimDisk::recover`].
    crashed: bool,
    stats: FaultStats,
}

impl DiskState {
    fn crash(&mut self, tail_kept_ppm: u32) {
        // The OS may have flushed part of the page cache before dying:
        // keep a schedule-derived prefix of the tail, drop the rest.
        let kept = prefix_len(self.tail.len(), tail_kept_ppm);
        self.durable.extend_from_slice(&self.tail[..kept]);
        self.tail.clear();
        self.crashed = true;
        self.stats.crashes += 1;
    }

    /// Applies the schedule to the next operation. `Ok(())` means the
    /// operation proceeds; `Err` carries the injected failure, with any
    /// partial-write side effect already applied by the caller.
    fn gate(&mut self) -> Result<(), Fault> {
        if self.crashed {
            return Err(Fault::Error {
                kind: "disk is crashed",
                kept_fraction_ppm: 0,
            });
        }
        let fault = self.schedule.decide(self.op);
        self.op += 1;
        match fault {
            Fault::None => Ok(()),
            Fault::Crash { tail_kept_ppm } => {
                self.crash(tail_kept_ppm);
                Err(fault)
            }
            Fault::Error { .. } => {
                self.stats.injected_errors += 1;
                Err(fault)
            }
        }
    }
}

fn prefix_len(len: usize, ppm: u32) -> usize {
    ((len as u128 * u128::from(ppm)) / 1_000_000) as usize
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

/// A deterministic in-memory disk with seed-scheduled fault injection.
///
/// Cloning is cheap and shares state (it is the same disk): tests keep
/// one handle for assertions while the store owns a [`SimFile`] opened
/// from another.
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    state: Arc<Mutex<DiskState>>,
}

impl Default for DiskState {
    fn default() -> Self {
        DiskState {
            durable: Vec::new(),
            tail: Vec::new(),
            schedule: FaultSchedule::none(),
            op: 0,
            crashed: false,
            stats: FaultStats::default(),
        }
    }
}

impl SimDisk {
    /// An empty, fault-free disk.
    #[must_use]
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Installs `schedule` and resets the operation counter — one call
    /// per simulated process lifetime ("session").
    pub fn set_schedule(&self, schedule: FaultSchedule) {
        let mut st = self.lock();
        st.schedule = schedule;
        st.op = 0;
    }

    /// Opens a [`StoreIo`] handle onto this disk, as the store would open
    /// its file.
    #[must_use]
    pub fn open(&self) -> SimFile {
        SimFile { disk: self.clone() }
    }

    /// Simulates a process restart after a crash (or a clean shutdown):
    /// clears the crashed flag; on a clean shutdown the unsynced tail is
    /// flushed (the OS eventually writes the page cache out), while after
    /// a crash the tail was already resolved at crash time.
    pub fn recover(&self) {
        let mut st = self.lock();
        if st.crashed {
            st.crashed = false;
        } else {
            let tail = std::mem::take(&mut st.tail);
            st.durable.extend_from_slice(&tail);
        }
    }

    /// The file content a reader would currently observe
    /// (durable bytes plus the unsynced tail).
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        let st = self.lock();
        let mut out = st.durable.clone();
        out.extend_from_slice(&st.tail);
        out
    }

    /// The bytes guaranteed to survive a crash right now.
    #[must_use]
    pub fn durable(&self) -> Vec<u8> {
        self.lock().durable.clone()
    }

    /// Whether the simulated process is currently crashed.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Operation counters so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    /// Mutation-style sanity hook: silently drops the last durable line
    /// (through its preceding newline), simulating loss of an
    /// acknowledged record. Returns `false` when there is no complete
    /// line to drop. A sweep over a disk sabotaged this way **must**
    /// report an invariant violation — that is how the test suite proves
    /// the checker can fail.
    pub fn sabotage_drop_last_line(&self) -> bool {
        let mut st = self.lock();
        let Some(&b'\n') = st.durable.last() else {
            return false;
        };
        let cut = st.durable[..st.durable.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        if cut == 0 {
            return false; // only the header line exists; keep it.
        }
        st.durable.truncate(cut);
        true
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DiskState> {
        self.state.lock().expect("sim disk poisoned")
    }
}

/// A [`StoreIo`] handle onto a [`SimDisk`].
#[derive(Debug)]
pub struct SimFile {
    disk: SimDisk,
}

impl SimFile {
    fn fail(fault: Fault) -> io::Error {
        match fault {
            Fault::Error { kind, .. } => injected(kind),
            Fault::Crash { .. } => injected("crash"),
            Fault::None => unreachable!("gate never returns Fault::None"),
        }
    }
}

impl StoreIo for SimFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<()> {
        let mut st = self.disk.lock();
        st.stats.reads += 1;
        let gate = st.gate();
        if let Err(fault) = gate {
            return Err(Self::fail(fault));
        }
        buf.extend_from_slice(&st.durable);
        buf.extend_from_slice(&st.tail);
        Ok(())
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.disk.lock();
        st.stats.writes += 1;
        match st.gate() {
            Ok(()) => {
                st.tail.extend_from_slice(buf);
                Ok(())
            }
            Err(fault) => {
                if let Fault::Error {
                    kept_fraction_ppm, ..
                } = fault
                {
                    // Short write: a prefix lands before the error.
                    let kept = prefix_len(buf.len(), kept_fraction_ppm);
                    st.tail.extend_from_slice(&buf[..kept]);
                }
                Err(Self::fail(fault))
            }
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut st = self.disk.lock();
        st.stats.syncs += 1;
        match st.gate() {
            Ok(()) => {
                let tail = std::mem::take(&mut st.tail);
                st.durable.extend_from_slice(&tail);
                Ok(())
            }
            // Failed sync: the bytes stay in the volatile tail.
            Err(fault) => Err(Self::fail(fault)),
        }
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut st = self.disk.lock();
        st.stats.truncates += 1;
        if let Err(fault) = st.gate() {
            return Err(Self::fail(fault));
        }
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len <= st.durable.len() {
            st.durable.truncate(len);
            st.tail.clear();
        } else {
            let keep = len - st.durable.len();
            st.tail.truncate(keep);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(io: &mut dyn StoreIo, s: &str) {
        io.write_all(s.as_bytes()).unwrap();
    }

    #[test]
    fn real_file_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join("mc-fault-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("real-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .unwrap();
        let mut io = RealFile::new(file);
        write(&mut io, "alpha\nbeta\n");
        io.sync_data().unwrap();
        let mut buf = Vec::new();
        io.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"alpha\nbeta\n");
        io.truncate(6).unwrap();
        write(&mut io, "gamma\n");
        let mut buf = Vec::new();
        io.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"alpha\ngamma\n", "append lands at the new end");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sim_disk_separates_durable_from_tail() {
        let disk = SimDisk::new();
        let mut io = disk.open();
        write(&mut io, "a\n");
        assert_eq!(disk.durable(), b"", "unsynced bytes are not durable");
        assert_eq!(disk.bytes(), b"a\n", "but a reader sees them");
        io.sync_data().unwrap();
        assert_eq!(disk.durable(), b"a\n");
    }

    #[test]
    fn crash_loses_at_most_the_unsynced_tail() {
        // A schedule whose crash keeps no tail: synced data must survive.
        for seed in 0..100u64 {
            let disk = SimDisk::new();
            let mut io = disk.open();
            write(&mut io, "synced\n");
            io.sync_data().unwrap();
            disk.set_schedule(FaultSchedule::from_seed(seed, 4));
            let mut io = disk.open();
            // Drive writes until the schedule kills the session.
            let mut alive = true;
            for _ in 0..16 {
                if io
                    .write_all(b"unsynced\n")
                    .and_then(|()| io.sync_data())
                    .is_err()
                {
                    alive = false;
                    break;
                }
            }
            assert!(!alive, "seed {seed}: horizon 4 must fault within 8 ops");
            disk.recover();
            let durable = disk.durable();
            assert!(
                durable.starts_with(b"synced\n"),
                "seed {seed}: synced prefix lost: {durable:?}"
            );
        }
    }

    #[test]
    fn failed_sync_keeps_bytes_volatile_but_visible() {
        let disk = SimDisk::new();
        // Find a seed whose op 1 (the sync) errors without crashing.
        let mut hit = false;
        for seed in 0..5_000u64 {
            let sched = FaultSchedule::from_seed(seed, 1_000);
            if sched.decide(0) == Fault::None && matches!(sched.decide(1), Fault::Error { .. }) {
                disk.set_schedule(sched);
                hit = true;
                break;
            }
        }
        assert!(hit, "no seed with (ok write, failed sync) found");
        let mut io = disk.open();
        write(&mut io, "rec\n");
        assert!(io.sync_data().is_err());
        assert_eq!(disk.bytes(), b"rec\n", "a reader still sees the bytes");
        assert_eq!(disk.durable(), b"", "but they are not durable");
    }

    #[test]
    fn recover_after_clean_shutdown_flushes_the_tail() {
        let disk = SimDisk::new();
        let mut io = disk.open();
        write(&mut io, "x\n");
        drop(io);
        disk.recover();
        assert_eq!(disk.durable(), b"x\n");
    }

    #[test]
    fn crashed_disk_fails_everything_until_recover() {
        let disk = SimDisk::new();
        // Horizon 1 ⇒ crash at op 0.
        disk.set_schedule(FaultSchedule::from_seed(3, 1));
        let mut io = disk.open();
        assert!(io.write_all(b"y").is_err());
        assert!(disk.is_crashed());
        assert!(io.sync_data().is_err());
        let mut buf = Vec::new();
        assert!(io.read_to_end(&mut buf).is_err());
        disk.recover();
        disk.set_schedule(FaultSchedule::none());
        let mut io = disk.open();
        write(&mut io, "z\n");
        io.sync_data().unwrap();
        assert_eq!(disk.durable(), b"z\n");
    }

    #[test]
    fn truncate_spans_durable_and_tail() {
        let disk = SimDisk::new();
        let mut io = disk.open();
        write(&mut io, "durable\n");
        io.sync_data().unwrap();
        write(&mut io, "tail\n");
        // Truncate inside the tail.
        io.truncate(10).unwrap();
        assert_eq!(disk.bytes(), b"durable\nta");
        // Truncate inside the durable region drops the whole tail.
        write(&mut io, "more");
        io.truncate(3).unwrap();
        assert_eq!(disk.bytes(), b"dur");
    }

    #[test]
    fn sabotage_drops_exactly_the_last_complete_line() {
        let disk = SimDisk::new();
        let mut io = disk.open();
        write(&mut io, "header\nrec1\nrec2\n");
        io.sync_data().unwrap();
        assert!(disk.sabotage_drop_last_line());
        assert_eq!(disk.durable(), b"header\nrec1\n");
        assert!(disk.sabotage_drop_last_line());
        assert_eq!(disk.durable(), b"header\n");
        assert!(
            !disk.sabotage_drop_last_line(),
            "the header line alone is never dropped"
        );
    }

    #[test]
    fn stats_count_operations_and_injections() {
        let disk = SimDisk::new();
        let mut io = disk.open();
        write(&mut io, "a");
        io.sync_data().unwrap();
        let mut buf = Vec::new();
        io.read_to_end(&mut buf).unwrap();
        io.truncate(0).unwrap();
        let s = disk.stats();
        assert_eq!((s.writes, s.syncs, s.reads, s.truncates), (1, 1, 1, 1));
        assert_eq!(s.injected_errors + s.crashes, 0);
    }
}
