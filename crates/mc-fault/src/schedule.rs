//! Seed-derived fault schedules.
//!
//! A [`FaultSchedule`] maps each I/O operation index (0, 1, 2, … in the
//! order the store issues them) to a [`Fault`] decision. The whole map is
//! a pure function of one `u64` seed, so a crash/resume interleaving that
//! trips an invariant is reproducible by re-running with the printed seed
//! — no schedule serialization needed.
//!
//! Encoding (documented in DESIGN.md §12): from `seed` the schedule derives
//! - a *crash operation* `crash_op = mix64(seed, 0) % horizon` — the
//!   operation at which the process "dies" (all later operations fail with
//!   a crashed-disk error),
//! - a per-operation error lottery with rate `1/error_div` where
//!   `error_div = 8 + mix64(seed, 1) % 25` (so between 1/8 and 1/32),
//!   choosing among failed sync, ENOSPC, and short (torn) writes,
//! - for torn writes and the crash itself, a kept-prefix fraction from
//!   `mix64(seed, 2 + op)`.

use crate::rng::mix64;

/// The decision a schedule makes for one I/O operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation proceeds normally.
    None,
    /// The operation fails with an injected I/O error (`kind` names it:
    /// `"ENOSPC"`, `"EIO"`, or `"sync failed"`). For a torn write,
    /// `kept` bytes of the buffer still reach the unsynced tail before
    /// the error is reported.
    Error {
        /// Error name surfaced in the `io::Error` message.
        kind: &'static str,
        /// Bytes of the attempted write that land anyway (0 for non-write
        /// operations and clean failures).
        kept_fraction_ppm: u32,
    },
    /// The process crashes at this operation: the operation does not
    /// happen, a schedule-derived prefix of the unsynced tail survives,
    /// and every subsequent operation fails until recovery.
    Crash {
        /// Parts-per-million of the unsynced tail that survive the crash
        /// (models a torn final sector).
        tail_kept_ppm: u32,
    },
}

/// A deterministic map from operation index to [`Fault`], derived from a
/// seed over a bounded operation horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSchedule {
    seed: u64,
    horizon: u64,
    crash_op: Option<u64>,
    error_div: u64,
}

impl FaultSchedule {
    /// A schedule that injects nothing — used for the final recovery cycle
    /// of a sweep so every campaign is guaranteed to finish.
    #[must_use]
    pub fn none() -> Self {
        FaultSchedule {
            seed: 0,
            horizon: 0,
            crash_op: None,
            error_div: 0,
        }
    }

    /// Derives a schedule from `seed` with a crash somewhere in the first
    /// `horizon` operations (horizon 0 means "no crash").
    #[must_use]
    pub fn from_seed(seed: u64, horizon: u64) -> Self {
        let crash_op = if horizon == 0 {
            None
        } else {
            Some(mix64(seed, 0) % horizon)
        };
        FaultSchedule {
            seed,
            horizon,
            crash_op,
            // Error rate between 1/8 and 1/32 per operation.
            error_div: 8 + mix64(seed, 1) % 25,
        }
    }

    /// The seed this schedule was derived from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The operation index at which this schedule crashes, if any.
    #[must_use]
    pub fn crash_op(&self) -> Option<u64> {
        self.crash_op
    }

    /// The fault decision for operation `op`.
    #[must_use]
    pub fn decide(&self, op: u64) -> Fault {
        if self.horizon == 0 {
            return Fault::None;
        }
        if Some(op) == self.crash_op {
            return Fault::Crash {
                tail_kept_ppm: (mix64(self.seed, 2 + op) % 1_000_001) as u32,
            };
        }
        let lottery = mix64(self.seed, 0x5EED_0000 + op);
        if lottery.is_multiple_of(self.error_div) {
            let kind = match (lottery >> 8) % 3 {
                0 => "ENOSPC",
                1 => "EIO",
                _ => "sync failed",
            };
            // Short writes keep a prefix; clean errors keep nothing.
            let kept_fraction_ppm = if (lottery >> 16).is_multiple_of(2) {
                (mix64(self.seed, 2 + op) % 1_000_001) as u32
            } else {
                0
            };
            return Fault::Error {
                kind,
                kept_fraction_ppm,
            };
        }
        Fault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_schedule_never_faults() {
        let s = FaultSchedule::none();
        for op in 0..1_000 {
            assert_eq!(s.decide(op), Fault::None);
        }
        assert_eq!(s.crash_op(), None);
    }

    #[test]
    fn schedules_are_pure_functions_of_the_seed() {
        let a = FaultSchedule::from_seed(42, 100);
        let b = FaultSchedule::from_seed(42, 100);
        for op in 0..200 {
            assert_eq!(a.decide(op), b.decide(op));
        }
    }

    #[test]
    fn crash_op_lies_within_the_horizon() {
        for seed in 0..200 {
            let s = FaultSchedule::from_seed(seed, 64);
            let c = s.crash_op().expect("horizon > 0 always crashes");
            assert!(c < 64, "seed {seed}: crash op {c} out of horizon");
            assert!(matches!(s.decide(c), Fault::Crash { .. }));
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_schedules() {
        // Coarse distinctness: over 100 seeds, crash ops are not all equal.
        let ops: Vec<_> = (0..100u64)
            .map(|s| FaultSchedule::from_seed(s, 1_000).crash_op().unwrap())
            .collect();
        let first = ops[0];
        assert!(ops.iter().any(|&o| o != first));
    }

    #[test]
    fn error_rate_is_within_the_documented_band() {
        for seed in [1u64, 99, 12345] {
            let s = FaultSchedule::from_seed(seed, 10_000);
            let errors = (0..10_000u64)
                .filter(|&op| matches!(s.decide(op), Fault::Error { .. }))
                .count() as f64;
            let rate = errors / 10_000.0;
            // Nominal band is [1/32, 1/8]; allow generous sampling slack.
            assert!(rate > 0.01 && rate < 0.20, "seed {seed}: rate {rate}");
        }
    }

    #[test]
    fn kept_fractions_are_valid_ppm() {
        let s = FaultSchedule::from_seed(7, 500);
        for op in 0..500 {
            match s.decide(op) {
                Fault::Crash { tail_kept_ppm } => assert!(tail_kept_ppm <= 1_000_000),
                Fault::Error {
                    kept_fraction_ppm, ..
                } => assert!(kept_fraction_ppm <= 1_000_000),
                Fault::None => {}
            }
        }
    }
}
