//! Seed-derived crash plans for distributed-campaign clusters.
//!
//! The mc-serve in-process cluster harness (coordinator + N workers over
//! loopback) injects process deaths the same way the store sweeps inject
//! disk faults: from a single `u64` seed. A [`ClusterPlan`] decides,
//! deterministically, which workers die after how many streamed records
//! and whether (and when) the coordinator itself is killed mid-campaign —
//! so a failover bug found by the property sweep is reproducible from one
//! printed integer, exactly like a `chebymc fault sweep` violation.
//!
//! The plan speaks in *record counts*, not wall-clock: "worker 2 dies
//! after sending 3 records" is deterministic under any scheduling, while
//! "worker 2 dies after 40 ms" is not. Liveness timing (heartbeat
//! intervals, reclaim timeouts) stays the harness's concern; the plan
//! only fixes *what* fails.

use crate::rng::{mix64, FaultRng};

/// A deterministic process-death plan for one cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Per worker: `Some(k)` kills the worker (connection dropped, no
    /// goodbye — the in-process stand-in for SIGKILL) after it has
    /// streamed `k` records; `None` lets it live.
    pub worker_kill_after: Vec<Option<u64>>,
    /// `Some(m)` kills the coordinator after it has accepted `m` records,
    /// simulating a mid-campaign coordinator crash; the harness then
    /// resumes a fresh coordinator over the surviving checkpoint store.
    pub coordinator_kill_after: Option<u64>,
}

impl ClusterPlan {
    /// A plan in which nothing dies.
    #[must_use]
    pub fn calm(workers: usize) -> Self {
        ClusterPlan {
            worker_kill_after: vec![None; workers],
            coordinator_kill_after: None,
        }
    }

    /// Whether the plan kills at least one process.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        self.coordinator_kill_after.is_some() || self.worker_kill_after.iter().any(Option::is_some)
    }

    /// Number of worker deaths the plan schedules.
    #[must_use]
    pub fn worker_deaths(&self) -> usize {
        self.worker_kill_after
            .iter()
            .filter(|k| k.is_some())
            .count()
    }
}

/// Derives the cluster plan for `seed` over a campaign of `total_units`
/// units run by `workers` workers.
///
/// Guarantees, for any seed:
///
/// * at least one worker survives (a dead cluster cannot finish, and the
///   harness asserts completion, not starvation);
/// * every kill threshold is below `total_units`, so a scheduled death
///   actually fires mid-campaign instead of after the work is done;
/// * roughly half the seeds also kill the coordinator once.
///
/// # Panics
///
/// Panics when `workers == 0`.
#[must_use]
pub fn cluster_plan(seed: u64, workers: usize, total_units: usize) -> ClusterPlan {
    assert!(workers > 0, "a cluster needs at least one worker");
    let mut rng = FaultRng::new(mix64(seed, 0xC1A5));
    let horizon = (total_units as u64).max(1);
    let survivor = rng.below(workers as u64) as usize;
    let mut worker_kill_after = Vec::with_capacity(workers);
    for w in 0..workers {
        // Each non-survivor dies with probability 1/2, after 0..horizon
        // records — early deaths (0 records sent) cover the
        // "assigned but never produced" reclaim path.
        let dies = w != survivor && rng.below(2) == 0;
        worker_kill_after.push(dies.then(|| rng.below(horizon)));
    }
    let coordinator_kill_after = (rng.below(2) == 0).then(|| rng.below(horizon));
    ClusterPlan {
        worker_kill_after,
        coordinator_kill_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        for seed in 0..50 {
            assert_eq!(cluster_plan(seed, 4, 12), cluster_plan(seed, 4, 12));
        }
        assert_ne!(
            (0..50)
                .map(|s| cluster_plan(s, 4, 12))
                .filter(|p| p.is_faulty())
                .count(),
            0,
            "some seeds must schedule deaths"
        );
    }

    #[test]
    fn at_least_one_worker_always_survives() {
        for seed in 0..500 {
            for workers in 1..=5 {
                let plan = cluster_plan(seed, workers, 10);
                assert_eq!(plan.worker_kill_after.len(), workers);
                assert!(
                    plan.worker_deaths() < workers,
                    "seed {seed}, {workers} workers: everyone died"
                );
            }
        }
    }

    #[test]
    fn kill_thresholds_fall_inside_the_campaign() {
        for seed in 0..500 {
            let plan = cluster_plan(seed, 4, 12);
            for k in plan.worker_kill_after.iter().flatten() {
                assert!(*k < 12, "seed {seed}: worker kill at {k} >= 12 units");
            }
            if let Some(m) = plan.coordinator_kill_after {
                assert!(m < 12, "seed {seed}: coordinator kill at {m} >= 12 units");
            }
        }
    }

    #[test]
    fn the_seed_population_covers_every_death_mode() {
        let plans: Vec<ClusterPlan> = (0..200).map(|s| cluster_plan(s, 3, 12)).collect();
        assert!(plans.iter().any(|p| !p.is_faulty()), "some seeds are calm");
        assert!(plans.iter().any(|p| p.worker_deaths() > 0));
        assert!(plans.iter().any(|p| p.coordinator_kill_after.is_some()));
        assert!(
            plans
                .iter()
                .any(|p| p.worker_deaths() > 0 && p.coordinator_kill_after.is_some()),
            "some seeds kill both a worker and the coordinator"
        );
        assert!(
            plans
                .iter()
                .any(|p| p.worker_kill_after.iter().flatten().any(|k| *k == 0)),
            "some seeds kill a worker before it produces anything"
        );
    }

    #[test]
    fn calm_plans_report_themselves() {
        let p = ClusterPlan::calm(3);
        assert!(!p.is_faulty());
        assert_eq!(p.worker_deaths(), 0);
    }
}
