//! A minimal seeded property-testing harness.
//!
//! Deliberately smaller than quickcheck/proptest: a case is a pure
//! function of `mix64(config_seed, case_index)`, shrinking is a greedy,
//! iteration-bounded walk over candidate simplifications, and every
//! failure carries the copy-pasteable seed that reproduces it. That is
//! all the adversarial suites need, and it keeps the harness free of
//! external dependencies (so even the vendored `rand`/`proptest` stand-ins
//! are out of its dependency graph — the harness must be usable to test
//! the crates *under* them).
//!
//! ```
//! use mc_fault::prop::{check, PropConfig, Shrink};
//!
//! let cfg = PropConfig::named("sum-is-commutative");
//! let passed = check(
//!     &cfg,
//!     |rng| (rng.below(100), rng.below(100)),
//!     |&(a, b)| {
//!         if a + b == b + a {
//!             Ok(())
//!         } else {
//!             Err("addition is not commutative".into())
//!         }
//!     },
//! );
//! assert!(passed.is_ok());
//! ```

use crate::rng::{mix64, FaultRng};
use std::fmt;

/// Configuration of one property check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropConfig {
    /// Property name, printed in failure reports.
    pub name: &'static str,
    /// Root seed; case `i` derives its own seed as `mix64(seed, i)`.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: u32,
    /// Upper bound on shrink candidate evaluations after a failure.
    pub max_shrink_iters: u32,
}

impl PropConfig {
    /// A named configuration with the harness defaults (seed `0xC1EB`,
    /// 64 cases, 256 shrink iterations).
    #[must_use]
    pub fn named(name: &'static str) -> Self {
        PropConfig {
            name,
            seed: 0xC1EB,
            cases: 64,
            max_shrink_iters: 256,
        }
    }

    /// Overrides the case count.
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the root seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Types that can propose simpler versions of themselves for shrinking.
///
/// The default implementation proposes nothing (no shrinking); the harness
/// then reports the originally generated counterexample.
pub trait Shrink: Sized {
    /// Candidate simplifications, most aggressive first. Each candidate
    /// must be strictly "smaller" by some well-founded measure, or the
    /// bounded shrink loop will waste its iteration budget cycling.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Shrink for u64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self > 0 {
            out.push(0);
            if *self > 1 {
                out.push(self / 2);
            }
            out.push(self - 1);
        }
        out.dedup();
        out
    }
}

impl Shrink for usize {
    fn shrink(&self) -> Vec<Self> {
        (*self as u64)
            .shrink()
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        if !self.is_finite() || *self == 0.0 {
            return Vec::new();
        }
        let mut out = vec![0.0];
        if self.abs() > 1e-9 {
            out.push(self / 2.0);
        }
        out
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structural shrinks first: halves, then single-element removals.
        out.push(self[..n / 2].to_vec());
        out.push(self[n / 2..].to_vec());
        for i in 0..n.min(8) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Then element-wise shrinks on a bounded prefix.
        for i in 0..n.min(8) {
            for cand in self[i].shrink() {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone, C: Shrink + Clone> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone(), self.2.clone()))
            .collect();
        out.extend(
            self.1
                .shrink()
                .into_iter()
                .map(|b| (self.0.clone(), b, self.2.clone())),
        );
        out.extend(
            self.2
                .shrink()
                .into_iter()
                .map(|c| (self.0.clone(), self.1.clone(), c)),
        );
        out
    }
}

/// A failed property: the (possibly shrunk) counterexample plus everything
/// needed to reproduce it from one integer.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample<T> {
    /// Property name.
    pub name: &'static str,
    /// Root seed of the run that failed.
    pub config_seed: u64,
    /// Index of the failing case.
    pub case_index: u32,
    /// The failing case's derived seed (`mix64(config_seed, case_index)`) —
    /// regenerating with this seed reproduces the pre-shrink value.
    pub case_seed: u64,
    /// The smallest failing value found.
    pub value: T,
    /// The property's failure message for `value`.
    pub message: String,
    /// Shrink candidates evaluated.
    pub shrink_iters: u32,
    /// Whether shrinking simplified the original counterexample.
    pub shrunk: bool,
}

impl<T: fmt::Debug> fmt::Display for Counterexample<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "property `{}` failed at case {} ({}): {}",
            self.name,
            self.case_index,
            if self.shrunk {
                "shrunk counterexample"
            } else {
                "counterexample"
            },
            self.message
        )?;
        writeln!(f, "  value: {:?}", self.value)?;
        write!(
            f,
            "  reproduce with: seed {} (case seed {:#x})",
            self.config_seed, self.case_seed
        )
    }
}

/// Runs `prop` over `cfg.cases` generated values. Returns the number of
/// cases that ran on success, or the shrunk counterexample on failure.
///
/// `generate` must be a pure function of the `FaultRng` it is handed; the
/// harness seeds a fresh generator per case so any failing case replays
/// from its `case_seed` alone.
///
/// # Errors
///
/// The first failing case, after bounded shrinking.
pub fn check<T, G, P>(cfg: &PropConfig, generate: G, prop: P) -> Result<u32, Counterexample<T>>
where
    T: Shrink + fmt::Debug,
    G: Fn(&mut FaultRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case_index in 0..cfg.cases {
        let case_seed = mix64(cfg.seed, u64::from(case_index));
        let mut rng = FaultRng::new(case_seed);
        let value = generate(&mut rng);
        if let Err(message) = prop(&value) {
            let (value, message, shrink_iters, shrunk) =
                shrink_failure(value, message, &prop, cfg.max_shrink_iters);
            return Err(Counterexample {
                name: cfg.name,
                config_seed: cfg.seed,
                case_index,
                case_seed,
                value,
                message,
                shrink_iters,
                shrunk,
            });
        }
    }
    Ok(cfg.cases)
}

/// Greedy bounded shrink: repeatedly adopt the first failing candidate
/// until no candidate fails or the iteration budget is exhausted.
fn shrink_failure<T, P>(
    mut value: T,
    mut message: String,
    prop: &P,
    max_iters: u32,
) -> (T, String, u32, bool)
where
    T: Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut iters = 0u32;
    let mut shrunk = false;
    'outer: loop {
        for candidate in value.shrink() {
            if iters >= max_iters {
                break 'outer;
            }
            iters += 1;
            if let Err(m) = prop(&candidate) {
                value = candidate;
                message = m;
                shrunk = true;
                continue 'outer;
            }
        }
        break;
    }
    (value, message, iters, shrunk)
}

/// [`check`], panicking on failure with the full reproduction report —
/// the form the workspace's `#[test]` functions use.
///
/// # Panics
///
/// Panics with the counterexample display when the property fails.
pub fn assert_prop<T, G, P>(cfg: &PropConfig, generate: G, prop: P)
where
    T: Shrink + fmt::Debug,
    G: Fn(&mut FaultRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    if let Err(cex) = check(cfg, generate, prop) {
        panic!("{cex}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_every_case() {
        let cfg = PropConfig::named("tautology").cases(17);
        let ran = check(&cfg, |rng| rng.below(10), |_| Ok(())).unwrap();
        assert_eq!(ran, 17);
    }

    #[test]
    fn failure_reports_a_reproducible_seed() {
        let cfg = PropConfig::named("le-1000");
        let cex = check(
            &cfg,
            |rng| rng.below(10_000),
            |&v| {
                if v <= 1_000 {
                    Ok(())
                } else {
                    Err(format!("{v} > 1000"))
                }
            },
        )
        .unwrap_err();
        // The case seed regenerates the original (pre-shrink) value.
        let mut rng = FaultRng::new(cex.case_seed);
        let regenerated = rng.below(10_000);
        assert!(regenerated > 1_000, "case seed must reproduce a failure");
        assert_eq!(
            cex.case_seed,
            mix64(cex.config_seed, u64::from(cex.case_index))
        );
        let report = cex.to_string();
        assert!(report.contains("reproduce with"), "{report}");
        assert!(report.contains("le-1000"), "{report}");
    }

    #[test]
    fn shrinking_finds_the_boundary() {
        let cfg = PropConfig::named("lt-boundary");
        let cex = check(
            &cfg,
            |rng| rng.below(1 << 40),
            |&v| {
                if v < 37 {
                    Ok(())
                } else {
                    Err("too big".into())
                }
            },
        )
        .unwrap_err();
        // Greedy halving+decrement shrink lands exactly on the boundary.
        assert_eq!(cex.value, 37, "shrunk to the minimal failing value");
        assert!(cex.shrunk);
        assert!(cex.shrink_iters <= cfg.max_shrink_iters);
    }

    #[test]
    fn shrink_iterations_are_bounded() {
        let cfg = PropConfig {
            max_shrink_iters: 5,
            ..PropConfig::named("bounded")
        };
        let cex = check(
            &cfg,
            |rng| rng.below(1 << 50),
            |&v| {
                if v == 0 {
                    Ok(())
                } else {
                    Err("nonzero".into())
                }
            },
        )
        .unwrap_err();
        assert!(cex.shrink_iters <= 5);
    }

    #[test]
    fn vec_shrink_removes_irrelevant_elements() {
        let cfg = PropConfig::named("no-odd").cases(200);
        let cex = check(
            &cfg,
            |rng| {
                let n = rng.range_u64(1, 12) as usize;
                (0..n).map(|_| rng.below(100)).collect::<Vec<u64>>()
            },
            |v| {
                if v.iter().all(|x| x % 2 == 0) {
                    Ok(())
                } else {
                    Err("contains an odd element".into())
                }
            },
        )
        .unwrap_err();
        // A minimal failing vector is a single odd element (shrunk toward 1).
        assert_eq!(cex.value.len(), 1, "shrunk to one element: {:?}", cex.value);
        assert_eq!(cex.value[0] % 2, 1);
    }

    #[test]
    #[should_panic(expected = "reproduce with")]
    fn assert_prop_panics_with_the_seed() {
        assert_prop(
            &PropConfig::named("always-false"),
            |rng| rng.below(4),
            |_| Err("nope".into()),
        );
    }

    #[test]
    fn scalar_shrinks_are_well_founded() {
        for v in [0u64, 1, 2, 17, u64::MAX] {
            for s in v.shrink() {
                assert!(s < v);
            }
        }
        for v in [0.0f64, 1.0, -8.0] {
            for s in v.shrink() {
                assert!(s.abs() < v.abs() || (v != 0.0 && s == 0.0));
            }
        }
    }
}
