//! The harness PRNG: SplitMix64.
//!
//! Every generator, fault schedule, and property case in this crate is a
//! pure function of a `u64` seed, so a failure anywhere in the workspace's
//! adversarial suites is reproducible from one printed integer. SplitMix64
//! is used because it is stateless to fork (any `(seed, stream)` pair
//! yields an independent-looking stream via [`mix64`]), passes BigCrush,
//! and is four lines of code — no dependency required.

/// Stateless SplitMix64 mixing of two words: `mix64(seed, stream)` is the
/// first output of a SplitMix64 generator whose state is `seed ^ h(stream)`.
///
/// Used to derive independent sub-seeds (per property case, per fault-
/// schedule cycle, per shard) from one root seed without shared state.
#[must_use]
pub fn mix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator (SplitMix64) for the property harness
/// and the fault schedules.
///
/// Not cryptographic, not `rand`-compatible by design: the harness must be
/// usable from crates that do not (and must not) depend on the workspace's
/// vendored `rand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Modulo bias is ~2^-64·n — irrelevant for test generation.
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Forks an independent generator for sub-stream `stream`; the parent's
    /// state is unaffected.
    #[must_use]
    pub fn fork(&self, stream: u64) -> FaultRng {
        FaultRng::new(mix64(self.state, stream))
    }

    /// A uniformly random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            p.swap(i, j);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: u64, n: usize) -> Vec<u64> {
        let mut r = FaultRng::new(seed);
        (0..n).map(|_| r.next_u64()).collect()
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        assert_eq!(stream(7, 8), stream(7, 8));
        assert_ne!(stream(7, 8), stream(8, 8));
    }

    #[test]
    fn below_and_ranges_stay_in_bounds() {
        let mut rng = FaultRng::new(1);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.range_f64(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = FaultRng::new(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn mix_discriminates_both_arguments() {
        assert_ne!(mix64(1, 0), mix64(2, 0));
        assert_ne!(mix64(1, 0), mix64(1, 1));
        assert_eq!(mix64(5, 9), mix64(5, 9));
    }

    #[test]
    fn fork_is_independent_of_parent_progress() {
        let rng = FaultRng::new(11);
        let f1 = rng.fork(1);
        let mut parent = rng.clone();
        parent.next_u64();
        assert_eq!(
            f1,
            rng.fork(1),
            "fork is a pure function of (state, stream)"
        );
        assert_ne!(rng.fork(1), rng.fork(2));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = FaultRng::new(2);
        let p = rng.permutation(20);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // And not (always) the identity.
        assert_ne!(rng.permutation(20), (0..20).collect::<Vec<_>>());
    }
}
