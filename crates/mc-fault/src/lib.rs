//! Deterministic fault injection and a minimal property-testing harness.
//!
//! This crate is the adversarial arm of the `chebymc` workspace: it makes
//! the crash-safety claims of the experiment store and the analytical
//! claims of the scheduler/statistics crates *falsifiable at scale*,
//! deterministically, from single-integer seeds.
//!
//! Three layers, all `std`-only (the single dependency is `mc-task`,
//! whose types the generators produce):
//!
//! * [`rng`] + [`prop`] — a seeded SplitMix64 PRNG and a small
//!   property-testing harness (generation, iteration-bounded shrinking,
//!   reproducing-seed failure reports). No external quickcheck: the
//!   harness must sit *below* every crate it is used to test.
//! * [`schedule`] + [`io`] — seed-derived fault schedules and the
//!   [`io::StoreIo`] trait with a production [`io::RealFile`] and an
//!   in-memory [`io::SimDisk`] that injects failed/short writes, failed
//!   fsyncs, ENOSPC, and crash-at-operation-N with torn tails.
//! * [`gen`] — generators for task sets, campaign shapes, and
//!   execution-time traces, consumed by the differential-oracle suites
//!   in `mc-sched`, `mc-stats`, and `mc-exp`.
//! * [`cluster`] — seed-derived process-death plans (which workers die
//!   after how many records, whether the coordinator is killed) for the
//!   mc-serve in-process cluster harness.
//!
//! DESIGN.md §12 documents the fault-schedule encoding and the
//! reproduce-from-seed workflow (`chebymc fault sweep --seed N`).

#![warn(missing_docs)]

pub mod cluster;
pub mod gen;
pub mod io;
pub mod prop;
pub mod rng;
pub mod schedule;

pub use cluster::{cluster_plan, ClusterPlan};
pub use io::{FaultStats, RealFile, SimDisk, SimFile, StoreIo};
pub use prop::{assert_prop, check, Counterexample, PropConfig, Shrink};
pub use rng::{mix64, FaultRng};
pub use schedule::{Fault, FaultSchedule};
