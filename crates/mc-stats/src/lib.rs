//! Statistics substrate for the `chebymc` workspace.
//!
//! This crate provides the probabilistic machinery that the paper
//! *"Improving the Timing Behaviour of Mixed-Criticality Systems Using
//! Chebyshev's Theorem"* (DATE 2021) relies on:
//!
//! * [`summary`] — batch and online (Welford) summary statistics. The paper's
//!   Eq. 3 (ACET as the sample mean) and Eq. 4 (population standard
//!   deviation) are implemented exactly.
//! * [`chebyshev`] — the one-sided Chebyshev (Cantelli) inequality behind
//!   Theorem 1, `P[X ≥ µ + nσ] ≤ 1/(1+n²)`, together with its inverse.
//! * [`dist`] — seedable sampling distributions (Normal, Gumbel, LogNormal,
//!   Weibull, Exponential, Uniform, Triangular, mixtures, truncation) used to
//!   model per-benchmark execution-time behaviour.
//! * [`histogram`] — fixed-width histograms and empirical CDFs (Fig. 1).
//! * [`estimate`] — empirical exceedance-rate estimation with Wilson
//!   confidence intervals and bootstrap resampling (Tables I and II).
//!
//! # Example
//!
//! ```
//! use mc_stats::chebyshev::one_sided_bound;
//! use mc_stats::summary::Summary;
//!
//! # fn main() -> Result<(), mc_stats::StatsError> {
//! let samples = [10.0, 12.0, 9.0, 11.0, 13.0, 8.0];
//! let summary = Summary::from_samples(&samples)?;
//! // Optimistic WCET at n = 3 standard deviations above the mean:
//! let wcet_opt = summary.mean() + 3.0 * summary.std_dev();
//! // Distribution-free bound on the probability of exceeding it:
//! assert!(one_sided_bound(3.0) <= 0.1);
//! assert!(wcet_opt > summary.mean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod chebyshev;
pub mod dist;
pub mod estimate;
pub mod evt;
pub mod gof;
pub mod histogram;
pub mod summary;

use std::error::Error;
use std::fmt;

/// Errors produced by statistical computations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// An operation that requires at least one sample received none.
    EmptySamples,
    /// A sample or parameter was NaN or infinite where a finite value is required.
    NonFinite {
        /// Name of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable description of the valid domain.
        expected: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A histogram was configured with an invalid layout.
    InvalidHistogram {
        /// Human-readable description of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySamples => write!(f, "operation requires at least one sample"),
            StatsError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            StatsError::InvalidParameter {
                what,
                expected,
                value,
            } => write!(f, "{what} must be {expected}, got {value}"),
            StatsError::InvalidHistogram { reason } => {
                write!(f, "invalid histogram configuration: {reason}")
            }
        }
    }
}

impl Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

pub(crate) fn ensure_finite(what: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(StatsError::NonFinite { what, value })
    }
}

pub(crate) fn ensure_positive(what: &'static str, value: f64) -> Result<f64> {
    ensure_finite(what, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(StatsError::InvalidParameter {
            what,
            expected: "strictly positive",
            value,
        })
    }
}

pub(crate) fn ensure_non_negative(what: &'static str, value: f64) -> Result<f64> {
    ensure_finite(what, value)?;
    if value >= 0.0 {
        Ok(value)
    } else {
        Err(StatsError::InvalidParameter {
            what,
            expected: "non-negative",
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = StatsError::EmptySamples;
        assert_eq!(e.to_string(), "operation requires at least one sample");
        let e = StatsError::NonFinite {
            what: "mean",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("mean"));
        let e = StatsError::InvalidParameter {
            what: "sigma",
            expected: "strictly positive",
            value: -1.0,
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("-1"));
        let e = StatsError::InvalidHistogram {
            reason: "zero bins",
        };
        assert!(e.to_string().contains("zero bins"));
    }

    #[test]
    fn ensure_helpers_accept_valid_values() {
        assert_eq!(ensure_finite("x", 1.5).unwrap(), 1.5);
        assert_eq!(ensure_positive("x", 0.1).unwrap(), 0.1);
        assert_eq!(ensure_non_negative("x", 0.0).unwrap(), 0.0);
    }

    #[test]
    fn ensure_helpers_reject_invalid_values() {
        assert!(ensure_finite("x", f64::INFINITY).is_err());
        assert!(ensure_finite("x", f64::NAN).is_err());
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -3.0).is_err());
        assert!(ensure_non_negative("x", -1e-9).is_err());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
