//! Goodness-of-fit testing (Kolmogorov–Smirnov).
//!
//! EVT-based pWCET estimation (see [`crate::evt`]) is only as sound as the
//! underlying fit — one of the open challenges the paper's §II cites. This
//! module provides the one-sample Kolmogorov–Smirnov test so fits can be
//! *qualified*: the KS statistic `D_n = sup |F_emp − F|`, its asymptotic
//! p-value via the Kolmogorov distribution, and a reject/accept decision at
//! a chosen significance level.

use crate::dist::Dist;
use crate::{ensure_finite, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic `D_n`.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
    /// Asymptotic p-value `P[D > D_n]` under the null hypothesis.
    pub p_value: f64,
}

impl KsResult {
    /// Whether the null hypothesis ("the samples come from the reference
    /// distribution") is rejected at significance `alpha`.
    pub fn reject_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// The KS statistic of `samples` against an arbitrary CDF.
///
/// # Errors
///
/// Returns [`StatsError::EmptySamples`] for an empty sample set and
/// [`StatsError::NonFinite`] for non-finite samples or CDF values.
pub fn ks_statistic<F>(samples: &[f64], cdf: F) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if samples.is_empty() {
        return Err(StatsError::EmptySamples);
    }
    let mut sorted = samples.to_vec();
    for &s in &sorted {
        ensure_finite("sample", s)?;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        ensure_finite("cdf value", f)?;
        // Compare against the ECDF just below and at the step.
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    Ok(d)
}

/// Asymptotic Kolmogorov survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
///
/// For small `λ` that alternating series is ill-conditioned, so the dual
/// (Jacobi-theta) form of the CDF is used instead:
/// `P(D ≤ λ) = (√(2π)/λ) Σ_{k≥1} e^{−(2k−1)²π²/(8λ²)}`.
pub fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda < 1.18 {
        // Small-λ regime: evaluate the CDF directly.
        let mut cdf_sum = 0.0;
        for k in 1..=20u32 {
            let m = (2 * k - 1) as f64;
            cdf_sum += (-(m * m) * std::f64::consts::PI.powi(2) / (8.0 * lambda * lambda)).exp();
        }
        let cdf = (2.0 * std::f64::consts::PI).sqrt() / lambda * cdf_sum;
        return (1.0 - cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `samples` against a reference [`Dist`].
///
/// Uses the asymptotic p-value with the Stephens small-sample correction
/// `λ = (√n + 0.12 + 0.11/√n) · D_n`.
///
/// # Errors
///
/// Same conditions as [`ks_statistic`].
pub fn ks_test(samples: &[f64], reference: &Dist) -> Result<KsResult> {
    let statistic = ks_statistic(samples, |x| reference.cdf(x))?;
    let n = samples.len();
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * statistic;
    Ok(KsResult {
        statistic,
        n,
        p_value: kolmogorov_survival(lambda),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn statistic_of_perfect_uniform_grid_is_small() {
        // Samples at the midpoints of 1/n-wide bins of U(0,1): D = 1/(2n).
        let n = 100;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic(&samples, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!((d - 0.005).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn statistic_is_one_for_totally_wrong_cdf() {
        let samples = [10.0, 11.0, 12.0];
        // A CDF that is 1 below all samples: maximal mismatch at the first.
        let d = ks_statistic(&samples, |_| 1.0).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_non_finite_inputs_are_rejected() {
        assert!(ks_statistic(&[], |x| x).is_err());
        assert!(ks_statistic(&[f64::NAN], |x| x).is_err());
        assert!(ks_statistic(&[1.0], |_| f64::NAN).is_err());
    }

    #[test]
    fn kolmogorov_survival_reference_values() {
        // Known quantiles: Q(1.358) ≈ 0.05, Q(1.628) ≈ 0.01, Q(1.224) ≈ 0.10.
        assert!((kolmogorov_survival(1.358) - 0.05).abs() < 0.002);
        assert!((kolmogorov_survival(1.628) - 0.01).abs() < 0.001);
        assert!((kolmogorov_survival(1.224) - 0.10).abs() < 0.003);
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert!(kolmogorov_survival(5.0) < 1e-9);
    }

    #[test]
    fn correct_null_is_not_rejected() {
        let d = Dist::normal(10.0, 2.0).unwrap();
        let samples = d.sample_vec(&mut StdRng::seed_from_u64(1), 2_000);
        let r = ks_test(&samples, &d).unwrap();
        assert!(
            !r.reject_at(0.01),
            "true distribution rejected: D = {}, p = {}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn wrong_null_is_rejected() {
        let truth = Dist::gumbel_from_moments(10.0, 2.0).unwrap();
        let wrong = Dist::normal(10.0, 2.0).unwrap();
        let samples = truth.sample_vec(&mut StdRng::seed_from_u64(2), 2_000);
        let r = ks_test(&samples, &wrong).unwrap();
        assert!(
            r.reject_at(0.01),
            "gumbel-vs-normal not detected: D = {}, p = {}",
            r.statistic,
            r.p_value
        );
    }

    #[test]
    fn gross_mismatch_gives_large_statistic() {
        let truth = Dist::normal(0.0, 1.0).unwrap();
        let shifted = Dist::normal(5.0, 1.0).unwrap();
        let samples = truth.sample_vec(&mut StdRng::seed_from_u64(3), 500);
        let r = ks_test(&samples, &shifted).unwrap();
        assert!(r.statistic > 0.9);
        assert!(r.p_value < 1e-9);
    }

    #[test]
    fn ks_qualifies_evt_fits() {
        // A Gumbel fitted to Gumbel block maxima passes; the same fit is
        // rejected against maxima from a uniform-bounded distribution
        // (where the Gumbel's unbounded tail is wrong).
        use crate::evt::GumbelFit;
        let truth = Dist::gumbel(100.0, 7.0).unwrap();
        let samples = truth.sample_vec(&mut StdRng::seed_from_u64(4), 40_000);
        let fit = GumbelFit::from_block_maxima(&samples, 40).unwrap();
        let maxima: Vec<f64> = samples
            .chunks_exact(40)
            .map(|c| c.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        let fitted = Dist::gumbel(fit.location, fit.scale).unwrap();
        let good = ks_test(&maxima, &fitted).unwrap();
        assert!(
            !good.reject_at(0.01),
            "good fit rejected: p = {}",
            good.p_value
        );

        let bounded = Dist::uniform(0.0, 1.0).unwrap();
        let b_samples = bounded.sample_vec(&mut StdRng::seed_from_u64(5), 40_000);
        let b_fit = GumbelFit::from_block_maxima(&b_samples, 40).unwrap();
        let b_maxima: Vec<f64> = b_samples
            .chunks_exact(40)
            .map(|c| c.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        let b_fitted = Dist::gumbel(b_fit.location, b_fit.scale).unwrap();
        let bad = ks_test(&b_maxima, &b_fitted).unwrap();
        assert!(
            bad.statistic > good.statistic,
            "bounded-tail fit should look worse ({} vs {})",
            bad.statistic,
            good.statistic
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn statistic_is_in_unit_interval(
                samples in proptest::collection::vec(-100.0..100.0f64, 1..200),
            ) {
                let d = Dist::normal(0.0, 10.0).unwrap();
                let s = ks_statistic(&samples, |x| d.cdf(x)).unwrap();
                prop_assert!((0.0..=1.0).contains(&s));
            }

            #[test]
            fn survival_is_monotone(l1 in 0.0..3.0f64, dl in 0.0..3.0f64) {
                prop_assert!(
                    kolmogorov_survival(l1 + dl) <= kolmogorov_survival(l1) + 1e-12
                );
            }
        }
    }
}
