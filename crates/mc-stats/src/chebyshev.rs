//! Chebyshev-type tail bounds (the paper's Theorem 1).
//!
//! The paper's core analytical tool is the *one-sided Chebyshev inequality*
//! (also known as Cantelli's inequality): for any random variable `X` with
//! mean `µ` and variance `σ²`, and any `a > 0`,
//!
//! ```text
//! P[X − µ ≥ a] ≤ σ² / (σ² + a²)
//! ```
//!
//! Substituting `a = n·σ` yields the distribution-free bound
//! `P[X ≥ µ + nσ] ≤ 1/(1 + n²)` used to bound the probability that a
//! high-criticality task overruns its optimistic WCET
//! `C_LO = ACET + n·σ` (paper Eqs. 5–6). This module provides the bound,
//! its inverse (the `n` needed for a target overrun probability), the
//! classic two-sided bound for comparison, and the system-level mode-switch
//! probability composition of Eq. 10.

use crate::{ensure_non_negative, ensure_positive, Result, StatsError};

/// One-sided Chebyshev (Cantelli) bound `1/(1 + n²)` on
/// `P[X ≥ µ + nσ]` (paper Eq. 2/5).
///
/// For `n = 0` the bound is the trivial `1.0`; it decreases monotonically
/// and approaches `0` as `n → ∞`.
///
/// # Panics
///
/// Panics if `n` is negative or NaN — the bound is only meaningful for
/// non-negative factors; use [`try_one_sided_bound`] for a fallible variant.
///
/// # Example
///
/// ```
/// use mc_stats::chebyshev::one_sided_bound;
/// assert_eq!(one_sided_bound(0.0), 1.0);
/// assert_eq!(one_sided_bound(1.0), 0.5);
/// assert_eq!(one_sided_bound(2.0), 0.2);
/// assert_eq!(one_sided_bound(3.0), 0.1);
/// ```
pub fn one_sided_bound(n: f64) -> f64 {
    try_one_sided_bound(n).expect("chebyshev factor must be non-negative and finite")
}

/// Fallible variant of [`one_sided_bound`].
///
/// # Errors
///
/// Returns an error when `n` is negative, NaN or infinite.
pub fn try_one_sided_bound(n: f64) -> Result<f64> {
    ensure_non_negative("chebyshev factor n", n)?;
    Ok(1.0 / (1.0 + n * n))
}

/// One-sided Chebyshev bound in its raw `σ²/(σ² + a²)` form (paper Eq. 1)
/// for an absolute deviation `a` above the mean.
///
/// # Errors
///
/// Returns an error when `sigma` is not strictly positive or `a` is not
/// strictly positive (the inequality requires `a > 0`).
pub fn one_sided_bound_abs(sigma: f64, a: f64) -> Result<f64> {
    let sigma = ensure_positive("sigma", sigma)?;
    let a = ensure_positive("deviation a", a)?;
    let var = sigma * sigma;
    Ok(var / (var + a * a))
}

/// Two-sided Chebyshev bound `min(1, 1/n²)` on `P[|X − µ| ≥ nσ]`,
/// provided for comparison with the sharper one-sided bound.
///
/// # Errors
///
/// Returns an error when `n` is negative, NaN or infinite.
pub fn two_sided_bound(n: f64) -> Result<f64> {
    ensure_non_negative("chebyshev factor n", n)?;
    if n == 0.0 {
        return Ok(1.0);
    }
    Ok((1.0 / (n * n)).min(1.0))
}

/// Inverse of [`one_sided_bound`]: the smallest `n ≥ 0` such that
/// `1/(1 + n²) ≤ p`, i.e. `n = sqrt(1/p − 1)`.
///
/// # Errors
///
/// Returns an error when `p` is not in `(0, 1]`.
///
/// # Example
///
/// ```
/// use mc_stats::chebyshev::{n_for_probability, one_sided_bound};
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let n = n_for_probability(0.1)?;
/// assert!((one_sided_bound(n) - 0.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn n_for_probability(p: f64) -> Result<f64> {
    crate::ensure_finite("probability p", p)?;
    if p <= 0.0 || p > 1.0 {
        return Err(StatsError::InvalidParameter {
            what: "probability p",
            expected: "in (0, 1]",
            value: p,
        });
    }
    Ok((1.0 / p - 1.0).sqrt())
}

/// System-level mode-switching probability (paper Eq. 10):
/// `P_MS_sys = 1 − Π_i (1 − P_i)`, assuming independent HC tasks whose
/// per-task overrun probabilities are `p_i`.
///
/// The product is evaluated in log-space-free form; an empty iterator yields
/// `0.0` (a system with no HC task never switches mode).
///
/// # Errors
///
/// Returns an error when any `p_i` lies outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use mc_stats::chebyshev::system_mode_switch_probability;
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// // Two tasks at n = 2 each (bound 0.2): P_MS ≤ 1 − 0.8² = 0.36.
/// let p = system_mode_switch_probability([0.2, 0.2])?;
/// assert!((p - 0.36).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn system_mode_switch_probability<I>(per_task: I) -> Result<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut no_switch = 1.0_f64;
    for p in per_task {
        crate::ensure_finite("per-task overrun probability", p)?;
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidParameter {
                what: "per-task overrun probability",
                expected: "in [0, 1]",
                value: p,
            });
        }
        no_switch *= 1.0 - p;
    }
    Ok(1.0 - no_switch)
}

/// System-level mode-switching probability directly from per-task Chebyshev
/// factors `n_i`, combining [`one_sided_bound`] and
/// [`system_mode_switch_probability`] (Eq. 10 with `P_i = 1/(1+n_i²)`).
///
/// # Errors
///
/// Returns an error when any `n_i` is negative, NaN or infinite.
pub fn system_mode_switch_probability_from_factors<I>(factors: I) -> Result<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut bounds = Vec::new();
    for n in factors {
        bounds.push(try_one_sided_bound(n)?);
    }
    system_mode_switch_probability(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_two_analysis_column() {
        // TABLE II "Analysis" column: n = 0..4 → 100 %, 50 %, 20 %, 10 %, 5.88 %.
        assert!((one_sided_bound(0.0) - 1.0).abs() < 1e-12);
        assert!((one_sided_bound(1.0) - 0.5).abs() < 1e-12);
        assert!((one_sided_bound(2.0) - 0.2).abs() < 1e-12);
        assert!((one_sided_bound(3.0) - 0.1).abs() < 1e-12);
        assert!((one_sided_bound(4.0) - 1.0 / 17.0).abs() < 1e-12);
        assert!((one_sided_bound(4.0) * 100.0 - 5.88).abs() < 0.01);
    }

    #[test]
    fn bound_is_monotonically_decreasing() {
        let mut prev = one_sided_bound(0.0);
        for i in 1..100 {
            let n = i as f64 * 0.25;
            let b = one_sided_bound(n);
            assert!(b < prev, "bound must strictly decrease, n={n}");
            prev = b;
        }
    }

    #[test]
    fn one_sided_is_sharper_than_two_sided_for_n_above_one() {
        for n in [1.5, 2.0, 3.0, 10.0] {
            assert!(one_sided_bound(n) < two_sided_bound(n).unwrap());
        }
    }

    #[test]
    fn two_sided_bound_clamps_at_one() {
        assert_eq!(two_sided_bound(0.0).unwrap(), 1.0);
        assert_eq!(two_sided_bound(0.5).unwrap(), 1.0);
        assert_eq!(two_sided_bound(1.0).unwrap(), 1.0);
        assert!((two_sided_bound(2.0).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn abs_form_matches_normalised_form() {
        let sigma = 3.0;
        for n in [0.5, 1.0, 2.0, 7.0] {
            let via_abs = one_sided_bound_abs(sigma, n * sigma).unwrap();
            assert!((via_abs - one_sided_bound(n)).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_factor_is_rejected() {
        assert!(try_one_sided_bound(-0.1).is_err());
        assert!(two_sided_bound(-1.0).is_err());
        assert!(try_one_sided_bound(f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn panicking_variant_panics_on_negative() {
        let _ = one_sided_bound(-1.0);
    }

    #[test]
    fn inverse_round_trips() {
        for p in [1.0, 0.5, 0.2, 0.1, 0.0911, 1e-4] {
            let n = n_for_probability(p).unwrap();
            assert!((one_sided_bound(n) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn inverse_rejects_out_of_range() {
        assert!(n_for_probability(0.0).is_err());
        assert!(n_for_probability(-0.5).is_err());
        assert!(n_for_probability(1.5).is_err());
        assert!(n_for_probability(f64::NAN).is_err());
    }

    #[test]
    fn system_probability_of_empty_set_is_zero() {
        assert_eq!(system_mode_switch_probability([]).unwrap(), 0.0);
    }

    #[test]
    fn system_probability_single_task_is_its_own() {
        let p = system_mode_switch_probability([0.3]).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn system_probability_certain_overrun_dominates() {
        let p = system_mode_switch_probability([0.0, 1.0, 0.1]).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn system_probability_rejects_out_of_range() {
        assert!(system_mode_switch_probability([1.1]).is_err());
        assert!(system_mode_switch_probability([-0.1]).is_err());
    }

    #[test]
    fn factors_based_composition_matches_manual() {
        let p = system_mode_switch_probability_from_factors([1.0, 2.0]).unwrap();
        let manual = 1.0 - (1.0 - 0.5) * (1.0 - 0.2);
        assert!((p - manual).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn bound_is_in_unit_interval(n in 0.0..1.0e6f64) {
                let b = one_sided_bound(n);
                prop_assert!((0.0..=1.0).contains(&b));
            }

            #[test]
            fn inverse_is_left_inverse(n in 0.0..1.0e3f64) {
                let p = one_sided_bound(n);
                let back = n_for_probability(p).unwrap();
                prop_assert!((back - n).abs() < 1e-6 * (1.0 + n));
            }

            #[test]
            fn system_probability_is_monotone_in_each_task(
                ps in proptest::collection::vec(0.0..1.0f64, 1..10),
                idx in 0usize..10,
                bump in 0.0..0.5f64,
            ) {
                let idx = idx % ps.len();
                let base = system_mode_switch_probability(ps.iter().copied()).unwrap();
                let mut bumped = ps.clone();
                bumped[idx] = (bumped[idx] + bump).min(1.0);
                let after = system_mode_switch_probability(bumped).unwrap();
                prop_assert!(after >= base - 1e-12);
            }

            #[test]
            fn system_probability_at_least_max_task(
                ps in proptest::collection::vec(0.0..1.0f64, 1..10),
            ) {
                let sys = system_mode_switch_probability(ps.iter().copied()).unwrap();
                let max = ps.iter().cloned().fold(0.0f64, f64::max);
                prop_assert!(sys >= max - 1e-12);
            }

            #[test]
            fn system_probability_at_most_sum(
                ps in proptest::collection::vec(0.0..1.0f64, 1..10),
            ) {
                // Union bound: 1 − Π(1 − p_i) ≤ Σ p_i.
                let sys = system_mode_switch_probability(ps.iter().copied()).unwrap();
                let sum: f64 = ps.iter().sum();
                prop_assert!(sys <= sum + 1e-12);
            }
        }
    }
}
