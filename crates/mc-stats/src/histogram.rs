//! Fixed-width histograms and empirical CDFs.
//!
//! Used to regenerate the paper's Fig. 1 (execution-time distribution of a
//! real-time task with the ACET ≪ WCET gap) and to inspect the synthetic
//! benchmark models in `mc-exec`.

use crate::{ensure_finite, Result, StatsError};
use serde::{Deserialize, Serialize};

/// A histogram over `[low, high)` with equally-wide bins.
///
/// Samples below `low` or at/above `high` are counted in underflow/overflow
/// counters rather than silently dropped, so total mass is conserved.
///
/// # Example
///
/// ```
/// use mc_stats::histogram::Histogram;
///
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [0.5, 1.5, 2.5, 9.9, 12.0] {
///     h.record(x)?;
/// }
/// assert_eq!(h.count(0), 2); // [0, 2) holds 0.5 and 1.5
/// assert_eq!(h.count(1), 1); // [2, 4) holds 2.5
/// assert_eq!(h.overflow(), 1); // 12.0 is out of range
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[low, high)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns an error when `bins == 0`, bounds are non-finite, or
    /// `high ≤ low`.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self> {
        ensure_finite("low", low)?;
        ensure_finite("high", high)?;
        if bins == 0 {
            return Err(StatsError::InvalidHistogram {
                reason: "bin count must be non-zero",
            });
        }
        if high <= low {
            return Err(StatsError::InvalidHistogram {
                reason: "high must exceed low",
            });
        }
        Ok(Histogram {
            low,
            high,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Creates a histogram sized to cover `samples` exactly, then records
    /// them all.
    ///
    /// # Errors
    ///
    /// Returns an error when `samples` is empty, contains non-finite values,
    /// or `bins == 0`. A degenerate all-equal sample set gets an artificial
    /// unit-width range.
    pub fn from_samples(samples: &[f64], bins: usize) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::EmptySamples);
        }
        let mut low = f64::INFINITY;
        let mut high = f64::NEG_INFINITY;
        for &s in samples {
            ensure_finite("sample", s)?;
            low = low.min(s);
            high = high.max(s);
        }
        if high <= low {
            high = low + 1.0;
        } else {
            // Nudge the top edge so the maximum lands in the last bin.
            high += (high - low) * 1e-9;
        }
        let mut h = Histogram::new(low, high, bins)?;
        for &s in samples {
            h.record(s)?;
        }
        Ok(h)
    }

    /// Records one sample.
    ///
    /// # Errors
    ///
    /// Returns an error when `sample` is NaN or infinite.
    pub fn record(&mut self, sample: f64) -> Result<()> {
        ensure_finite("sample", sample)?;
        self.total += 1;
        if sample < self.low {
            self.underflow += 1;
        } else if sample >= self.high {
            self.overflow += 1;
        } else {
            let width = (self.high - self.low) / self.counts.len() as f64;
            let idx = (((sample - self.low) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
        Ok(())
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ self.bins()`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// All bin counts in order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples recorded below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples recorded at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Inclusive lower edge of the histogram range.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Exclusive upper edge of the histogram range.
    pub fn high(&self) -> f64 {
        self.high
    }

    /// `(left_edge, right_edge)` of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx ≥ self.bins()`.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.counts.len(), "bin index out of range");
        let width = (self.high - self.low) / self.counts.len() as f64;
        (
            self.low + idx as f64 * width,
            self.low + (idx + 1) as f64 * width,
        )
    }

    /// Fraction of recorded samples that fell into bin `idx`
    /// (0 when nothing has been recorded).
    pub fn fraction(&self, idx: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[idx] as f64 / self.total as f64
        }
    }

    /// Index of the fullest bin, breaking ties toward the left;
    /// `None` when every bin is empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.counts.iter().max()?;
        if max == 0 {
            return None;
        }
        self.counts.iter().position(|&c| c == max)
    }

    /// Renders a compact ASCII bar chart (one line per bin), for experiment
    /// binaries that print Fig. 1-style distribution shapes.
    pub fn to_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "[{lo:>12.3e}, {hi:>12.3e}) |{:<width$}| {c}\n",
                "#".repeat(bar_len),
            ));
        }
        out
    }
}

/// Empirical cumulative distribution function over a sorted copy of the
/// sample set.
///
/// # Example
///
/// ```
/// use mc_stats::histogram::Ecdf;
///
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let e = Ecdf::from_samples(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(e.fraction_at_most(2.5), 0.5);
/// assert_eq!(e.fraction_above(2.5), 0.5);
/// assert_eq!(e.quantile(0.5)?, 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from `samples`.
    ///
    /// # Errors
    ///
    /// Returns an error when `samples` is empty or contains non-finite
    /// values.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::EmptySamples);
        }
        for &s in samples {
            ensure_finite("sample", s)?;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples verified finite"));
        Ok(Ecdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: an ECDF cannot be empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `≤ x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples `> x` — the empirical overrun rate at level `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// The `q`-quantile (nearest-rank method).
    ///
    /// # Errors
    ///
    /// Returns an error when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        ensure_finite("quantile q", q)?;
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                what: "quantile q",
                expected: "in [0, 1]",
                value: q,
            });
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Ok(self.sorted[rank - 1])
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fall_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(0.0).unwrap(); // bin 0: [0, 2)
        h.record(1.999).unwrap(); // bin 0
        h.record(2.0).unwrap(); // bin 1: [2, 4)
        h.record(9.999).unwrap(); // bin 4: [8, 10)
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_goes_to_under_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 2).unwrap();
        h.record(-1.0).unwrap();
        h.record(10.0).unwrap(); // top edge is exclusive
        h.record(100.0).unwrap();
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn total_mass_is_conserved() {
        let mut h = Histogram::new(0.0, 1.0, 7).unwrap();
        let samples = [-0.5, 0.1, 0.2, 0.3, 0.99, 1.0, 2.0];
        for s in samples {
            h.record(s).unwrap();
        }
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), samples.len() as u64);
    }

    #[test]
    fn from_samples_covers_all_samples() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let h = Histogram::from_samples(&samples, 4).unwrap();
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
    }

    #[test]
    fn from_samples_handles_constant_data() {
        let h = Histogram::from_samples(&[5.0, 5.0, 5.0], 3).unwrap();
        assert_eq!(h.counts().iter().sum::<u64>(), 3);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(10.0, 10.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 10.0, 4).is_err());
        assert!(Histogram::from_samples(&[], 4).is_err());
        assert!(Histogram::from_samples(&[f64::NAN], 4).is_err());
    }

    #[test]
    fn bin_edges_partition_the_range() {
        let h = Histogram::new(0.0, 12.0, 4).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 3.0));
        assert_eq!(h.bin_edges(3), (9.0, 12.0));
        for i in 0..3 {
            assert_eq!(h.bin_edges(i).1, h.bin_edges(i + 1).0);
        }
    }

    #[test]
    fn fraction_and_mode_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(h.mode_bin(), None);
        for x in [0.5, 1.5, 1.6, 1.7] {
            h.record(x).unwrap();
        }
        assert_eq!(h.mode_bin(), Some(1));
        assert!((h.fraction(1) - 0.75).abs() < 1e-12);
        assert!((h.fraction(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_contains_all_bins() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0], 3).unwrap();
        let art = h.to_ascii(20);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('#'));
    }

    #[test]
    fn ecdf_fractions_and_quantiles() {
        let e = Ecdf::from_samples(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(e.len(), 4);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 4.0);
        assert_eq!(e.fraction_at_most(0.0), 0.0);
        assert_eq!(e.fraction_at_most(2.0), 0.5);
        assert_eq!(e.fraction_at_most(10.0), 1.0);
        assert_eq!(e.fraction_above(3.5), 0.25);
        assert_eq!(e.quantile(0.0).unwrap(), 1.0);
        assert_eq!(e.quantile(0.25).unwrap(), 1.0);
        assert_eq!(e.quantile(0.5).unwrap(), 2.0);
        assert_eq!(e.quantile(1.0).unwrap(), 4.0);
        assert!(e.quantile(1.5).is_err());
    }

    #[test]
    fn ecdf_rejects_empty_and_non_finite() {
        assert!(Ecdf::from_samples(&[]).is_err());
        assert!(Ecdf::from_samples(&[1.0, f64::INFINITY]).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn histogram_conserves_mass(
                samples in proptest::collection::vec(-100.0..100.0f64, 1..300),
                bins in 1usize..32,
            ) {
                let mut h = Histogram::new(-50.0, 50.0, bins).unwrap();
                for &s in &samples {
                    h.record(s).unwrap();
                }
                let sum: u64 = h.counts().iter().sum();
                prop_assert_eq!(sum + h.underflow() + h.overflow(), samples.len() as u64);
            }

            #[test]
            fn ecdf_is_monotone(
                samples in proptest::collection::vec(-100.0..100.0f64, 1..200),
                a in -150.0..150.0f64,
                b in 0.0..100.0f64,
            ) {
                let e = Ecdf::from_samples(&samples).unwrap();
                prop_assert!(e.fraction_at_most(a + b) >= e.fraction_at_most(a));
            }

            #[test]
            fn quantile_is_an_observed_sample(
                samples in proptest::collection::vec(-100.0..100.0f64, 1..200),
                q in 0.0..=1.0f64,
            ) {
                let e = Ecdf::from_samples(&samples).unwrap();
                let v = e.quantile(q).unwrap();
                prop_assert!(samples.contains(&v));
            }

            #[test]
            fn quantiles_are_monotone(
                samples in proptest::collection::vec(-100.0..100.0f64, 1..200),
                q1 in 0.0..=1.0f64,
                dq in 0.0..=1.0f64,
            ) {
                let q2 = (q1 + dq).min(1.0);
                let e = Ecdf::from_samples(&samples).unwrap();
                prop_assert!(e.quantile(q2).unwrap() >= e.quantile(q1).unwrap());
            }
        }
    }
}
