//! Extreme-value-theory (EVT) estimation of probabilistic WCETs.
//!
//! The paper's related-work section (§II) discusses measurement-based
//! probabilistic WCET (pWCET) estimation via EVT (its refs. \[17\], \[18\]) and its open
//! challenges — sensitivity to block size, representativity, and fit
//! quality. This module implements the classic *block-maxima* method with a
//! Gumbel (EV type I) fit so the workspace can compare the two roads to an
//! optimistic WCET empirically:
//!
//! * **Chebyshev** (the paper): `C_LO = ACET + n·σ`, distribution-free,
//!   conservative by construction;
//! * **EVT**: fit a Gumbel to per-block maxima and read the quantile at the
//!   target exceedance probability — tighter when the fit is good,
//!   unsound when it is not.
//!
//! The fit uses the method of moments (`scale = s·√6/π`,
//! `location = m − γ·scale`), which is standard for Gumbel-based pWCET
//! estimation and needs no iterative solver.

use crate::dist::EULER_GAMMA;
use crate::summary::Summary;
use crate::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A fitted Gumbel (maximum) model of per-block maxima.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GumbelFit {
    /// Location parameter µ of the fitted Gumbel.
    pub location: f64,
    /// Scale parameter β of the fitted Gumbel.
    pub scale: f64,
    /// Block size the maxima were taken over.
    pub block_size: usize,
    /// Number of blocks used for the fit.
    pub blocks: usize,
}

impl GumbelFit {
    /// Fits a Gumbel to the maxima of consecutive `block_size`-sample
    /// blocks of `samples` (a trailing partial block is discarded).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `block_size == 0`,
    /// fewer than two complete blocks exist, or the block maxima are
    /// degenerate (zero variance — a constant-time task needs no EVT).
    pub fn from_block_maxima(samples: &[f64], block_size: usize) -> Result<Self> {
        if block_size == 0 {
            return Err(StatsError::InvalidParameter {
                what: "block_size",
                expected: "strictly positive",
                value: 0.0,
            });
        }
        let blocks = samples.len() / block_size;
        if blocks < 2 {
            return Err(StatsError::InvalidParameter {
                what: "blocks",
                expected: "at least 2 complete blocks",
                value: blocks as f64,
            });
        }
        let maxima: Vec<f64> = samples
            .chunks_exact(block_size)
            .map(|chunk| chunk.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .collect();
        let summary = Summary::from_samples(&maxima)?;
        // Method of moments on the maxima; Bessel-corrected s is standard.
        let s = summary.sample_std_dev();
        if s <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "block-maxima standard deviation",
                expected: "strictly positive",
                value: s,
            });
        }
        let scale = s * 6.0_f64.sqrt() / std::f64::consts::PI;
        let location = summary.mean() - EULER_GAMMA * scale;
        Ok(GumbelFit {
            location,
            scale,
            block_size,
            blocks,
        })
    }

    /// Probability that one *block maximum* exceeds `x`:
    /// `1 − exp(−exp(−(x − µ)/β))`.
    pub fn block_exceedance(&self, x: f64) -> f64 {
        1.0 - (-(-(x - self.location) / self.scale).exp()).exp()
    }

    /// Probability that one *individual sample* exceeds `x`, derived from
    /// the block model: if the block maximum's CDF at `x` is `F(x)`, then a
    /// single sample's exceedance is `1 − F(x)^(1/b)`.
    pub fn sample_exceedance(&self, x: f64) -> f64 {
        let f_block = 1.0 - self.block_exceedance(x);
        if f_block <= 0.0 {
            return 1.0;
        }
        1.0 - f_block.powf(1.0 / self.block_size as f64)
    }

    /// The pWCET at per-*sample* exceedance probability `p`: the level `x`
    /// with `sample_exceedance(x) = p`.
    ///
    /// # Errors
    ///
    /// Returns an error when `p` is outside `(0, 1)`.
    pub fn pwcet(&self, p: f64) -> Result<f64> {
        crate::ensure_finite("exceedance probability", p)?;
        if p <= 0.0 || p >= 1.0 {
            return Err(StatsError::InvalidParameter {
                what: "exceedance probability",
                expected: "in (0, 1)",
                value: p,
            });
        }
        // Per-sample CDF target → per-block CDF target → Gumbel quantile.
        let f_block = (1.0 - p).powf(self.block_size as f64);
        Ok(self.location - self.scale * (-f_block.ln()).ln())
    }
}

/// Convenience: the EVT counterpart of the paper's `ACET + n·σ` — the level
/// whose *estimated* exceedance probability equals the Chebyshev bound
/// `1/(1+n²)`, so the two approaches can be compared at equal risk.
///
/// # Errors
///
/// Propagates fitting/quantile errors.
pub fn evt_level_for_factor(samples: &[f64], block_size: usize, n: f64) -> Result<f64> {
    let fit = GumbelFit::from_block_maxima(samples, block_size)?;
    let p = crate::chebyshev::try_one_sided_bound(n)?;
    if p >= 1.0 {
        // n = 0: the Chebyshev bound is vacuous; the matching level is the
        // distribution's infimum, approximated by the sample minimum.
        return Summary::from_samples(samples).map(|s| s.min());
    }
    fit.pwcet(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gumbel_samples(loc: f64, scale: f64, count: usize, seed: u64) -> Vec<f64> {
        let d = Dist::gumbel(loc, scale).unwrap();
        d.sample_vec(&mut StdRng::seed_from_u64(seed), count)
    }

    #[test]
    fn fit_recovers_gumbel_parameters_of_maxima() {
        // Maxima of Gumbel blocks are Gumbel with shifted location:
        // max of b iid Gumbel(µ, β) is Gumbel(µ + β ln b, β).
        let (loc, scale, b) = (100.0, 5.0, 50usize);
        let samples = gumbel_samples(loc, scale, 100_000, 1);
        let fit = GumbelFit::from_block_maxima(&samples, b).unwrap();
        let expected_loc = loc + scale * (b as f64).ln();
        assert!(
            (fit.location - expected_loc).abs() < 0.5,
            "location {} vs {}",
            fit.location,
            expected_loc
        );
        assert!((fit.scale - scale).abs() < 0.5, "scale {}", fit.scale);
        assert_eq!(fit.blocks, 2_000);
    }

    #[test]
    fn pwcet_round_trips_through_exceedance() {
        let samples = gumbel_samples(1_000.0, 50.0, 20_000, 2);
        let fit = GumbelFit::from_block_maxima(&samples, 40).unwrap();
        for p in [0.1, 0.01, 1e-3, 1e-6] {
            let level = fit.pwcet(p).unwrap();
            let back = fit.sample_exceedance(level);
            assert!(
                (back - p).abs() < p * 1e-6 + 1e-12,
                "p = {p}: level {level}, back {back}"
            );
        }
    }

    #[test]
    fn pwcet_is_monotone_in_risk() {
        let samples = gumbel_samples(1_000.0, 50.0, 20_000, 3);
        let fit = GumbelFit::from_block_maxima(&samples, 40).unwrap();
        let l1 = fit.pwcet(0.1).unwrap();
        let l2 = fit.pwcet(0.01).unwrap();
        let l3 = fit.pwcet(1e-4).unwrap();
        assert!(l1 < l2 && l2 < l3);
    }

    #[test]
    fn evt_estimate_tracks_empirical_exceedance_on_gumbel_data() {
        // On genuinely Gumbel data the EVT estimate at p = 1 % must be close
        // to the empirical 99th percentile.
        let samples = gumbel_samples(500.0, 20.0, 50_000, 4);
        let fit = GumbelFit::from_block_maxima(&samples, 50).unwrap();
        let level = fit.pwcet(0.01).unwrap();
        let empirical =
            samples.iter().filter(|&&x| x > level).count() as f64 / samples.len() as f64;
        assert!(
            (empirical - 0.01).abs() < 0.004,
            "empirical exceedance {empirical}"
        );
    }

    #[test]
    fn chebyshev_is_more_conservative_than_evt_on_light_tails() {
        // The headline ablation: for a well-behaved distribution, the
        // Chebyshev level at bound p sits above the EVT level at the same
        // p — Chebyshev buys distribution-freedom with pessimism.
        let d = Dist::normal(1_000.0, 50.0).unwrap();
        let samples = d.sample_vec(&mut StdRng::seed_from_u64(5), 50_000);
        let summary = Summary::from_samples(&samples).unwrap();
        for n in [2.0, 3.0, 4.0] {
            let chebyshev_level = summary.mean() + n * summary.std_dev();
            let evt_level = evt_level_for_factor(&samples, 50, n).unwrap();
            assert!(
                chebyshev_level > evt_level,
                "n = {n}: chebyshev {chebyshev_level} vs evt {evt_level}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(GumbelFit::from_block_maxima(&[1.0, 2.0], 0).is_err());
        assert!(GumbelFit::from_block_maxima(&[1.0, 2.0, 3.0], 2).is_err());
        // Constant data has zero block-maxima variance.
        let constant = vec![5.0; 1_000];
        assert!(GumbelFit::from_block_maxima(&constant, 10).is_err());
    }

    #[test]
    fn pwcet_validates_probability() {
        let samples = gumbel_samples(0.0, 1.0, 1_000, 6);
        let fit = GumbelFit::from_block_maxima(&samples, 10).unwrap();
        assert!(fit.pwcet(0.0).is_err());
        assert!(fit.pwcet(1.0).is_err());
        assert!(fit.pwcet(-0.1).is_err());
        assert!(fit.pwcet(f64::NAN).is_err());
    }

    #[test]
    fn factor_zero_maps_to_sample_minimum() {
        let samples = gumbel_samples(0.0, 1.0, 1_000, 7);
        let level = evt_level_for_factor(&samples, 10, 0.0).unwrap();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(level, min);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn exceedance_functions_are_proper(
                loc in -100.0..100.0f64,
                scale in 0.5..20.0f64,
                seed in 0u64..100,
                x in -200.0..400.0f64,
            ) {
                let samples = gumbel_samples(loc, scale, 2_000, seed);
                let fit = GumbelFit::from_block_maxima(&samples, 20).unwrap();
                let b = fit.block_exceedance(x);
                let s = fit.sample_exceedance(x);
                prop_assert!((0.0..=1.0).contains(&b));
                prop_assert!((0.0..=1.0).contains(&s));
                // A single sample exceeds x no more often than the block max.
                prop_assert!(s <= b + 1e-12);
            }
        }
    }
}
