//! Sampling distributions for execution-time modelling.
//!
//! The paper measures each benchmark's execution-time distribution on an ARM
//! simulator (MEET). This workspace replaces those measurements with
//! parameterised distribution models ([`Dist`]) whose moments are calibrated
//! to the paper's published (ACET, σ, WCET_pes) triples — see
//! `mc-exec::benchmarks`. Because Chebyshev's bound is distribution-free,
//! *any* model with the right first two moments exercises the same analysis;
//! the distribution family only affects how far below the bound the measured
//! overrun rate falls (paper Table II).
//!
//! All sampling is driven by a caller-supplied [`rand::Rng`], so every
//! experiment in the workspace is reproducible from a `u64` seed.
//!
//! # Example
//!
//! ```
//! use mc_stats::dist::Dist;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), mc_stats::StatsError> {
//! let d = Dist::normal(100.0, 15.0)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let x = d.sample(&mut rng);
//! assert!(x.is_finite());
//! assert_eq!(d.mean(), Some(100.0));
//! # Ok(())
//! # }
//! ```

use crate::{ensure_finite, ensure_positive, Result, StatsError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Euler–Mascheroni constant, used by the Gumbel moment formulas.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Exceedance probability [`Dist::weibull_from_triple`] assigns to the
/// pessimistic WCET: the fitted (untruncated) distribution places 10⁻⁴ of
/// its mass above the WCET, so truncating there clips a negligible sliver
/// while keeping the first two moments essentially intact.
pub const WEIBULL_TRIPLE_TAIL: f64 = 1e-4;

/// A weighted component of a [`Dist::Mixture`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Non-negative mixture weight (weights are normalised on construction).
    pub weight: f64,
    /// The component distribution.
    pub dist: Dist,
}

/// A univariate sampling distribution.
///
/// Construct via the checked constructors ([`Dist::normal`],
/// [`Dist::gumbel_from_moments`], …) rather than the enum variants directly;
/// the constructors validate parameters once so that sampling never fails.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Dist {
    /// Continuous uniform on `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound (must exceed `low`).
        high: f64,
    },
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Mean µ.
        mean: f64,
        /// Standard deviation σ > 0.
        std_dev: f64,
    },
    /// Log-normal: `exp(N(mu, sigma²))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal (> 0).
        sigma: f64,
    },
    /// Gumbel (extreme-value type I, maximum form) — right-skewed, the
    /// classic model for measured worst-case execution-time tails.
    Gumbel {
        /// Location parameter.
        location: f64,
        /// Scale parameter β > 0.
        scale: f64,
    },
    /// Gumbel minimum form — left-skewed; models tasks whose execution time
    /// hugs a hot-path mode with a short upper tail.
    GumbelMin {
        /// Location parameter.
        location: f64,
        /// Scale parameter β > 0.
        scale: f64,
    },
    /// Exponential with the given rate λ.
    Exponential {
        /// Rate λ > 0.
        rate: f64,
    },
    /// Weibull with shape `k` and scale `lambda`.
    Weibull {
        /// Shape k > 0.
        shape: f64,
        /// Scale λ > 0.
        scale: f64,
    },
    /// Three-parameter (shifted) Weibull: `location + Weibull(shape, scale)`.
    ///
    /// The automotive workload family fits this to per-task
    /// (BCET, ACET, WCET) triples — see [`Dist::weibull_from_triple`] —
    /// with the location pinned at the BCET so no sample undercuts the
    /// best-case execution time.
    Weibull3 {
        /// Location (lower bound of the support).
        location: f64,
        /// Shape k > 0.
        shape: f64,
        /// Scale λ > 0.
        scale: f64,
    },
    /// Triangular on `[low, high]` with the given mode.
    Triangular {
        /// Lower bound.
        low: f64,
        /// Mode (`low ≤ mode ≤ high`).
        mode: f64,
        /// Upper bound (> `low`).
        high: f64,
    },
    /// Finite mixture of weighted components.
    Mixture(Vec<Component>),
    /// `inner` conditioned on being at most `upper` (rejection sampling).
    Truncated {
        /// The distribution being truncated.
        inner: Box<Dist>,
        /// Inclusive upper truncation point.
        upper: f64,
    },
}

impl Dist {
    /// Uniform distribution on `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns an error when bounds are non-finite or `high ≤ low`.
    pub fn uniform(low: f64, high: f64) -> Result<Self> {
        ensure_finite("low", low)?;
        ensure_finite("high", high)?;
        if high <= low {
            return Err(StatsError::InvalidParameter {
                what: "high",
                expected: "greater than low",
                value: high,
            });
        }
        Ok(Dist::Uniform { low, high })
    }

    /// Normal distribution with mean `mean` and standard deviation `std_dev`.
    ///
    /// # Errors
    ///
    /// Returns an error when `mean` is non-finite or `std_dev ≤ 0`.
    pub fn normal(mean: f64, std_dev: f64) -> Result<Self> {
        ensure_finite("mean", mean)?;
        ensure_positive("std_dev", std_dev)?;
        Ok(Dist::Normal { mean, std_dev })
    }

    /// Log-normal distribution parameterised by the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns an error when `mu` is non-finite or `sigma ≤ 0`.
    pub fn log_normal(mu: f64, sigma: f64) -> Result<Self> {
        ensure_finite("mu", mu)?;
        ensure_positive("sigma", sigma)?;
        Ok(Dist::LogNormal { mu, sigma })
    }

    /// Log-normal with the given *distribution* mean and standard deviation
    /// (solves for the underlying normal's parameters).
    ///
    /// # Errors
    ///
    /// Returns an error when `mean ≤ 0` or `std_dev ≤ 0`.
    pub fn log_normal_from_moments(mean: f64, std_dev: f64) -> Result<Self> {
        ensure_positive("mean", mean)?;
        ensure_positive("std_dev", std_dev)?;
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Dist::log_normal(mu, sigma2.sqrt())
    }

    /// Gumbel (maximum) distribution.
    ///
    /// # Errors
    ///
    /// Returns an error when `location` is non-finite or `scale ≤ 0`.
    pub fn gumbel(location: f64, scale: f64) -> Result<Self> {
        ensure_finite("location", location)?;
        ensure_positive("scale", scale)?;
        Ok(Dist::Gumbel { location, scale })
    }

    /// Gumbel (maximum) with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error when `mean` is non-finite or `std_dev ≤ 0`.
    pub fn gumbel_from_moments(mean: f64, std_dev: f64) -> Result<Self> {
        ensure_finite("mean", mean)?;
        ensure_positive("std_dev", std_dev)?;
        let scale = std_dev * 6.0_f64.sqrt() / std::f64::consts::PI;
        let location = mean - EULER_GAMMA * scale;
        Dist::gumbel(location, scale)
    }

    /// Gumbel (minimum) distribution — the mirror image of [`Dist::gumbel`].
    ///
    /// # Errors
    ///
    /// Returns an error when `location` is non-finite or `scale ≤ 0`.
    pub fn gumbel_min(location: f64, scale: f64) -> Result<Self> {
        ensure_finite("location", location)?;
        ensure_positive("scale", scale)?;
        Ok(Dist::GumbelMin { location, scale })
    }

    /// Gumbel (minimum) with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error when `mean` is non-finite or `std_dev ≤ 0`.
    pub fn gumbel_min_from_moments(mean: f64, std_dev: f64) -> Result<Self> {
        ensure_finite("mean", mean)?;
        ensure_positive("std_dev", std_dev)?;
        let scale = std_dev * 6.0_f64.sqrt() / std::f64::consts::PI;
        let location = mean + EULER_GAMMA * scale;
        Dist::gumbel_min(location, scale)
    }

    /// Exponential distribution with rate `rate`.
    ///
    /// # Errors
    ///
    /// Returns an error when `rate ≤ 0`.
    pub fn exponential(rate: f64) -> Result<Self> {
        ensure_positive("rate", rate)?;
        Ok(Dist::Exponential { rate })
    }

    /// Weibull distribution with shape `shape` and scale `scale`.
    ///
    /// # Errors
    ///
    /// Returns an error when either parameter is not strictly positive.
    pub fn weibull(shape: f64, scale: f64) -> Result<Self> {
        ensure_positive("shape", shape)?;
        ensure_positive("scale", scale)?;
        Ok(Dist::Weibull { shape, scale })
    }

    /// Shifted Weibull distribution `location + Weibull(shape, scale)`.
    ///
    /// # Errors
    ///
    /// Returns an error when `location` is non-finite or either of
    /// `shape`/`scale` is not strictly positive.
    pub fn weibull3(location: f64, shape: f64, scale: f64) -> Result<Self> {
        ensure_finite("location", location)?;
        ensure_positive("shape", shape)?;
        ensure_positive("scale", scale)?;
        Ok(Dist::Weibull3 {
            location,
            shape,
            scale,
        })
    }

    /// Fits a shifted Weibull to a `(BCET, ACET, WCET)` execution-time
    /// triple: the location is pinned at the BCET, the mean at the ACET,
    /// and the survival at the WCET at [`WEIBULL_TRIPLE_TAIL`] — the
    /// standard three-point calibration the automotive benchmark
    /// literature uses for heavy-tailed runnable execution times.
    ///
    /// With `m = ACET − BCET`, `t = WCET − BCET` and `q = ln(1/p_tail)`,
    /// the shape `k = 1/x` solves `Γ(1+x)·q⁻ˣ = m/t` on the initial
    /// decreasing branch of that unimodal function (bracketing +
    /// bisection; no external dependencies), and the scale follows as
    /// `λ = t·q⁻ˣ`. The fitted mean is then exactly
    /// `BCET + λ·Γ(1+x) = ACET`.
    ///
    /// # Errors
    ///
    /// Returns an error when the triple is not strictly ordered
    /// (`0 ≤ BCET < ACET < WCET`), any value is non-finite, or the mean
    /// sits so close to the BCET relative to the WCET span
    /// (`m/t` below ~7·10⁻⁴) that no Weibull shape can realise it.
    pub fn weibull_from_triple(bcet: f64, acet: f64, wcet: f64) -> Result<Self> {
        ensure_finite("bcet", bcet)?;
        ensure_finite("acet", acet)?;
        ensure_finite("wcet", wcet)?;
        if bcet < 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "bcet",
                expected: "non-negative",
                value: bcet,
            });
        }
        if acet <= bcet {
            return Err(StatsError::InvalidParameter {
                what: "acet",
                expected: "strictly above bcet",
                value: acet,
            });
        }
        if wcet <= acet {
            return Err(StatsError::InvalidParameter {
                what: "wcet",
                expected: "strictly above acet",
                value: wcet,
            });
        }
        let span = wcet - bcet;
        let r = (acet - bcet) / span;
        let ln_q = (-WEIBULL_TRIPLE_TAIL.ln()).ln();
        let h = |x: f64| gamma(1.0 + x) * (-x * ln_q).exp();
        // h(0) = 1 and h decreases to a single minimum (near x ≈ 8 for
        // p_tail = 10⁻⁴) before diverging; bracket the crossing h(x) = r
        // on the decreasing branch by doubling, then bisect.
        let mut lo = 0.0;
        let mut hi = 1e-3;
        let mut h_hi = h(hi);
        while h_hi > r {
            let next = hi * 2.0;
            let h_next = h(next);
            if h_next >= h_hi {
                // Passed the minimum without reaching r: no shape fits.
                return Err(StatsError::InvalidParameter {
                    what: "acet",
                    expected: "far enough above bcet for a Weibull fit",
                    value: r,
                });
            }
            lo = hi;
            hi = next;
            h_hi = h_next;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if h(mid) > r {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo <= 1e-15 * (1.0 + hi) {
                break;
            }
        }
        let x = (0.5 * (lo + hi)).max(1e-12);
        Dist::weibull3(bcet, 1.0 / x, span * (-x * ln_q).exp())
    }

    /// Triangular distribution on `[low, high]` with the given `mode`.
    ///
    /// # Errors
    ///
    /// Returns an error when `high ≤ low` or `mode` lies outside `[low, high]`.
    pub fn triangular(low: f64, mode: f64, high: f64) -> Result<Self> {
        ensure_finite("low", low)?;
        ensure_finite("mode", mode)?;
        ensure_finite("high", high)?;
        if high <= low {
            return Err(StatsError::InvalidParameter {
                what: "high",
                expected: "greater than low",
                value: high,
            });
        }
        if mode < low || mode > high {
            return Err(StatsError::InvalidParameter {
                what: "mode",
                expected: "within [low, high]",
                value: mode,
            });
        }
        Ok(Dist::Triangular { low, mode, high })
    }

    /// Finite mixture; weights are normalised to sum to one.
    ///
    /// # Errors
    ///
    /// Returns an error when `components` is empty, any weight is negative
    /// or non-finite, or all weights are zero.
    pub fn mixture<I>(components: I) -> Result<Self>
    where
        I: IntoIterator<Item = (f64, Dist)>,
    {
        let mut parts: Vec<Component> = Vec::new();
        let mut total = 0.0;
        for (weight, dist) in components {
            ensure_finite("mixture weight", weight)?;
            if weight < 0.0 {
                return Err(StatsError::InvalidParameter {
                    what: "mixture weight",
                    expected: "non-negative",
                    value: weight,
                });
            }
            total += weight;
            parts.push(Component { weight, dist });
        }
        if parts.is_empty() {
            return Err(StatsError::EmptySamples);
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "mixture weight sum",
                expected: "strictly positive",
                value: total,
            });
        }
        for p in &mut parts {
            p.weight /= total;
        }
        Ok(Dist::Mixture(parts))
    }

    /// Truncates this distribution above at `upper` (samples are conditioned
    /// on `X ≤ upper`); used to clamp execution times at the pessimistic
    /// WCET, which is by definition never exceeded.
    ///
    /// # Errors
    ///
    /// Returns an error when `upper` is non-finite or when the truncation
    /// point lies below essentially all of the distribution's mass
    /// (survival at `upper` above 99.9 %), which would make rejection
    /// sampling degenerate.
    pub fn truncated_above(self, upper: f64) -> Result<Self> {
        ensure_finite("upper", upper)?;
        if self.survival(upper) > 0.999 {
            return Err(StatsError::InvalidParameter {
                what: "upper",
                expected: "above at least 0.1 % of the distribution's mass",
                value: upper,
            });
        }
        Ok(Dist::Truncated {
            inner: Box::new(self),
            upper,
        })
    }

    /// Draws one sample.
    ///
    /// Works with any [`rand::Rng`], including `&mut dyn RngCore` via the
    /// blanket impl, so callers can keep a single seeded generator per
    /// experiment.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Uniform { low, high } => low + (high - low) * rng.random::<f64>(),
            Dist::Normal { mean, std_dev } => mean + std_dev * standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Gumbel { location, scale } => {
                let u = open01(rng);
                location - scale * (-u.ln()).ln()
            }
            Dist::GumbelMin { location, scale } => {
                let u = open01(rng);
                location + scale * (-(1.0 - u).ln()).ln()
            }
            Dist::Exponential { rate } => -open01(rng).ln() / rate,
            Dist::Weibull { shape, scale } => scale * (-open01(rng).ln()).powf(1.0 / shape),
            Dist::Weibull3 {
                location,
                shape,
                scale,
            } => location + scale * (-open01(rng).ln()).powf(1.0 / shape),
            Dist::Triangular { low, mode, high } => {
                let u = rng.random::<f64>();
                let cut = (mode - low) / (high - low);
                if u < cut {
                    low + ((high - low) * (mode - low) * u).sqrt()
                } else {
                    high - ((high - low) * (high - mode) * (1.0 - u)).sqrt()
                }
            }
            Dist::Mixture(parts) => {
                let mut pick = rng.random::<f64>();
                for part in parts {
                    if pick < part.weight {
                        return part.dist.sample(rng);
                    }
                    pick -= part.weight;
                }
                // Floating-point slack: fall back to the last component.
                parts
                    .last()
                    .expect("mixture is non-empty by construction")
                    .dist
                    .sample(rng)
            }
            Dist::Truncated { inner, upper } => {
                // Construction guarantees ≥ 0.1 % acceptance probability, so
                // 10 000 attempts fail with probability < 10^-43; clamp as a
                // deterministic last resort.
                for _ in 0..10_000 {
                    let x = inner.sample(rng);
                    if x <= *upper {
                        return x;
                    }
                }
                *upper
            }
        }
    }

    /// Fills `out` with independent samples.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for slot in out {
            *slot = self.sample(rng);
        }
    }

    /// Draws `count` independent samples into a fresh vector.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<f64> {
        let mut v = vec![0.0; count];
        self.sample_into(rng, &mut v);
        v
    }

    /// Analytic mean, when available.
    ///
    /// Returns `None` for truncated distributions (no closed form is exposed)
    /// and for mixtures containing such components.
    pub fn mean(&self) -> Option<f64> {
        match self {
            Dist::Uniform { low, high } => Some((low + high) / 2.0),
            Dist::Normal { mean, .. } => Some(*mean),
            Dist::LogNormal { mu, sigma } => Some((mu + sigma * sigma / 2.0).exp()),
            Dist::Gumbel { location, scale } => Some(location + EULER_GAMMA * scale),
            Dist::GumbelMin { location, scale } => Some(location - EULER_GAMMA * scale),
            Dist::Exponential { rate } => Some(1.0 / rate),
            Dist::Weibull { shape, scale } => Some(scale * gamma(1.0 + 1.0 / shape)),
            Dist::Weibull3 {
                location,
                shape,
                scale,
            } => Some(location + scale * gamma(1.0 + 1.0 / shape)),
            Dist::Triangular { low, mode, high } => Some((low + mode + high) / 3.0),
            Dist::Mixture(parts) => {
                let mut m = 0.0;
                for p in parts {
                    m += p.weight * p.dist.mean()?;
                }
                Some(m)
            }
            Dist::Truncated { .. } => None,
        }
    }

    /// Analytic variance, when available (see [`Dist::mean`]).
    pub fn variance(&self) -> Option<f64> {
        match self {
            Dist::Uniform { low, high } => Some((high - low).powi(2) / 12.0),
            Dist::Normal { std_dev, .. } => Some(std_dev * std_dev),
            Dist::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                Some((s2.exp() - 1.0) * (2.0 * mu + s2).exp())
            }
            Dist::Gumbel { scale, .. } | Dist::GumbelMin { scale, .. } => {
                Some(std::f64::consts::PI.powi(2) / 6.0 * scale * scale)
            }
            Dist::Exponential { rate } => Some(1.0 / (rate * rate)),
            Dist::Weibull { shape, scale } | Dist::Weibull3 { shape, scale, .. } => {
                let g1 = gamma(1.0 + 1.0 / shape);
                let g2 = gamma(1.0 + 2.0 / shape);
                Some(scale * scale * (g2 - g1 * g1))
            }
            Dist::Triangular { low, mode, high } => Some(
                (low * low + mode * mode + high * high - low * mode - low * high - mode * high)
                    / 18.0,
            ),
            Dist::Mixture(parts) => {
                // Law of total variance: Var = Σw(σᵢ² + µᵢ²) − µ².
                let mean = self.mean()?;
                let mut second = 0.0;
                for p in parts {
                    let m = p.dist.mean()?;
                    let v = p.dist.variance()?;
                    second += p.weight * (v + m * m);
                }
                Some(second - mean * mean)
            }
            Dist::Truncated { .. } => None,
        }
    }

    /// Analytic standard deviation, when available.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Survival function `P[X > x]`.
    pub fn survival(&self, x: f64) -> f64 {
        match self {
            Dist::Uniform { low, high } => {
                if x < *low {
                    1.0
                } else if x >= *high {
                    0.0
                } else {
                    (high - x) / (high - low)
                }
            }
            Dist::Normal { mean, std_dev } => normal_survival((x - mean) / std_dev),
            Dist::LogNormal { mu, sigma } => {
                if x <= 0.0 {
                    1.0
                } else {
                    normal_survival((x.ln() - mu) / sigma)
                }
            }
            Dist::Gumbel { location, scale } => 1.0 - (-(-(x - location) / scale).exp()).exp(),
            Dist::GumbelMin { location, scale } => (-((x - location) / scale).exp()).exp(),
            Dist::Exponential { rate } => {
                if x <= 0.0 {
                    1.0
                } else {
                    (-rate * x).exp()
                }
            }
            Dist::Weibull { shape, scale } => {
                if x <= 0.0 {
                    1.0
                } else {
                    (-(x / scale).powf(*shape)).exp()
                }
            }
            Dist::Weibull3 {
                location,
                shape,
                scale,
            } => {
                if x <= *location {
                    1.0
                } else {
                    (-((x - location) / scale).powf(*shape)).exp()
                }
            }
            Dist::Triangular { low, mode, high } => {
                if x <= *low {
                    1.0
                } else if x >= *high {
                    0.0
                } else if x <= *mode {
                    1.0 - (x - low).powi(2) / ((high - low) * (mode - low))
                } else {
                    (high - x).powi(2) / ((high - low) * (high - mode))
                }
            }
            Dist::Mixture(parts) => parts.iter().map(|p| p.weight * p.dist.survival(x)).sum(),
            Dist::Truncated { inner, upper } => {
                if x >= *upper {
                    return 0.0;
                }
                let tail_cut = inner.survival(*upper);
                let mass = 1.0 - tail_cut;
                if mass <= 0.0 {
                    return 0.0;
                }
                ((inner.survival(x) - tail_cut) / mass).clamp(0.0, 1.0)
            }
        }
    }

    /// Cumulative distribution function `P[X ≤ x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        1.0 - self.survival(x)
    }

    /// The `p`-quantile (inverse CDF), computed by bracketing and
    /// bisection on [`Dist::cdf`] — works for every variant, including
    /// mixtures and truncations. Accuracy is ~1e-9 relative to the
    /// bracket width.
    ///
    /// # Errors
    ///
    /// Returns an error when `p` is outside `(0, 1)`.
    ///
    /// # Example
    ///
    /// ```
    /// use mc_stats::dist::Dist;
    /// # fn main() -> Result<(), mc_stats::StatsError> {
    /// let d = Dist::normal(100.0, 15.0)?;
    /// let median = d.quantile(0.5)?;
    /// assert!((median - 100.0).abs() < 1e-6);
    /// # Ok(())
    /// # }
    /// ```
    pub fn quantile(&self, p: f64) -> Result<f64> {
        ensure_finite("quantile p", p)?;
        if p <= 0.0 || p >= 1.0 {
            return Err(StatsError::InvalidParameter {
                what: "quantile p",
                expected: "in (0, 1)",
                value: p,
            });
        }
        // Bracket: start around the mean (or zero) and expand outward.
        let centre = self.mean().unwrap_or(0.0);
        let spread = self.std_dev().unwrap_or(1.0).max(1e-9);
        let mut lo = centre - spread;
        let mut hi = centre + spread;
        let mut width = spread;
        for _ in 0..128 {
            if self.cdf(lo) <= p {
                break;
            }
            width *= 2.0;
            lo -= width;
        }
        let mut width = spread;
        for _ in 0..128 {
            if self.cdf(hi) >= p {
                break;
            }
            width *= 2.0;
            hi += width;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo).abs() <= 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// Returns one standard-normal draw (Box–Muller transform).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open01(rng);
    let u2 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniform draw on the open interval (0, 1).
fn open01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random();
        if u > 0.0 {
            return u;
        }
    }
}

/// Standard-normal survival function via the Abramowitz–Stegun 7.1.26 erf
/// approximation (absolute error < 1.5 × 10⁻⁷).
pub fn normal_survival(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Complementary error function `1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Gamma function via the Lanczos approximation (g = 7, n = 9), accurate to
/// ~15 significant digits for positive arguments.
pub fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept verbatim even where f64 rounds
    // the last digit.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut acc = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn check_moments(d: &Dist, seed: u64, tol_mean: f64, tol_sd: f64) {
        let mut r = rng(seed);
        let samples = d.sample_vec(&mut r, 200_000);
        let s = Summary::from_samples(&samples).unwrap();
        let mean = d.mean().unwrap();
        let sd = d.std_dev().unwrap();
        assert!(
            (s.mean() - mean).abs() < tol_mean,
            "mean: empirical {} vs analytic {}",
            s.mean(),
            mean
        );
        assert!(
            (s.std_dev() - sd).abs() < tol_sd,
            "std dev: empirical {} vs analytic {}",
            s.std_dev(),
            sd
        );
    }

    #[test]
    fn uniform_moments_match() {
        check_moments(&Dist::uniform(2.0, 10.0).unwrap(), 1, 0.05, 0.05);
    }

    #[test]
    fn normal_moments_match() {
        check_moments(&Dist::normal(50.0, 7.0).unwrap(), 2, 0.1, 0.1);
    }

    #[test]
    fn log_normal_from_moments_round_trips() {
        let d = Dist::log_normal_from_moments(100.0, 25.0).unwrap();
        assert!((d.mean().unwrap() - 100.0).abs() < 1e-9);
        assert!((d.std_dev().unwrap() - 25.0).abs() < 1e-9);
        check_moments(&d, 3, 0.5, 0.5);
    }

    #[test]
    fn gumbel_from_moments_round_trips() {
        let d = Dist::gumbel_from_moments(10.0, 2.0).unwrap();
        assert!((d.mean().unwrap() - 10.0).abs() < 1e-9);
        assert!((d.std_dev().unwrap() - 2.0).abs() < 1e-9);
        check_moments(&d, 4, 0.05, 0.05);
    }

    #[test]
    fn gumbel_min_from_moments_round_trips() {
        let d = Dist::gumbel_min_from_moments(10.0, 2.0).unwrap();
        assert!((d.mean().unwrap() - 10.0).abs() < 1e-9);
        assert!((d.std_dev().unwrap() - 2.0).abs() < 1e-9);
        check_moments(&d, 5, 0.05, 0.05);
    }

    #[test]
    fn gumbel_min_is_left_skewed_and_gumbel_right_skewed() {
        // P[X > µ] > 0.5 for left-skew, < 0.5 for right-skew.
        let max = Dist::gumbel_from_moments(0.0, 1.0).unwrap();
        let min = Dist::gumbel_min_from_moments(0.0, 1.0).unwrap();
        assert!(max.survival(0.0) < 0.5);
        assert!(min.survival(0.0) > 0.5);
    }

    #[test]
    fn exponential_moments_match() {
        check_moments(&Dist::exponential(0.25).unwrap(), 6, 0.05, 0.1);
    }

    #[test]
    fn weibull_moments_match() {
        check_moments(&Dist::weibull(2.0, 3.0).unwrap(), 7, 0.05, 0.05);
    }

    #[test]
    fn weibull3_moments_match_and_respect_location() {
        let d = Dist::weibull3(10.0, 2.0, 3.0).unwrap();
        // Shifting moves the mean but not the variance.
        let base = Dist::weibull(2.0, 3.0).unwrap();
        assert!((d.mean().unwrap() - (10.0 + base.mean().unwrap())).abs() < 1e-12);
        assert!((d.variance().unwrap() - base.variance().unwrap()).abs() < 1e-12);
        check_moments(&d, 20, 0.05, 0.05);
        let mut r = rng(21);
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 10.0);
        }
        assert_eq!(d.survival(9.0), 1.0);
        assert_eq!(d.survival(10.0), 1.0);
        assert!(d.survival(10.1) < 1.0);
    }

    #[test]
    fn weibull_from_triple_hits_all_three_calibration_points() {
        for &(bcet, acet, wcet) in &[
            (100.0, 500.0, 3_000.0),
            (0.0, 1.0, 10.0),
            (5_000.0, 5_400.0, 150_000.0), // heavy tail: mean hugs the BCET
            (10.0, 90.0, 100.0),           // light tail: mean hugs the WCET
        ] {
            let d = Dist::weibull_from_triple(bcet, acet, wcet).unwrap();
            let mean = d.mean().unwrap();
            assert!(
                (mean - acet).abs() < 1e-6 * acet.max(1.0),
                "({bcet},{acet},{wcet}): fitted mean {mean}"
            );
            assert!(
                (d.survival(wcet) - WEIBULL_TRIPLE_TAIL).abs() < 1e-9,
                "({bcet},{acet},{wcet}): survival at WCET {}",
                d.survival(wcet)
            );
            assert_eq!(d.survival(bcet), 1.0);
        }
    }

    #[test]
    fn weibull_from_triple_rejects_degenerate_triples() {
        assert!(Dist::weibull_from_triple(-1.0, 5.0, 10.0).is_err());
        assert!(Dist::weibull_from_triple(5.0, 5.0, 10.0).is_err());
        assert!(Dist::weibull_from_triple(1.0, 10.0, 10.0).is_err());
        assert!(Dist::weibull_from_triple(10.0, 5.0, 20.0).is_err());
        assert!(Dist::weibull_from_triple(f64::NAN, 5.0, 10.0).is_err());
        assert!(Dist::weibull_from_triple(1.0, 5.0, f64::INFINITY).is_err());
        // Mean essentially at the BCET relative to the span: unreachable by
        // any Weibull shape (h's minimum is ~7e-4 for the 1e-4 tail).
        assert!(Dist::weibull_from_triple(0.0, 1.0, 1.0e6).is_err());
    }

    #[test]
    fn weibull_from_triple_truncates_cleanly_at_wcet() {
        let d = Dist::weibull_from_triple(100.0, 400.0, 2_000.0)
            .unwrap()
            .truncated_above(2_000.0)
            .unwrap();
        let mut r = rng(22);
        for _ in 0..20_000 {
            let x = d.sample(&mut r);
            assert!((100.0..=2_000.0).contains(&x), "sample {x}");
        }
    }

    #[test]
    fn triangular_moments_match() {
        check_moments(&Dist::triangular(0.0, 2.0, 10.0).unwrap(), 8, 0.05, 0.05);
    }

    #[test]
    fn mixture_moments_match_law_of_total_variance() {
        let d = Dist::mixture([
            (0.7, Dist::normal(10.0, 1.0).unwrap()),
            (0.3, Dist::normal(20.0, 3.0).unwrap()),
        ])
        .unwrap();
        // Mean = 0.7·10 + 0.3·20 = 13.
        assert!((d.mean().unwrap() - 13.0).abs() < 1e-12);
        // Second moment = 0.7(1+100) + 0.3(9+400) = 70.7 + 122.7 = 193.4.
        assert!((d.variance().unwrap() - (193.4 - 169.0)).abs() < 1e-9);
        check_moments(&d, 9, 0.1, 0.1);
    }

    #[test]
    fn mixture_weights_are_normalised() {
        let d = Dist::mixture([
            (2.0, Dist::normal(0.0, 1.0).unwrap()),
            (2.0, Dist::normal(10.0, 1.0).unwrap()),
        ])
        .unwrap();
        assert!((d.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_rejects_bad_weights() {
        assert!(Dist::mixture([]).is_err());
        assert!(Dist::mixture([(-1.0, Dist::normal(0.0, 1.0).unwrap())]).is_err());
        assert!(Dist::mixture([(0.0, Dist::normal(0.0, 1.0).unwrap())]).is_err());
    }

    #[test]
    fn constructors_validate_parameters() {
        assert!(Dist::uniform(1.0, 1.0).is_err());
        assert!(Dist::normal(0.0, 0.0).is_err());
        assert!(Dist::normal(f64::NAN, 1.0).is_err());
        assert!(Dist::log_normal(0.0, -1.0).is_err());
        assert!(Dist::log_normal_from_moments(-5.0, 1.0).is_err());
        assert!(Dist::gumbel(0.0, 0.0).is_err());
        assert!(Dist::exponential(-2.0).is_err());
        assert!(Dist::weibull(0.0, 1.0).is_err());
        assert!(Dist::weibull3(f64::NAN, 1.0, 1.0).is_err());
        assert!(Dist::weibull3(0.0, 0.0, 1.0).is_err());
        assert!(Dist::weibull3(0.0, 1.0, -1.0).is_err());
        assert!(Dist::triangular(0.0, 5.0, 4.0).is_err());
        assert!(Dist::triangular(0.0, -1.0, 4.0).is_err());
    }

    #[test]
    fn truncation_never_exceeds_upper() {
        let d = Dist::normal(100.0, 15.0)
            .unwrap()
            .truncated_above(110.0)
            .unwrap();
        let mut r = rng(10);
        for _ in 0..20_000 {
            assert!(d.sample(&mut r) <= 110.0);
        }
    }

    #[test]
    fn truncation_rejects_degenerate_cut() {
        // Cutting 10σ below the mean leaves essentially no mass.
        let d = Dist::normal(100.0, 1.0).unwrap();
        assert!(d.truncated_above(90.0).is_err());
    }

    #[test]
    fn truncated_survival_is_renormalised() {
        let inner = Dist::uniform(0.0, 10.0).unwrap();
        let d = inner.truncated_above(5.0).unwrap();
        // Conditioned on X ≤ 5, X is uniform on [0, 5): P[X > 2.5] = 0.5.
        assert!((d.survival(2.5) - 0.5).abs() < 1e-12);
        assert_eq!(d.survival(5.0), 0.0);
        assert_eq!(d.survival(7.0), 0.0);
        assert!((d.survival(-1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn survival_matches_empirical_rate_for_normal() {
        let d = Dist::normal(0.0, 1.0).unwrap();
        let mut r = rng(11);
        let samples = d.sample_vec(&mut r, 200_000);
        for z in [0.0, 1.0, 2.0] {
            let empirical =
                samples.iter().filter(|&&x| x > z).count() as f64 / samples.len() as f64;
            assert!(
                (empirical - d.survival(z)).abs() < 0.01,
                "z={z}: empirical {empirical} vs analytic {}",
                d.survival(z)
            );
        }
    }

    #[test]
    fn normal_survival_reference_values() {
        // Φ̄(0) = 0.5, Φ̄(1) ≈ 0.158655, Φ̄(2) ≈ 0.022750, Φ̄(3) ≈ 0.001350.
        assert!((normal_survival(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_survival(1.0) - 0.158_655).abs() < 1e-5);
        assert!((normal_survival(2.0) - 0.022_750).abs() < 1e-5);
        assert!((normal_survival(3.0) - 0.001_350).abs() < 1e-5);
        assert!((normal_survival(-1.0) - 0.841_345).abs() < 1e-5);
    }

    #[test]
    fn gamma_reference_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf_across_families() {
        let dists = [
            Dist::normal(100.0, 15.0).unwrap(),
            Dist::gumbel_from_moments(50.0, 5.0).unwrap(),
            Dist::log_normal_from_moments(10.0, 3.0).unwrap(),
            Dist::exponential(0.2).unwrap(),
            Dist::uniform(-3.0, 7.0).unwrap(),
            Dist::mixture([
                (0.5, Dist::normal(0.0, 1.0).unwrap()),
                (0.5, Dist::normal(10.0, 2.0).unwrap()),
            ])
            .unwrap(),
            Dist::normal(100.0, 10.0)
                .unwrap()
                .truncated_above(110.0)
                .unwrap(),
        ];
        for d in &dists {
            for p in [0.01, 0.25, 0.5, 0.9, 0.999] {
                let x = d.quantile(p).unwrap();
                assert!(
                    (d.cdf(x) - p).abs() < 1e-6,
                    "{d:?} at p={p}: cdf(q)={}",
                    d.cdf(x)
                );
            }
        }
    }

    #[test]
    fn quantile_known_values() {
        let u = Dist::uniform(0.0, 10.0).unwrap();
        assert!((u.quantile(0.3).unwrap() - 3.0).abs() < 1e-6);
        let n = Dist::normal(0.0, 1.0).unwrap();
        // Φ⁻¹(0.975) ≈ 1.959964 (within the erf approximation's error).
        assert!((n.quantile(0.975).unwrap() - 1.95996).abs() < 1e-3);
    }

    #[test]
    fn quantile_rejects_bad_probability() {
        let d = Dist::normal(0.0, 1.0).unwrap();
        assert!(d.quantile(0.0).is_err());
        assert!(d.quantile(1.0).is_err());
        assert!(d.quantile(-0.5).is_err());
        assert!(d.quantile(f64::NAN).is_err());
    }

    #[test]
    fn sampling_is_deterministic_for_equal_seeds() {
        let d = Dist::gumbel_from_moments(100.0, 10.0).unwrap();
        let a = d.sample_vec(&mut rng(42), 100);
        let b = d.sample_vec(&mut rng(42), 100);
        assert_eq!(a, b);
        let c = d.sample_vec(&mut rng(43), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn serde_round_trip() {
        let d = Dist::mixture([
            (0.5, Dist::normal(1.0, 2.0).unwrap()),
            (
                0.5,
                Dist::gumbel(3.0, 4.0)
                    .unwrap()
                    .truncated_above(50.0)
                    .unwrap(),
            ),
        ])
        .unwrap();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dist = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_dist() -> impl Strategy<Value = Dist> {
            prop_oneof![
                (-100.0..100.0f64, 0.1..50.0f64).prop_map(|(m, s)| Dist::normal(m, s).unwrap()),
                (-100.0..100.0f64, 0.1..50.0f64)
                    .prop_map(|(m, s)| Dist::gumbel_from_moments(m, s).unwrap()),
                (0.1..100.0f64, 0.1..10.0f64)
                    .prop_map(|(m, s)| Dist::log_normal_from_moments(m, s).unwrap()),
                (0.01..10.0f64).prop_map(|r| Dist::exponential(r).unwrap()),
                (0.5..5.0f64, 0.1..50.0f64).prop_map(|(k, l)| Dist::weibull(k, l).unwrap()),
                (0.0..100.0f64, 0.5..5.0f64, 0.1..50.0f64)
                    .prop_map(|(loc, k, l)| Dist::weibull3(loc, k, l).unwrap()),
                (-100.0..0.0f64, 1.0..100.0f64)
                    .prop_map(|(lo, w)| Dist::uniform(lo, lo + w).unwrap()),
            ]
        }

        proptest! {
            #[test]
            fn survival_is_monotone_nonincreasing(d in arb_dist(), a in -200.0..200.0f64, b in 0.0..200.0f64) {
                prop_assert!(d.survival(a + b) <= d.survival(a) + 1e-12);
            }

            #[test]
            fn survival_is_in_unit_interval(d in arb_dist(), x in -500.0..500.0f64) {
                let s = d.survival(x);
                prop_assert!((0.0..=1.0).contains(&s), "survival {} out of range", s);
            }

            #[test]
            fn samples_are_finite(d in arb_dist(), seed in 0u64..1_000) {
                let mut r = StdRng::seed_from_u64(seed);
                for _ in 0..32 {
                    prop_assert!(d.sample(&mut r).is_finite());
                }
            }

            #[test]
            fn chebyshev_bound_holds_for_survival(d in arb_dist(), n in 0.5..10.0f64) {
                // The analytic survival at µ + nσ must respect Cantelli.
                if let (Some(m), Some(sd)) = (d.mean(), d.std_dev()) {
                    let s = d.survival(m + n * sd);
                    let bound = crate::chebyshev::one_sided_bound(n);
                    prop_assert!(s <= bound + 1e-9, "survival {} exceeds bound {}", s, bound);
                }
            }

            #[test]
            fn cdf_plus_survival_is_one(d in arb_dist(), x in -500.0..500.0f64) {
                prop_assert!((d.cdf(x) + d.survival(x) - 1.0).abs() < 1e-12);
            }
        }
    }
}
