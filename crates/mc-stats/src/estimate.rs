//! Empirical exceedance-rate estimation.
//!
//! The paper's Tables I and II report the *measured* percentage of job
//! instances whose execution time exceeds a candidate optimistic WCET. This
//! module provides that estimator together with a Wilson-score confidence
//! interval (binomial proportions at 20 000 samples are tight, but the
//! interval quantifies it) and a seedable bootstrap for derived statistics.

use crate::{ensure_finite, Result, StatsError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An estimated exceedance (overrun) rate with its sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExceedanceEstimate {
    /// Number of samples strictly above the level.
    pub exceeding: u64,
    /// Total number of samples.
    pub total: u64,
}

impl ExceedanceEstimate {
    /// Point estimate of the exceedance probability.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.exceeding as f64 / self.total as f64
        }
    }

    /// Point estimate as a percentage, matching the paper's table units.
    pub fn percent(&self) -> f64 {
        self.rate() * 100.0
    }

    /// Wilson score interval at confidence level `z` standard normal
    /// quantiles (e.g. `z = 1.96` for 95 %).
    ///
    /// Returns `(lower, upper)` bounds on the true proportion.
    ///
    /// # Errors
    ///
    /// Returns an error when `z` is not strictly positive or the estimate
    /// has no samples.
    pub fn wilson_interval(&self, z: f64) -> Result<(f64, f64)> {
        ensure_finite("z", z)?;
        if z <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "z",
                expected: "strictly positive",
                value: z,
            });
        }
        if self.total == 0 {
            return Err(StatsError::EmptySamples);
        }
        let n = self.total as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt());
        Ok(((centre - half).max(0.0), (centre + half).min(1.0)))
    }
}

/// Counts how many `samples` strictly exceed `level`.
///
/// This is the measurement behind the paper's "% of samples that overruns"
/// columns: a job *overruns* its optimistic WCET when its execution time is
/// greater than the budget.
///
/// # Errors
///
/// Returns an error when `level` is NaN (non-finite samples are the
/// caller's responsibility to pre-validate; comparisons with NaN samples
/// would silently undercount, so they are rejected too).
///
/// # Example
///
/// ```
/// use mc_stats::estimate::exceedance_rate;
///
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let est = exceedance_rate(&[1.0, 2.0, 3.0, 4.0], 2.5)?;
/// assert_eq!(est.exceeding, 2);
/// assert_eq!(est.percent(), 50.0);
/// # Ok(())
/// # }
/// ```
pub fn exceedance_rate(samples: &[f64], level: f64) -> Result<ExceedanceEstimate> {
    ensure_finite("level", level)?;
    let mut exceeding = 0u64;
    for &s in samples {
        if s.is_nan() {
            return Err(StatsError::NonFinite {
                what: "sample",
                value: s,
            });
        }
        if s > level {
            exceeding += 1;
        }
    }
    Ok(ExceedanceEstimate {
        exceeding,
        total: samples.len() as u64,
    })
}

/// Counts exceedances at several levels in one pass, returning estimates in
/// the same order as `levels`. Useful for the multi-column Tables I/II.
///
/// # Errors
///
/// Same conditions as [`exceedance_rate`].
pub fn exceedance_rates(samples: &[f64], levels: &[f64]) -> Result<Vec<ExceedanceEstimate>> {
    for &l in levels {
        ensure_finite("level", l)?;
    }
    let mut counts = vec![0u64; levels.len()];
    for &s in samples {
        if s.is_nan() {
            return Err(StatsError::NonFinite {
                what: "sample",
                value: s,
            });
        }
        for (c, &l) in counts.iter_mut().zip(levels) {
            if s > l {
                *c += 1;
            }
        }
    }
    Ok(counts
        .into_iter()
        .map(|exceeding| ExceedanceEstimate {
            exceeding,
            total: samples.len() as u64,
        })
        .collect())
}

/// Bootstrap resampling: applies `statistic` to `resamples` resampled (with
/// replacement) copies of `samples` and returns the statistic values.
///
/// # Errors
///
/// Returns an error when `samples` is empty or `resamples` is zero.
///
/// # Example
///
/// ```
/// use mc_stats::estimate::bootstrap;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let means = bootstrap(&[1.0, 2.0, 3.0], 100, &mut rng, |xs| {
///     xs.iter().sum::<f64>() / xs.len() as f64
/// })?;
/// assert_eq!(means.len(), 100);
/// # Ok(())
/// # }
/// ```
pub fn bootstrap<R, F>(
    samples: &[f64],
    resamples: usize,
    rng: &mut R,
    statistic: F,
) -> Result<Vec<f64>>
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    if samples.is_empty() {
        return Err(StatsError::EmptySamples);
    }
    if resamples == 0 {
        return Err(StatsError::InvalidParameter {
            what: "resamples",
            expected: "strictly positive",
            value: 0.0,
        });
    }
    let mut scratch = vec![0.0; samples.len()];
    let mut out = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in &mut scratch {
            *slot = samples[rng.random_range(0..samples.len())];
        }
        out.push(statistic(&scratch));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exceedance_is_strict() {
        let est = exceedance_rate(&[1.0, 2.0, 2.0, 3.0], 2.0).unwrap();
        assert_eq!(est.exceeding, 1); // only 3.0 is strictly above
        assert_eq!(est.total, 4);
        assert!((est.rate() - 0.25).abs() < 1e-12);
        assert!((est.percent() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn empty_samples_give_zero_rate() {
        let est = exceedance_rate(&[], 1.0).unwrap();
        assert_eq!(est.rate(), 0.0);
        assert_eq!(est.total, 0);
    }

    #[test]
    fn nan_inputs_are_rejected() {
        assert!(exceedance_rate(&[f64::NAN], 1.0).is_err());
        assert!(exceedance_rate(&[1.0], f64::NAN).is_err());
        assert!(exceedance_rates(&[1.0], &[f64::NAN]).is_err());
    }

    #[test]
    fn multi_level_matches_individual_calls() {
        let samples = [1.0, 5.0, 2.0, 8.0, 3.0];
        let levels = [0.0, 2.5, 6.0, 10.0];
        let batch = exceedance_rates(&samples, &levels).unwrap();
        for (est, &l) in batch.iter().zip(&levels) {
            let single = exceedance_rate(&samples, l).unwrap();
            assert_eq!(est, &single);
        }
    }

    #[test]
    fn exceedance_at_increasing_levels_is_non_increasing() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let batch = exceedance_rates(&samples, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        for pair in batch.windows(2) {
            assert!(pair[1].exceeding <= pair[0].exceeding);
        }
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let est = ExceedanceEstimate {
            exceeding: 158,
            total: 1000,
        };
        let (lo, hi) = est.wilson_interval(1.96).unwrap();
        assert!(lo < est.rate() && est.rate() < hi);
        assert!(lo > 0.13 && hi < 0.19);
    }

    #[test]
    fn wilson_interval_is_clamped_to_unit_interval() {
        let zero = ExceedanceEstimate {
            exceeding: 0,
            total: 10,
        };
        let (lo, _) = zero.wilson_interval(1.96).unwrap();
        assert_eq!(lo, 0.0);
        let all = ExceedanceEstimate {
            exceeding: 10,
            total: 10,
        };
        let (_, hi) = all.wilson_interval(1.96).unwrap();
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn wilson_interval_rejects_bad_input() {
        let est = ExceedanceEstimate {
            exceeding: 1,
            total: 10,
        };
        assert!(est.wilson_interval(0.0).is_err());
        assert!(est.wilson_interval(-1.0).is_err());
        let empty = ExceedanceEstimate {
            exceeding: 0,
            total: 0,
        };
        assert!(empty.wilson_interval(1.96).is_err());
    }

    #[test]
    fn bootstrap_mean_concentrates_near_sample_mean() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let means = bootstrap(&samples, 500, &mut rng, |xs| {
            xs.iter().sum::<f64>() / xs.len() as f64
        })
        .unwrap();
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!((grand - 49.5).abs() < 2.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let stat = |xs: &[f64]| xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let a = bootstrap(&samples, 50, &mut StdRng::seed_from_u64(9), stat).unwrap();
        let b = bootstrap(&samples, 50, &mut StdRng::seed_from_u64(9), stat).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bootstrap_rejects_degenerate_requests() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bootstrap(&[], 10, &mut rng, |_| 0.0).is_err());
        assert!(bootstrap(&[1.0], 0, &mut rng, |_| 0.0).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn rate_is_in_unit_interval(
                samples in proptest::collection::vec(-100.0..100.0f64, 0..200),
                level in -150.0..150.0f64,
            ) {
                let est = exceedance_rate(&samples, level).unwrap();
                prop_assert!((0.0..=1.0).contains(&est.rate()));
            }

            #[test]
            fn exceeding_plus_not_exceeding_is_total(
                samples in proptest::collection::vec(-100.0..100.0f64, 0..200),
                level in -150.0..150.0f64,
            ) {
                let above = exceedance_rate(&samples, level).unwrap();
                let at_most = samples.iter().filter(|&&s| s <= level).count() as u64;
                prop_assert_eq!(above.exceeding + at_most, samples.len() as u64);
            }

            #[test]
            fn wilson_interval_is_ordered(
                exceeding in 0u64..1000,
                extra in 0u64..1000,
                z in 0.5..4.0f64,
            ) {
                let est = ExceedanceEstimate { exceeding, total: exceeding + extra + 1 };
                let (lo, hi) = est.wilson_interval(z).unwrap();
                prop_assert!(lo <= hi);
                prop_assert!((0.0..=1.0).contains(&lo));
                prop_assert!((0.0..=1.0).contains(&hi));
                prop_assert!(lo <= est.rate() + 1e-12);
                prop_assert!(est.rate() <= hi + 1e-12);
            }
        }
    }
}
