//! Batch and online summary statistics.
//!
//! The paper computes, per task, the average-case execution time (ACET,
//! Eq. 3) and the *population* standard deviation (Eq. 4, dividing by `m`
//! rather than `m − 1`). [`Summary`] reproduces exactly those definitions and
//! additionally exposes the sample standard deviation for comparison.
//! [`OnlineSummary`] is a numerically-stable Welford accumulator for
//! streaming traces so that 20 000-sample runs never need to be buffered.

use crate::{ensure_finite, Result, StatsError};
use serde::{Deserialize, Serialize};

/// Immutable summary statistics over a batch of samples.
///
/// # Example
///
/// ```
/// use mc_stats::summary::Summary;
///
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])?;
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), 2.0); // population σ, the paper's Eq. 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    variance_population: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Computes summary statistics for `samples`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySamples`] when `samples` is empty and
    /// [`StatsError::NonFinite`] when any sample is NaN or infinite.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        let mut online = OnlineSummary::new();
        for &s in samples {
            online.push(s)?;
        }
        online.finish()
    }

    /// Computes summary statistics from any iterator of samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Summary::from_samples`].
    pub fn try_from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Result<Self> {
        let mut online = OnlineSummary::new();
        for s in iter {
            online.push(s)?;
        }
        online.finish()
    }

    /// Number of samples summarised.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean — the paper's ACET (Eq. 3).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by `m`).
    pub fn variance(&self) -> f64 {
        self.variance_population
    }

    /// Population standard deviation — the paper's σ (Eq. 4).
    pub fn std_dev(&self) -> f64 {
        self.variance_population.sqrt()
    }

    /// Unbiased sample variance (divide by `m − 1`); equals the population
    /// variance when only one sample was observed.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            return self.variance_population;
        }
        self.variance_population * self.count as f64 / (self.count - 1) as f64
    }

    /// Sample standard deviation (square root of [`Summary::sample_variance`]).
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observed sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The execution-time level `mean + n·σ` used throughout the paper
    /// (Eq. 6) as the optimistic WCET for a Chebyshev factor `n`.
    ///
    /// `n` may be fractional; the paper restricts itself to non-negative
    /// values but negative levels are representable for analysis purposes.
    pub fn level(&self, n: f64) -> f64 {
        self.mean + n * self.std_dev()
    }
}

/// Numerically-stable streaming accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use mc_stats::summary::OnlineSummary;
///
/// # fn main() -> Result<(), mc_stats::StatsError> {
/// let mut acc = OnlineSummary::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x)?;
/// }
/// let s = acc.finish()?;
/// assert_eq!(s.mean(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Non-finite samples discarded by [`Extend`]; deserialises to 0 for
    /// accumulators persisted before the field existed.
    #[serde(default)]
    skipped: u64,
}

impl OnlineSummary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            skipped: 0,
        }
    }

    /// Number of samples pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite samples the [`Extend`] impl discarded.
    ///
    /// [`Summary::from_samples`] *errors* on the first non-finite sample,
    /// so an accumulator with `skipped > 0` has silently diverged from
    /// the batch path; callers that tolerate the divergence should check
    /// this before [`finish`](Self::finish) (which debug-asserts it is
    /// zero).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Adds one sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NonFinite`] when `sample` is NaN or infinite;
    /// the accumulator is left unchanged in that case.
    pub fn push(&mut self, sample: f64) -> Result<()> {
        ensure_finite("sample", sample)?;
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = sample - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
        Ok(())
    }

    /// Merges another accumulator into this one (parallel Welford), so that
    /// traces can be summarised in chunks. Skipped-sample counts add up
    /// across every path, including merges with empty chunks.
    pub fn merge(&mut self, other: &OnlineSummary) {
        self.skipped += other.skipped;
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            let skipped = self.skipped;
            *self = *other;
            self.skipped = skipped;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Current running mean.
    ///
    /// # Panics
    ///
    /// Never panics; returns `0.0` before any sample is pushed.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Finalises the accumulator into an immutable [`Summary`].
    ///
    /// Debug builds assert that no samples were silently [`skipped`]
    /// (`skipped()` = 0): a finished summary is supposed to agree with
    /// [`Summary::from_samples`] on the same stream, and from_samples
    /// would have errored instead of skipping. Callers that intend to
    /// drop non-finite samples should inspect [`skipped`] and filter
    /// explicitly.
    ///
    /// [`skipped`]: Self::skipped
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySamples`] when no sample was pushed.
    pub fn finish(&self) -> Result<Summary> {
        debug_assert_eq!(
            self.skipped, 0,
            "OnlineSummary::finish after Extend silently discarded {} non-finite sample(s); \
             this diverges from Summary::from_samples, which errors",
            self.skipped
        );
        if self.count == 0 {
            return Err(StatsError::EmptySamples);
        }
        Ok(Summary {
            count: self.count,
            mean: self.mean,
            variance_population: self.m2 / self.count as f64,
            min: self.min,
            max: self.max,
        })
    }
}

impl Extend<f64> for OnlineSummary {
    /// Pushes each sample, skipping non-finite values. Every skip is
    /// tallied in [`OnlineSummary::skipped`] — the count diverges the
    /// accumulator from [`Summary::from_samples`] (which errors), and
    /// [`OnlineSummary::finish`] debug-asserts it is zero.
    ///
    /// Use [`OnlineSummary::push`] directly when non-finite samples must be
    /// treated as errors.
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            if self.push(s).is_err() {
                self.skipped += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_mean_and_population_sigma_match_paper_definitions() {
        // Hand-computed: mean = 5, population variance = 4 (σ = 2).
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_bessel_correction() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        // population variance = 2/3, sample variance = 1.
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = Summary::from_samples(&[42.0]).unwrap();
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn empty_samples_is_an_error() {
        assert_eq!(
            Summary::from_samples(&[]).unwrap_err(),
            StatsError::EmptySamples
        );
    }

    #[test]
    fn non_finite_sample_is_rejected_and_accumulator_unchanged() {
        let mut acc = OnlineSummary::new();
        acc.push(1.0).unwrap();
        let before = acc;
        assert!(acc.push(f64::NAN).is_err());
        assert_eq!(acc, before);
        assert!(acc.push(f64::INFINITY).is_err());
        assert_eq!(acc, before);
    }

    #[test]
    fn level_is_mean_plus_n_sigma() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.level(0.0) - 5.0).abs() < 1e-12);
        assert!((s.level(3.0) - 11.0).abs() < 1e-12);
        assert!((s.level(-1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_batch_on_adversarial_offsets() {
        // Large common offset exposes catastrophic cancellation in naive
        // two-pass/sum-of-squares implementations.
        let offset = 1.0e9;
        let base = [0.1, 0.2, 0.3, 0.4, 0.5];
        let shifted: Vec<f64> = base.iter().map(|x| x + offset).collect();
        let s = Summary::from_samples(&shifted).unwrap();
        let expect = Summary::from_samples(&base).unwrap();
        assert!((s.variance() - expect.variance()).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let a_samples = [1.0, 2.0, 3.0, 10.0];
        let b_samples = [4.0, 5.0, -1.0];
        let mut a = OnlineSummary::new();
        for &x in &a_samples {
            a.push(x).unwrap();
        }
        let mut b = OnlineSummary::new();
        for &x in &b_samples {
            b.push(x).unwrap();
        }
        a.merge(&b);
        let merged = a.finish().unwrap();

        let mut all = OnlineSummary::new();
        for &x in a_samples.iter().chain(&b_samples) {
            all.push(x).unwrap();
        }
        let sequential = all.finish().unwrap();
        assert_eq!(merged.count(), sequential.count());
        assert!((merged.mean() - sequential.mean()).abs() < 1e-12);
        assert!((merged.variance() - sequential.variance()).abs() < 1e-12);
        assert_eq!(merged.min(), sequential.min());
        assert_eq!(merged.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = OnlineSummary::new();
        a.push(5.0).unwrap();
        let a_copy = a;
        let empty = OnlineSummary::new();
        a.merge(&empty);
        assert_eq!(a, a_copy);

        let mut e = OnlineSummary::new();
        e.merge(&a_copy);
        assert_eq!(e, a_copy);
    }

    #[test]
    fn extend_counts_every_skipped_non_finite_sample() {
        let mut acc = OnlineSummary::new();
        acc.extend([1.0, f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(acc.count(), 2, "finite samples accumulate");
        assert_eq!(acc.skipped(), 3, "every discard is tallied");
        assert!((acc.mean() - 2.0).abs() < 1e-12);
        // The divergence from the batch path: from_samples refuses the
        // same stream outright instead of silently dropping values.
        assert!(matches!(
            Summary::from_samples(&[1.0, f64::NAN, 3.0]).unwrap_err(),
            StatsError::NonFinite { what: "sample", value } if value.is_nan()
        ));
    }

    #[test]
    fn merge_accumulates_skip_counts_through_every_path() {
        let mut tainted = OnlineSummary::new();
        tainted.extend([f64::NAN]); // count 0, skipped 1
        let mut empty = OnlineSummary::new();
        empty.merge(&tainted); // self empty: adopt other
        assert_eq!(empty.skipped(), 1);
        let mut full = OnlineSummary::new();
        full.extend([1.0, 2.0]);
        full.merge(&tainted); // other has count 0: early return
        assert_eq!(full.skipped(), 1);
        full.merge(&empty); // both non-trivial paths combined
        assert_eq!(full.skipped(), 2);
        assert_eq!(full.count(), 2);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "silently discarded"))]
    fn finish_debug_asserts_no_silent_skips() {
        let mut acc = OnlineSummary::new();
        acc.extend([1.0, f64::NAN, 3.0]);
        // Release builds tolerate the divergence (debug_assert compiles
        // out), so the should_panic expectation is debug-only too.
        let _ = acc.finish();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_is_within_min_max(samples in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200)) {
                let s = Summary::from_samples(&samples).unwrap();
                prop_assert!(s.mean() >= s.min() - 1e-9);
                prop_assert!(s.mean() <= s.max() + 1e-9);
            }

            #[test]
            fn variance_is_non_negative(samples in proptest::collection::vec(-1.0e6..1.0e6f64, 1..200)) {
                let s = Summary::from_samples(&samples).unwrap();
                prop_assert!(s.variance() >= -1e-9);
            }

            #[test]
            fn merge_is_equivalent_to_concatenation(
                a in proptest::collection::vec(-1.0e3..1.0e3f64, 1..50),
                b in proptest::collection::vec(-1.0e3..1.0e3f64, 1..50),
            ) {
                let mut acc_a = OnlineSummary::new();
                acc_a.extend(a.iter().copied());
                let mut acc_b = OnlineSummary::new();
                acc_b.extend(b.iter().copied());
                acc_a.merge(&acc_b);
                let merged = acc_a.finish().unwrap();

                let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
                let direct = Summary::from_samples(&concat).unwrap();
                prop_assert_eq!(merged.count(), direct.count());
                prop_assert!((merged.mean() - direct.mean()).abs() < 1e-6);
                prop_assert!((merged.variance() - direct.variance()).abs() < 1e-4);
            }

            #[test]
            fn merge_over_arbitrary_chunkings_matches_from_samples(
                // Chunks of 0..=10 samples each: empty and single-sample
                // chunks are deliberately in range, so the merge identity
                // and adopt-other fast paths are both exercised.
                chunks in proptest::collection::vec(
                    proptest::collection::vec(-1.0e3..1.0e3f64, 0..11),
                    1..12,
                ),
            ) {
                let concat: Vec<f64> = chunks.iter().flatten().copied().collect();
                prop_assume!(!concat.is_empty());
                let mut acc = OnlineSummary::new();
                for chunk in &chunks {
                    let mut part = OnlineSummary::new();
                    part.extend(chunk.iter().copied());
                    acc.merge(&part);
                }
                let merged = acc.finish().unwrap();
                let direct = Summary::from_samples(&concat).unwrap();
                // 1e-12 relative: both sides are Welford-stable, so the
                // chunking must not cost more than rounding noise.
                let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0);
                prop_assert_eq!(merged.count(), direct.count());
                prop_assert!(close(merged.mean(), direct.mean()),
                    "mean {} vs {}", merged.mean(), direct.mean());
                prop_assert!(close(merged.variance(), direct.variance()),
                    "variance {} vs {}", merged.variance(), direct.variance());
                prop_assert_eq!(merged.min(), direct.min());
                prop_assert_eq!(merged.max(), direct.max());
            }

            #[test]
            fn shift_invariance_of_variance(
                samples in proptest::collection::vec(-100.0..100.0f64, 2..100),
                shift in -1.0e4..1.0e4f64,
            ) {
                let s1 = Summary::from_samples(&samples).unwrap();
                let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
                let s2 = Summary::from_samples(&shifted).unwrap();
                prop_assert!((s1.variance() - s2.variance()).abs() < 1e-5);
                prop_assert!((s2.mean() - (s1.mean() + shift)).abs() < 1e-7);
            }
        }
    }
}
