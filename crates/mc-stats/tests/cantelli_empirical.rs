//! Differential oracle: Cantelli's inequality versus the empirical
//! measure, checked *exactly*.
//!
//! For a finite sample treated as its own population (mean `μ`, population
//! standard deviation `σ` over the same points), Cantelli's one-sided
//! inequality `P(X ≥ μ + n·σ) ≤ 1/(1+n²)` is a theorem of the empirical
//! distribution — it must hold for every sample, every family, every `n`,
//! with no statistical slack at all. `mc-fault`'s generators supply
//! adversarial sample shapes (normal, log-normal, uniform, bimodal) and
//! the harness turns any violation into a reproducing seed.

use mc_fault::gen::exec_samples;
use mc_fault::{assert_prop, FaultRng, PropConfig};
use mc_stats::chebyshev::one_sided_bound;
use mc_stats::summary::Summary;

/// Numerical slack only: the bound itself is exact; the tolerance covers
/// floating-point rounding in the mean/σ computation.
const SLACK: f64 = 1e-9;

#[test]
fn empirical_tail_frequency_never_exceeds_the_cantelli_bound() {
    assert_prop(
        &PropConfig::named("cantelli-vs-empirical").cases(200),
        |rng| rng.next_u64(),
        |&scenario| {
            let mut rng = FaultRng::new(scenario);
            let count = rng.range_u64(10, 400) as usize;
            let (family, xs) = exec_samples(&mut rng, count);
            let s = Summary::from_samples(&xs).map_err(|e| e.to_string())?;
            let (mu, sigma) = (s.mean(), s.std_dev());
            if sigma <= 0.0 {
                // A constant sample has an empty strict tail; nothing to
                // bound.
                return Ok(());
            }
            // Sweep the factor range the paper uses (its Table II covers
            // n ∈ [1, 5]) plus a sub-1 stress point.
            for n in [0.5, 1.0, 1.5, 2.0, 3.0, 5.0] {
                let threshold = mu + n * sigma;
                let tail = xs.iter().filter(|&&x| x >= threshold).count() as f64 / xs.len() as f64;
                let bound = one_sided_bound(n);
                if tail > bound + SLACK {
                    return Err(format!(
                        "{family:?} sample of {count}: empirical tail \
                         P(X ≥ μ+{n}σ) = {tail:.6} exceeds Cantelli bound \
                         {bound:.6}"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The `Summary::level` accessor (the paper's Eq. 6 budget `μ + n·σ`)
/// must agree with the threshold the Cantelli oracle computes by hand —
/// this pins the two code paths to the same definition of σ
/// (population, not sample).
#[test]
fn summary_level_matches_the_cantelli_threshold() {
    assert_prop(
        &PropConfig::named("summary-level-definition").cases(100),
        |rng| rng.next_u64(),
        |&scenario| {
            let mut rng = FaultRng::new(scenario);
            let (_, xs) = exec_samples(&mut rng, 64);
            let s = Summary::from_samples(&xs).map_err(|e| e.to_string())?;
            for n in [0.0, 1.0, 2.5] {
                let expected = s.mean() + n * s.std_dev();
                let got = s.level(n);
                if (got - expected).abs() > 1e-6 * expected.abs().max(1.0) {
                    return Err(format!("level({n}) = {got} but mean + n·σ = {expected}"));
                }
            }
            Ok(())
        },
    );
}
