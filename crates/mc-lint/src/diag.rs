//! The unified diagnostics framework: stable codes, severities, source
//! labels, and the human-readable / JSON renderers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory only; no action required.
    Info,
    /// Suspicious but analysable; results may be degraded.
    Warning,
    /// Structurally unsound; downstream analysis would be wrong or panic.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// Stable diagnostic codes. `C0xx` cover CFG structure, `T0xx` task-set
/// invariants, `S0xx` scheme/GA/generator configuration, `P0xx` the
/// scheduling-policy rosters campaigns race.
///
/// Codes are append-only: a code's meaning never changes once released,
/// and retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Code {
    /// CFG has no entry block.
    C001,
    /// CFG has no exit block.
    C002,
    /// Live block unreachable from the entry.
    C003,
    /// Live block cannot reach the exit.
    C004,
    /// Loop header (target of a back edge) has no loop bound.
    C005,
    /// Irreducible control flow: a cycle with no dominating header.
    C006,
    /// Edge incident to a collapsed (dead) block.
    C007,
    /// Loop bound set on a block that heads no loop.
    C008,
    /// Loop bound of zero: the loop body never executes.
    C009,
    /// `C_LO` exceeds `C_HI`.
    T001,
    /// Profile mean (ACET) exceeds the optimistic budget `C_LO`.
    T002,
    /// Execution profile parameters out of range.
    T003,
    /// Timing parameters out of order (period/deadline/budgets).
    T004,
    /// Empty Chebyshev range: pessimistic WCET below the ACET.
    T005,
    /// High-criticality task without an execution profile.
    T006,
    /// Duplicate task id.
    T007,
    /// Task set is empty or has no high-criticality tasks.
    T008,
    /// Total LO-mode utilization exceeds 1.
    T009,
    /// EDF-VD preconditions fail (Eq. 8 / `x ∉ (0, 1]`).
    T010,
    /// Low-criticality task carries an (unused) execution profile.
    T011,
    /// Profile's pessimistic WCET disagrees with `C_HI`.
    T012,
    /// GA population smaller than 2.
    S001,
    /// GA generation count is zero.
    S002,
    /// GA probability outside `[0, 1]`.
    S003,
    /// GA tournament size outside `[1, population]`.
    S004,
    /// GA elitism at least the population size.
    S005,
    /// GA search budget is very large.
    S006,
    /// Chebyshev factor cap out of range.
    S007,
    /// Chebyshev factor cap below the paper's operating region.
    S008,
    /// Task-generator configuration invalid.
    S009,
    /// Campaign has no axis points.
    E001,
    /// Campaign replica count is zero.
    E002,
    /// Shard index not below the shard count.
    E003,
    /// Duplicate campaign point labels.
    E004,
    /// Output path collision (store and export would overwrite each other).
    E005,
    /// Campaign is very large.
    E006,
    /// Unordered hash collection (`HashMap`/`HashSet`) in library code.
    D001,
    /// Wall-clock read (`Instant::now`/`SystemTime`) outside a
    /// whitelisted timing module.
    D002,
    /// Unseeded or environment-derived randomness.
    D003,
    /// Float reduction over an unordered iterator.
    D004,
    /// `unsafe` without a `// SAFETY:` justification.
    U001,
    /// Float→int `as` cast without explicit rounding.
    U002,
    /// `.unwrap()` or undocumented `.expect(..)` in library code.
    U003,
    /// Documented `.expect("…")` panic site in library code (inventory).
    U004,
    /// Stale allowlist entry: it suppressed no findings.
    U005,
    /// Scheduling-policy parameter out of range (fraction/floor outside
    /// `[0, 1]` or non-finite).
    P001,
    /// Duplicate scheduling-policy names in one roster.
    P002,
    /// Policy roster is empty.
    P003,
    /// Automotive share-table entry invalid (negative, non-finite, or the
    /// shares no longer sum to the documented total).
    A001,
    /// Automotive period bins not strictly increasing or zero.
    A002,
    /// Automotive factor-matrix violation (BCET factors outside `(0, 1)`,
    /// WCET factors not above 1, or a min above its max).
    A003,
    /// Automotive ACET statistics out of order (`min ≤ avg ≤ max` broken).
    A004,
    /// Automotive generator configuration invalid.
    A005,
    /// Automotive calibration admits no Weibull-feasible factor pair for
    /// some bin (the discard loop could never terminate).
    A006,
}

impl Code {
    /// The severity this code always carries.
    #[must_use]
    pub fn severity(self) -> Severity {
        use Code::{
            A001, A002, A003, A004, A005, A006, C001, C002, C003, C004, C005, C006, C007, C008,
            C009, D001, D002, D003, D004, E001, E002, E003, E004, E005, E006, P001, P002, P003,
            S001, S002, S003, S004, S005, S006, S007, S008, S009, T001, T002, T003, T004, T005,
            T006, T007, T008, T009, T010, T011, T012, U001, U002, U003, U004, U005,
        };
        match self {
            C001 | C002 | C003 | C004 | C005 | C006 => Severity::Error,
            C007 | C008 => Severity::Warning,
            C009 => Severity::Info,
            T001 | T003 | T004 | T005 | T007 => Severity::Error,
            T002 | T006 | T008 | T009 | T010 | T012 => Severity::Warning,
            T011 => Severity::Info,
            S001 | S002 | S003 | S004 | S005 | S007 | S009 => Severity::Error,
            S006 => Severity::Warning,
            S008 => Severity::Info,
            E001 | E002 | E003 | E004 | E005 => Severity::Error,
            E006 => Severity::Warning,
            D001 | D002 | D003 => Severity::Error,
            D004 => Severity::Warning,
            U001 | U003 => Severity::Error,
            U002 | U005 => Severity::Warning,
            U004 => Severity::Info,
            P001 | P002 | P003 => Severity::Error,
            A001 | A002 | A003 | A004 | A005 | A006 => Severity::Error,
        }
    }

    /// The code's class letter (`C`, `T`, `S`, `E`, `D`, `U`, `P`, or
    /// `A`) —
    /// the granularity `--deny`/`--allow` accept besides full codes.
    #[must_use]
    pub fn class(self) -> char {
        self.to_string()
            .chars()
            .next()
            .expect("codes render as non-empty `X0nn` strings")
    }

    /// One-line description of what the code means (the DESIGN.md table's
    /// "meaning" column).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Code::C001 => "control-flow graph has no entry block",
            Code::C002 => "control-flow graph has no exit block",
            Code::C003 => "live block is unreachable from the entry",
            Code::C004 => "live block cannot reach the exit",
            Code::C005 => "loop header has no loop bound",
            Code::C006 => "irreducible control flow (cycle without a dominating header)",
            Code::C007 => "edge incident to a collapsed (dead) block",
            Code::C008 => "loop bound set on a block that heads no loop",
            Code::C009 => "loop bound of zero (body never executes)",
            Code::T001 => "optimistic budget C_LO exceeds pessimistic budget C_HI",
            Code::T002 => "profile mean (ACET) exceeds the optimistic budget C_LO",
            Code::T003 => "execution-profile parameters out of range",
            Code::T004 => "timing parameters out of order",
            Code::T005 => "empty Chebyshev range (WCET_pes below ACET)",
            Code::T006 => "high-criticality task lacks an execution profile",
            Code::T007 => "duplicate task id",
            Code::T008 => "task set empty or without high-criticality tasks",
            Code::T009 => "total LO-mode utilization exceeds 1",
            Code::T010 => "EDF-VD preconditions fail",
            Code::T011 => "low-criticality task carries an unused profile",
            Code::T012 => "profile WCET_pes disagrees with C_HI",
            Code::S001 => "GA population smaller than 2",
            Code::S002 => "GA generation count is zero",
            Code::S003 => "GA probability outside [0, 1]",
            Code::S004 => "GA tournament size outside [1, population]",
            Code::S005 => "GA elitism not smaller than the population",
            Code::S006 => "GA search budget is very large",
            Code::S007 => "Chebyshev factor cap out of range",
            Code::S008 => "Chebyshev factor cap below the paper's operating region",
            Code::S009 => "task-generator configuration invalid",
            Code::E001 => "campaign has no axis points",
            Code::E002 => "campaign replica count is zero",
            Code::E003 => "shard index is not below the shard count",
            Code::E004 => "duplicate campaign point labels",
            Code::E005 => "output path collision",
            Code::E006 => "campaign is very large",
            Code::D001 => "unordered hash collection in library code",
            Code::D002 => "wall-clock read outside a whitelisted timing module",
            Code::D003 => "unseeded or environment-derived randomness",
            Code::D004 => "float reduction over an unordered iterator",
            Code::U001 => "`unsafe` without a `// SAFETY:` justification",
            Code::U002 => "float-to-int `as` cast without explicit rounding",
            Code::U003 => "`.unwrap()` or undocumented `.expect(..)` in library code",
            Code::U004 => "documented `.expect(\"…\")` panic site in library code",
            Code::U005 => "stale allowlist entry (suppressed no findings)",
            Code::P001 => "scheduling-policy parameter out of range",
            Code::P002 => "duplicate scheduling-policy names in one roster",
            Code::P003 => "policy roster is empty",
            Code::A001 => "automotive share-table entry invalid",
            Code::A002 => "automotive period bins not strictly increasing",
            Code::A003 => "automotive BCET/WCET factor-matrix violation",
            Code::A004 => "automotive ACET statistics out of order",
            Code::A005 => "automotive generator configuration invalid",
            Code::A006 => "automotive bin admits no Weibull-feasible factor pair",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Every released code, in class/number order (the DESIGN.md table order).
pub const ALL_CODES: &[Code] = &[
    Code::C001,
    Code::C002,
    Code::C003,
    Code::C004,
    Code::C005,
    Code::C006,
    Code::C007,
    Code::C008,
    Code::C009,
    Code::T001,
    Code::T002,
    Code::T003,
    Code::T004,
    Code::T005,
    Code::T006,
    Code::T007,
    Code::T008,
    Code::T009,
    Code::T010,
    Code::T011,
    Code::T012,
    Code::S001,
    Code::S002,
    Code::S003,
    Code::S004,
    Code::S005,
    Code::S006,
    Code::S007,
    Code::S008,
    Code::S009,
    Code::E001,
    Code::E002,
    Code::E003,
    Code::E004,
    Code::E005,
    Code::E006,
    Code::D001,
    Code::D002,
    Code::D003,
    Code::D004,
    Code::U001,
    Code::U002,
    Code::U003,
    Code::U004,
    Code::U005,
    Code::P001,
    Code::P002,
    Code::P003,
    Code::A001,
    Code::A002,
    Code::A003,
    Code::A004,
    Code::A005,
    Code::A006,
];

/// The exit-code policy shared by every `chebymc lint` pass: which
/// findings are *deny-level* (fail the run). By default a finding is
/// deny-level iff its severity is [`Severity::Error`]; `--deny` promotes
/// whole classes (`D`), single codes (`U002`), or `warnings` (everything
/// at warning severity or above), and `--allow` demotes classes or codes
/// so they can never gate. `--allow` never removes a finding from the
/// report — output stays byte-identical whatever the gate says.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Gate {
    deny_classes: Vec<char>,
    deny_codes: Vec<Code>,
    deny_warnings: bool,
    allow_classes: Vec<char>,
    allow_codes: Vec<Code>,
}

impl Gate {
    /// Parses comma-separated `--deny`/`--allow` lists. Each entry is a
    /// class letter (`C`, `T`, `S`, `E`, `D`, `U`, `P`, `A`), a full code
    /// (`D002`), or — for `--deny` only — the word `warnings`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unrecognised entry.
    pub fn parse(deny: Option<&str>, allow: Option<&str>) -> Result<Self, String> {
        let mut gate = Gate::default();
        for entry in deny.unwrap_or("").split(',').filter(|s| !s.is_empty()) {
            if entry == "warnings" {
                gate.deny_warnings = true;
            } else if let Some(class) = parse_class(entry) {
                gate.deny_classes.push(class);
            } else if let Some(code) = parse_code(entry) {
                gate.deny_codes.push(code);
            } else {
                return Err(format!(
                    "unknown --deny entry `{entry}` (expected a class letter, a code like D002, or `warnings`)"
                ));
            }
        }
        for entry in allow.unwrap_or("").split(',').filter(|s| !s.is_empty()) {
            if let Some(class) = parse_class(entry) {
                gate.allow_classes.push(class);
            } else if let Some(code) = parse_code(entry) {
                gate.allow_codes.push(code);
            } else {
                return Err(format!(
                    "unknown --allow entry `{entry}` (expected a class letter or a code like U004)"
                ));
            }
        }
        Ok(gate)
    }

    /// Whether this finding fails the run under the gate.
    #[must_use]
    pub fn is_deny(&self, diagnostic: &Diagnostic) -> bool {
        let code = diagnostic.code;
        if self.allow_codes.contains(&code) || self.allow_classes.contains(&code.class()) {
            return false;
        }
        if self.deny_codes.contains(&code) || self.deny_classes.contains(&code.class()) {
            return true;
        }
        if self.deny_warnings && diagnostic.severity >= Severity::Warning {
            return true;
        }
        diagnostic.severity == Severity::Error
    }

    /// Number of deny-level findings in the report.
    #[must_use]
    pub fn count_deny(&self, report: &LintReport) -> usize {
        report.iter().filter(|d| self.is_deny(d)).count()
    }
}

/// A single uppercase class letter with at least one released code.
fn parse_class(entry: &str) -> Option<char> {
    let mut chars = entry.chars();
    let c = chars.next()?;
    if chars.next().is_none() && ALL_CODES.iter().any(|code| code.class() == c) {
        Some(c)
    } else {
        None
    }
}

/// A full code string (`D002`), matched against the released set.
fn parse_code(entry: &str) -> Option<Code> {
    ALL_CODES.iter().copied().find(|c| c.to_string() == entry)
}

/// One finding: a stable code, its severity, where it was found, and a
/// human-readable explanation with the offending values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What the finding is attached to, e.g. `cfg:qsort-10/n3 (inner)`
    /// or `task τ2`.
    pub source: String,
    /// Human-readable message with concrete values.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; the severity comes from the code.
    #[must_use]
    pub fn new(code: Code, source: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            source: source.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.source, self.message
        )
    }
}

/// An ordered collection of findings from one or more lint passes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LintReport {
    /// The findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report has no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Iterates over the findings.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diagnostics.iter()
    }

    /// The distinct codes present, in first-appearance order.
    #[must_use]
    pub fn codes(&self) -> Vec<Code> {
        let mut seen = Vec::new();
        for d in &self.diagnostics {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }

    /// Renders the report for terminals: one line per finding plus a
    /// summary line.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        if self.is_clean() {
            out.push_str("clean: no findings\n");
        } else {
            out.push_str(&format!("{e} error(s), {w} warning(s), {i} info(s)\n"));
        }
        out
    }

    /// Renders the report as JSON (stable shape: `{"diagnostics": [...]}`).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none occur in practice).
    pub fn render_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

impl IntoIterator for LintReport {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

impl<'a> IntoIterator for &'a LintReport {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_render_as_stable_strings() {
        assert_eq!(Code::C005.to_string(), "C005");
        assert_eq!(Code::T001.to_string(), "T001");
        assert_eq!(Code::S009.to_string(), "S009");
    }

    #[test]
    fn diagnostics_inherit_code_severity() {
        let d = Diagnostic::new(Code::C003, "cfg:demo/n2", "block `skip` is unreachable");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.to_string().contains("C003"));
        assert!(d.to_string().contains("cfg:demo/n2"));
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(Code::C005, "a", "x"));
        r.push(Diagnostic::new(Code::C009, "b", "y"));
        r.push(Diagnostic::new(Code::C005, "c", "z"));
        assert_eq!(r.count(Severity::Error), 2);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec![Code::C005, Code::C009]);
        let human = r.render_human();
        assert!(human.contains("2 error(s)"));
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(
            Code::T001,
            "task τ1",
            "C_LO 5ms > C_HI 4ms",
        ));
        r.push(Diagnostic::new(Code::S006, "ga", "budget 10^9"));
        let json = r.render_json().unwrap();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn every_code_has_description_and_severity() {
        for &code in ALL_CODES {
            assert!(!code.description().is_empty());
            let _ = code.severity();
            assert!(
                "CTSEDUPA".contains(code.class()),
                "unexpected class for {code}"
            );
        }
    }

    #[test]
    fn default_gate_denies_exactly_errors() {
        let gate = Gate::default();
        assert!(gate.is_deny(&Diagnostic::new(Code::D001, "a", "x")));
        assert!(!gate.is_deny(&Diagnostic::new(Code::U002, "a", "x")));
        assert!(!gate.is_deny(&Diagnostic::new(Code::U004, "a", "x")));
    }

    #[test]
    fn deny_promotes_classes_codes_and_warnings() {
        let gate = Gate::parse(Some("U002"), None).unwrap();
        assert!(gate.is_deny(&Diagnostic::new(Code::U002, "a", "x")));
        assert!(!gate.is_deny(&Diagnostic::new(Code::U004, "a", "x")));

        let gate = Gate::parse(Some("U"), None).unwrap();
        assert!(gate.is_deny(&Diagnostic::new(Code::U004, "a", "x")));

        let gate = Gate::parse(Some("warnings"), None).unwrap();
        assert!(gate.is_deny(&Diagnostic::new(Code::S006, "a", "x")));
        assert!(!gate.is_deny(&Diagnostic::new(Code::U004, "a", "x")));
    }

    #[test]
    fn allow_demotes_and_wins_over_deny() {
        let gate = Gate::parse(Some("D"), Some("D002")).unwrap();
        assert!(gate.is_deny(&Diagnostic::new(Code::D001, "a", "x")));
        assert!(!gate.is_deny(&Diagnostic::new(Code::D002, "a", "x")));

        let gate = Gate::parse(None, Some("T")).unwrap();
        assert!(!gate.is_deny(&Diagnostic::new(Code::T001, "a", "x")));
    }

    #[test]
    fn gate_rejects_unknown_entries() {
        assert!(Gate::parse(Some("X001"), None).is_err());
        assert!(Gate::parse(None, Some("warnings")).is_err());
        assert!(Gate::parse(Some("d002"), None).is_err());
    }

    #[test]
    fn gate_counts_deny_level_findings() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(Code::D001, "a", "x"));
        r.push(Diagnostic::new(Code::U004, "b", "y"));
        assert_eq!(Gate::default().count_deny(&r), 1);
        assert_eq!(Gate::parse(Some("U"), None).unwrap().count_deny(&r), 2);
    }
}
