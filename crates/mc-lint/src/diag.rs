//! The unified diagnostics framework: stable codes, severities, source
//! labels, and the human-readable / JSON renderers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory only; no action required.
    Info,
    /// Suspicious but analysable; results may be degraded.
    Warning,
    /// Structurally unsound; downstream analysis would be wrong or panic.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// Stable diagnostic codes. `C0xx` cover CFG structure, `T0xx` task-set
/// invariants, `S0xx` scheme/GA/generator configuration.
///
/// Codes are append-only: a code's meaning never changes once released,
/// and retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Code {
    /// CFG has no entry block.
    C001,
    /// CFG has no exit block.
    C002,
    /// Live block unreachable from the entry.
    C003,
    /// Live block cannot reach the exit.
    C004,
    /// Loop header (target of a back edge) has no loop bound.
    C005,
    /// Irreducible control flow: a cycle with no dominating header.
    C006,
    /// Edge incident to a collapsed (dead) block.
    C007,
    /// Loop bound set on a block that heads no loop.
    C008,
    /// Loop bound of zero: the loop body never executes.
    C009,
    /// `C_LO` exceeds `C_HI`.
    T001,
    /// Profile mean (ACET) exceeds the optimistic budget `C_LO`.
    T002,
    /// Execution profile parameters out of range.
    T003,
    /// Timing parameters out of order (period/deadline/budgets).
    T004,
    /// Empty Chebyshev range: pessimistic WCET below the ACET.
    T005,
    /// High-criticality task without an execution profile.
    T006,
    /// Duplicate task id.
    T007,
    /// Task set is empty or has no high-criticality tasks.
    T008,
    /// Total LO-mode utilization exceeds 1.
    T009,
    /// EDF-VD preconditions fail (Eq. 8 / `x ∉ (0, 1]`).
    T010,
    /// Low-criticality task carries an (unused) execution profile.
    T011,
    /// Profile's pessimistic WCET disagrees with `C_HI`.
    T012,
    /// GA population smaller than 2.
    S001,
    /// GA generation count is zero.
    S002,
    /// GA probability outside `[0, 1]`.
    S003,
    /// GA tournament size outside `[1, population]`.
    S004,
    /// GA elitism at least the population size.
    S005,
    /// GA search budget is very large.
    S006,
    /// Chebyshev factor cap out of range.
    S007,
    /// Chebyshev factor cap below the paper's operating region.
    S008,
    /// Task-generator configuration invalid.
    S009,
    /// Campaign has no axis points.
    E001,
    /// Campaign replica count is zero.
    E002,
    /// Shard index not below the shard count.
    E003,
    /// Duplicate campaign point labels.
    E004,
    /// Output path collision (store and export would overwrite each other).
    E005,
    /// Campaign is very large.
    E006,
}

impl Code {
    /// The severity this code always carries.
    #[must_use]
    pub fn severity(self) -> Severity {
        use Code::{
            C001, C002, C003, C004, C005, C006, C007, C008, C009, E001, E002, E003, E004, E005,
            E006, S001, S002, S003, S004, S005, S006, S007, S008, S009, T001, T002, T003, T004,
            T005, T006, T007, T008, T009, T010, T011, T012,
        };
        match self {
            C001 | C002 | C003 | C004 | C005 | C006 => Severity::Error,
            C007 | C008 => Severity::Warning,
            C009 => Severity::Info,
            T001 | T003 | T004 | T005 | T007 => Severity::Error,
            T002 | T006 | T008 | T009 | T010 | T012 => Severity::Warning,
            T011 => Severity::Info,
            S001 | S002 | S003 | S004 | S005 | S007 | S009 => Severity::Error,
            S006 => Severity::Warning,
            S008 => Severity::Info,
            E001 | E002 | E003 | E004 | E005 => Severity::Error,
            E006 => Severity::Warning,
        }
    }

    /// One-line description of what the code means (the DESIGN.md table's
    /// "meaning" column).
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Code::C001 => "control-flow graph has no entry block",
            Code::C002 => "control-flow graph has no exit block",
            Code::C003 => "live block is unreachable from the entry",
            Code::C004 => "live block cannot reach the exit",
            Code::C005 => "loop header has no loop bound",
            Code::C006 => "irreducible control flow (cycle without a dominating header)",
            Code::C007 => "edge incident to a collapsed (dead) block",
            Code::C008 => "loop bound set on a block that heads no loop",
            Code::C009 => "loop bound of zero (body never executes)",
            Code::T001 => "optimistic budget C_LO exceeds pessimistic budget C_HI",
            Code::T002 => "profile mean (ACET) exceeds the optimistic budget C_LO",
            Code::T003 => "execution-profile parameters out of range",
            Code::T004 => "timing parameters out of order",
            Code::T005 => "empty Chebyshev range (WCET_pes below ACET)",
            Code::T006 => "high-criticality task lacks an execution profile",
            Code::T007 => "duplicate task id",
            Code::T008 => "task set empty or without high-criticality tasks",
            Code::T009 => "total LO-mode utilization exceeds 1",
            Code::T010 => "EDF-VD preconditions fail",
            Code::T011 => "low-criticality task carries an unused profile",
            Code::T012 => "profile WCET_pes disagrees with C_HI",
            Code::S001 => "GA population smaller than 2",
            Code::S002 => "GA generation count is zero",
            Code::S003 => "GA probability outside [0, 1]",
            Code::S004 => "GA tournament size outside [1, population]",
            Code::S005 => "GA elitism not smaller than the population",
            Code::S006 => "GA search budget is very large",
            Code::S007 => "Chebyshev factor cap out of range",
            Code::S008 => "Chebyshev factor cap below the paper's operating region",
            Code::S009 => "task-generator configuration invalid",
            Code::E001 => "campaign has no axis points",
            Code::E002 => "campaign replica count is zero",
            Code::E003 => "shard index is not below the shard count",
            Code::E004 => "duplicate campaign point labels",
            Code::E005 => "output path collision",
            Code::E006 => "campaign is very large",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One finding: a stable code, its severity, where it was found, and a
/// human-readable explanation with the offending values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What the finding is attached to, e.g. `cfg:qsort-10/n3 (inner)`
    /// or `task τ2`.
    pub source: String,
    /// Human-readable message with concrete values.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; the severity comes from the code.
    #[must_use]
    pub fn new(code: Code, source: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            source: source.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.source, self.message
        )
    }
}

/// An ordered collection of findings from one or more lint passes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LintReport {
    /// The findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether the report has no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Iterates over the findings.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diagnostics.iter()
    }

    /// The distinct codes present, in first-appearance order.
    #[must_use]
    pub fn codes(&self) -> Vec<Code> {
        let mut seen = Vec::new();
        for d in &self.diagnostics {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }

    /// Renders the report for terminals: one line per finding plus a
    /// summary line.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        if self.is_clean() {
            out.push_str("clean: no findings\n");
        } else {
            out.push_str(&format!("{e} error(s), {w} warning(s), {i} info(s)\n"));
        }
        out
    }

    /// Renders the report as JSON (stable shape: `{"diagnostics": [...]}`).
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (none occur in practice).
    pub fn render_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

impl IntoIterator for LintReport {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

impl<'a> IntoIterator for &'a LintReport {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_below_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_render_as_stable_strings() {
        assert_eq!(Code::C005.to_string(), "C005");
        assert_eq!(Code::T001.to_string(), "T001");
        assert_eq!(Code::S009.to_string(), "S009");
    }

    #[test]
    fn diagnostics_inherit_code_severity() {
        let d = Diagnostic::new(Code::C003, "cfg:demo/n2", "block `skip` is unreachable");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.to_string().contains("C003"));
        assert!(d.to_string().contains("cfg:demo/n2"));
    }

    #[test]
    fn report_counts_and_codes() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(Code::C005, "a", "x"));
        r.push(Diagnostic::new(Code::C009, "b", "y"));
        r.push(Diagnostic::new(Code::C005, "c", "z"));
        assert_eq!(r.count(Severity::Error), 2);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.has_errors());
        assert_eq!(r.codes(), vec![Code::C005, Code::C009]);
        let human = r.render_human();
        assert!(human.contains("2 error(s)"));
    }

    #[test]
    fn report_json_round_trips() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(
            Code::T001,
            "task τ1",
            "C_LO 5ms > C_HI 4ms",
        ));
        r.push(Diagnostic::new(Code::S006, "ga", "budget 10^9"));
        let json = r.render_json().unwrap();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn every_code_has_description_and_severity() {
        for code in [
            Code::C001,
            Code::C002,
            Code::C003,
            Code::C004,
            Code::C005,
            Code::C006,
            Code::C007,
            Code::C008,
            Code::C009,
            Code::T001,
            Code::T002,
            Code::T003,
            Code::T004,
            Code::T005,
            Code::T006,
            Code::T007,
            Code::T008,
            Code::T009,
            Code::T010,
            Code::T011,
            Code::T012,
            Code::S001,
            Code::S002,
            Code::S003,
            Code::S004,
            Code::S005,
            Code::S006,
            Code::S007,
            Code::S008,
            Code::S009,
            Code::E001,
            Code::E002,
            Code::E003,
            Code::E004,
            Code::E005,
            Code::E006,
        ] {
            assert!(!code.description().is_empty());
            let _ = code.severity();
        }
    }
}
