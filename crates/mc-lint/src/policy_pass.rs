//! Scheduling-policy roster lint pass (`P0xx`).
//!
//! A campaign that races a roster of [`PolicySpec`] entrants (the
//! `policy_arena` catalog entry) keys its stores and merge paths on the
//! policy *names*: a duplicate name silently folds two policies into one
//! aggregate row, and an out-of-range fraction would otherwise surface as
//! a per-unit error thousands of times into the run. This pass reports
//! every roster defect at once, before any unit executes.

use crate::diag::{Code, Diagnostic, LintReport};
use mc_sched::policy::{PolicySpec, SchedulingPolicy};

/// Lints a scheduling-policy roster: parameter ranges (`P001`), name
/// collisions (`P002`), and emptiness (`P003`).
#[must_use]
pub fn lint_policy_roster(roster: &[PolicySpec]) -> LintReport {
    let mut report = LintReport::new();
    if roster.is_empty() {
        report.push(Diagnostic::new(
            Code::P003,
            "policy roster",
            "the roster has no policies to race",
        ));
        return report;
    }
    let mut seen: Vec<String> = Vec::new();
    for (i, policy) in roster.iter().enumerate() {
        let name = policy.name();
        let source = format!("policy[{i}] {name}");
        if let Err(e) = policy.validate() {
            report.push(Diagnostic::new(Code::P001, source.clone(), e.to_string()));
        }
        if seen.contains(&name) {
            report.push(Diagnostic::new(
                Code::P002,
                source,
                format!("name `{name}` already used earlier in the roster"),
            ));
        } else {
            seen.push(name);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_arena_roster_is_clean() {
        assert!(lint_policy_roster(&PolicySpec::arena_roster()).is_clean());
    }

    #[test]
    fn empty_roster_is_a_single_error() {
        let report = lint_policy_roster(&[]);
        assert_eq!(report.codes(), vec![Code::P003]);
        assert!(report.has_errors());
    }

    #[test]
    fn bad_fraction_and_duplicate_name_both_reported() {
        let roster = [
            PolicySpec::LiuDegrade { fraction: 0.5 },
            PolicySpec::LiuDegrade { fraction: 0.5 },
            PolicySpec::FlexibleUtilization { min_fraction: 1.5 },
        ];
        let report = lint_policy_roster(&roster);
        assert_eq!(report.codes(), vec![Code::P002, Code::P001]);
        // The duplicate names the colliding roster entry.
        let dup = report.iter().find(|d| d.code == Code::P002).unwrap();
        assert!(dup.source.contains("policy[1]"), "{}", dup.source);
        assert!(dup.message.contains("liu_degrade_0.50"), "{}", dup.message);
    }

    #[test]
    fn nan_fraction_is_out_of_range() {
        let report = lint_policy_roster(&[PolicySpec::CombinedModeSwitch { fraction: f64::NAN }]);
        assert_eq!(report.codes(), vec![Code::P001]);
    }
}
