//! A zero-dependency Rust source scanner for the lint source pass.
//!
//! The scanner is *not* a parser: it classifies every byte of a source
//! file as code, comment, string/char literal, and produces per-line
//! views with literals blanked and comments separated, plus a test-region
//! marking (`#[cfg(test)]` items and `#[test]` functions). The rules in
//! [`super::rules`] then work on clean code text where a `HashMap` inside
//! a doc comment or a `".unwrap()"` inside a string can no longer produce
//! false findings.
//!
//! Handled literal forms: line comments, nested block comments, string
//! literals with escapes, raw strings `r"…"`/`r#"…"#` (any `#` depth),
//! byte strings `b"…"`/`br#"…"#`, char and byte-char literals, and
//! lifetimes (`'a` is code, not an unterminated char literal).

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line's code with literals blanked: every string literal
    /// becomes `""`, every char literal `'_'`; comments are removed.
    pub code: String,
    /// The line's comment text (without the `//`/`/*` markers). Block
    /// comments contribute to every line they span.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item or a `#[test]`
    /// function (attribute line included).
    pub in_test: bool,
}

/// A scanned file: workspace-relative path, target kind, and lines.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Whether the file belongs to a binary target (`src/bin/…` or
    /// `main.rs`): panics and wall-clock reads are judged differently.
    pub is_bin: bool,
    /// The scanned lines, 0-indexed (line numbers in diagnostics are
    /// 1-based).
    pub lines: Vec<ScannedLine>,
}

impl ScannedFile {
    /// Scans `source`, classifying bytes and marking test regions.
    #[must_use]
    pub fn scan(rel_path: &str, source: &str) -> Self {
        let mut lines = split_classify(source);
        mark_test_regions(&mut lines);
        ScannedFile {
            rel_path: rel_path.to_string(),
            is_bin: path_is_bin(rel_path),
            lines,
        }
    }
}

/// Whether a workspace-relative path names a binary target.
fn path_is_bin(rel_path: &str) -> bool {
    rel_path.contains("/bin/") || rel_path.ends_with("/main.rs") || rel_path == "main.rs"
}

/// The byte-classification state machine: splits `source` into lines of
/// blanked code + comment text.
#[allow(clippy::too_many_lines)]
fn split_classify(source: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<ScannedLine> = Vec::new();
    let mut line = ScannedLine::default();
    let mut i = 0usize;

    // Closes the current line buffer (on '\n' and at EOF).
    macro_rules! newline {
        () => {{
            lines.push(std::mem::take(&mut line));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (incl. doc comments): capture to '\n'.
                i += 2;
                while i < chars.len() && chars[i] != '\n' {
                    line.comment.push(chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nested; spans lines.
                i += 2;
                let mut depth = 1usize;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        line.comment.push_str("/*");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        if depth > 0 {
                            line.comment.push_str("*/");
                        }
                        i += 2;
                    } else if chars[i] == '\n' {
                        newline!();
                        i += 1;
                    } else {
                        line.comment.push(chars[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                // Plain string literal with escapes; may span lines.
                line.code.push_str("\"\"");
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            newline!();
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            'r' | 'b' if is_literal_prefix(&chars, i) => {
                let (blank, next) = consume_prefixed_literal(&chars, i, &mut lines, &mut line);
                line.code.push_str(blank);
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime. A char literal is '\…' or
                // 'x' (any single char followed by a closing quote); a
                // lifetime is '` followed by an identifier with no
                // closing quote.
                if chars.get(i + 1) == Some(&'\\') {
                    line.code.push_str("'_'");
                    i += 2; // past '\
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1; // past closing '
                } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                    line.code.push_str("'_'");
                    i += 3;
                } else {
                    // Lifetime (or `'static`): keep the quote as code.
                    line.code.push(c);
                    i += 1;
                }
            }
            _ => {
                line.code.push(c);
                i += 1;
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or a
/// byte-char literal rather than an identifier.
fn is_literal_prefix(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`for`, `attr`, …).
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            return true; // byte-char literal b'x'
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"') && j > i
}

/// Consumes a `b'…'`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#` literal
/// starting at `i`; returns the blanked text and the next index.
fn consume_prefixed_literal<'a>(
    chars: &[char],
    i: usize,
    lines: &mut Vec<ScannedLine>,
    line: &mut ScannedLine,
) -> (&'a str, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'\'') {
            // Byte-char literal: b'x' or b'\n'.
            j += 1;
            if chars.get(j) == Some(&'\\') {
                j += 1;
            }
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            return ("'_'", j + 1);
        }
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'), "caller checked the prefix");
    j += 1;
    while j < chars.len() {
        match chars[j] {
            '\\' if !raw => j += 2,
            '\n' => {
                lines.push(std::mem::take(line));
                j += 1;
            }
            '"' => {
                let closed = (1..=hashes).all(|k| chars.get(j + k) == Some(&'#'));
                if closed {
                    return ("\"\"", j + 1 + hashes);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    ("\"\"", j)
}

/// Marks lines inside `#[cfg(test)]` items and `#[test]` functions.
///
/// Works on the blanked code: finds test attributes, then the braced
/// body of the item they precede (an attribute followed by `;` before
/// any `{` is a braceless item and marks nothing).
fn mark_test_regions(lines: &mut [ScannedLine]) {
    // (char, line index) stream of the blanked code.
    let stream: Vec<(char, usize)> = lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| {
            l.code
                .chars()
                .chain(std::iter::once('\n'))
                .map(move |c| (c, ln))
        })
        .collect();

    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < stream.len() {
        if stream[i].0 == '#' && matches!(stream.get(i + 1), Some(&('[', _))) {
            let attr_line = stream[i].1;
            let (content, after) = read_attribute(&stream, i + 2);
            if attribute_is_test(&content) {
                if let Some(end) = find_braced_body(&stream, after) {
                    regions.push((attr_line, stream[end].1));
                    // Continue *inside* the region: nested attributes are
                    // irrelevant (already marked), so skip past it.
                    i = end + 1;
                    continue;
                }
            }
            i = after;
            continue;
        }
        i += 1;
    }
    for (from, to) in regions {
        for l in &mut lines[from..=to] {
            l.in_test = true;
        }
    }
}

/// Reads an attribute's bracketed content starting just past `#[`;
/// returns the content (whitespace stripped) and the index after `]`.
fn read_attribute(stream: &[(char, usize)], start: usize) -> (String, usize) {
    let mut depth = 1usize;
    let mut content = String::new();
    let mut i = start;
    while i < stream.len() && depth > 0 {
        match stream[i].0 {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return (content, i + 1);
                }
            }
            c if !c.is_whitespace() => content.push(c),
            _ => {}
        }
        if depth > 0 {
            i += 1;
        }
    }
    (content, i)
}

/// Whether an attribute body selects test-only compilation: `test`,
/// `cfg(test)`, or any `cfg(…)` whose predicate mentions `test` as a
/// word (`cfg(all(test,…))`).
fn attribute_is_test(content: &str) -> bool {
    if content == "test" {
        return true;
    }
    if !content.starts_with("cfg(") {
        return false;
    }
    let bytes = content.as_bytes();
    content.match_indices("test").any(|(pos, _)| {
        let before_ok =
            pos == 0 || !bytes[pos - 1].is_ascii_alphanumeric() && bytes[pos - 1] != b'_';
        let after = pos + 4;
        let after_ok =
            after >= bytes.len() || !bytes[after].is_ascii_alphanumeric() && bytes[after] != b'_';
        before_ok && after_ok
    })
}

/// From just past a test attribute, finds the end of the item's braced
/// body: skips further attributes, then scans to the first `{` (tracking
/// nothing else) unless a `;` ends the item first, and returns the index
/// of the matching `}`.
fn find_braced_body(stream: &[(char, usize)], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip whitespace and any further attributes.
    loop {
        while i < stream.len() && stream[i].0.is_whitespace() {
            i += 1;
        }
        if stream[i..].first().map(|&(c, _)| c) == Some('#')
            && stream.get(i + 1).map(|&(c, _)| c) == Some('[')
        {
            let (_, after) = read_attribute(stream, i + 2);
            i = after;
        } else {
            break;
        }
    }
    // Scan the item header: a `;` first means a braceless item.
    while i < stream.len() {
        match stream[i].0 {
            ';' => return None,
            '{' => break,
            _ => i += 1,
        }
    }
    if i >= stream.len() {
        return None;
    }
    let mut depth = 0usize;
    while i < stream.len() {
        match stream[i].0 {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::scan("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn comments_are_separated_from_code() {
        let f = scan("let x = 1; // HashMap here\n/* SystemTime */ let y = 2;\n");
        assert_eq!(f.lines[0].code.trim_end(), "let x = 1;");
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(f.lines[1].code.contains("let y = 2;"));
        assert!(f.lines[1].comment.contains("SystemTime"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let f = scan("/* outer /* inner */ still */ code();\n");
        assert_eq!(f.lines[0].code.trim(), "code();");
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let f = scan("let s = \"HashMap::new() .unwrap()\"; call();\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("\"\""));
        assert!(f.lines[0].code.contains("call();"));
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let f = scan(
            "let a = r#\"Instant::now() \" quote\"#; let b = b\"unsafe\"; let c = br#\"x\"#;\n",
        );
        let code = &f.lines[0].code;
        assert!(!code.contains("Instant"), "{code}");
        assert!(!code.contains("unsafe"), "{code}");
        assert!(code.contains("let b ="), "{code}");
        assert!(code.contains("let c ="), "{code}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let b = b'{'; }\n");
        let code = &f.lines[0].code;
        assert!(code.contains("<'a>"), "lifetime preserved: {code}");
        assert!(code.contains("&'a str"), "lifetime preserved: {code}");
        assert!(code.contains("'_'"), "char blanked: {code}");
        assert!(!code.contains("'x'"), "{code}");
    }

    #[test]
    fn multiline_strings_span_lines() {
        let f = scan("let s = \"line one\nline two with unwrap()\";\nnext();\n");
        assert_eq!(f.lines.len(), 3);
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[2].code.contains("next();"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "\
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t() { lib_code(); }
}

pub fn more_lib_code() {}
";
        let f = scan(src);
        assert!(!f.lines[0].in_test, "lib code is not test");
        assert!(f.lines[2].in_test, "attribute line is test");
        assert!(
            f.lines[3].in_test && f.lines[7].in_test,
            "module body is test"
        );
        assert!(!f.lines[9].in_test, "code after the module is not test");
    }

    #[test]
    fn test_fn_outside_module_is_marked() {
        let src = "fn lib() {}\n#[test]\nfn check() {\n    lib();\n}\nfn lib2() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test && f.lines[3].in_test && f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_all_test_is_marked_but_feature_cfg_is_not() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { }\n#[cfg(feature = \"testing\")]\nmod f { }\n";
        let f = scan(src);
        assert!(f.lines[0].in_test && f.lines[1].in_test);
        assert!(
            !f.lines[2].in_test && !f.lines[3].in_test,
            "`testing` is not the word `test`"
        );
    }

    #[test]
    fn braceless_cfg_test_item_marks_nothing_after() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { body(); }\n";
        let f = scan(src);
        assert!(
            !f.lines[2].in_test,
            "the later fn is not part of the use item"
        );
    }

    #[test]
    fn bin_paths_are_recognised() {
        assert!(ScannedFile::scan("src/bin/chebymc.rs", "").is_bin);
        assert!(ScannedFile::scan("crates/bench/src/bin/fig5.rs", "").is_bin);
        assert!(ScannedFile::scan("src/main.rs", "").is_bin);
        assert!(!ScannedFile::scan("crates/core/src/lib.rs", "").is_bin);
    }
}
