//! The workspace source-audit pass: determinism (`D0xx`) and soundness
//! (`U0xx`) diagnostics over the workspace's own Rust sources.
//!
//! Everything the workspace publishes rests on a determinism contract —
//! bit-identical results across thread counts, shard layouts and
//! crash/resume. The dynamic suites assert that contract on specific
//! runs; this pass proves the *absence* of the usual ways to break it at
//! the source level: unordered hash iteration, wall-clock reads,
//! unseeded randomness, unordered float reduction, undocumented `unsafe`
//! and panics, and truncating float casts.
//!
//! The pass walks every `crates/*/src` tree plus the facade's `src/`
//! (vendored stand-ins under `vendor/` are external API surface and are
//! not audited), scans each file with a zero-dependency lexer
//! ([`scanner`]), applies the lexical rules ([`rules`]), and suppresses
//! findings covered by the checked-in `lint.toml` policy
//! ([`allowlist`]) — reporting any allowlist entry that suppressed
//! nothing as stale (`U005`). Scanning parallelises over files with the
//! deterministic mc-par pool; findings are merged in sorted-path order,
//! so the report is byte-identical for every thread count.

pub mod allowlist;
pub mod rules;
pub mod scanner;

pub use allowlist::{AllowEntry, Allowlist};
pub use scanner::ScannedFile;

use crate::diag::{Code, Diagnostic, LintReport};
use mc_par::{ThreadBudget, WorkerPool};
use std::path::{Path, PathBuf};

/// The result of auditing a workspace's sources.
#[derive(Debug, Clone)]
pub struct SourceAudit {
    /// The findings, in sorted-path then line order; stale-allowlist
    /// findings (`U005`) follow, in `lint.toml` order.
    pub report: LintReport,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

/// Lints a single source file (fixture corpora, tests). No stale-entry
/// check — that only makes sense for a whole workspace.
#[must_use]
pub fn lint_source_file(rel_path: &str, source: &str, allow: &Allowlist) -> LintReport {
    let scanned = ScannedFile::scan(rel_path, source);
    let mut report = LintReport::new();
    for d in rules::lint_file(&scanned, allow).diagnostics {
        report.push(d);
    }
    report
}

/// Collects the workspace-relative paths of every audited source file:
/// `crates/*/src/**/*.rs` plus `src/**/*.rs`, sorted so the report
/// order never depends on directory-listing order.
///
/// # Errors
///
/// Returns a message for unreadable directories.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<String>, String> {
    let mut rels: Vec<String> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in read_dir_sorted(&crates_dir)? {
            let src = entry.join("src");
            if src.is_dir() {
                walk_rs_files(&src, root, &mut rels)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs_files(&root_src, root, &mut rels)?;
    }
    rels.sort();
    Ok(rels)
}

/// Audits the workspace rooted at `root` under `allow`, scanning files
/// on `threads` workers (`0` = all available cores). The report is
/// byte-identical for every thread count.
///
/// # Errors
///
/// Returns a message for unreadable directories or files.
pub fn lint_workspace_sources(
    root: &Path,
    allow: &Allowlist,
    threads: usize,
) -> Result<SourceAudit, String> {
    let rels = collect_workspace_files(root)?;
    let pool = WorkerPool::with_budget(ThreadBudget::explicit(threads));

    // Scan in parallel, merge in path order: slot i belongs to rels[i].
    let mut slots: Vec<Result<rules::FileFindings, String>> = Vec::new();
    slots.resize_with(rels.len(), || Err(String::new()));
    pool.fill(&mut slots, |i| {
        let rel = &rels[i];
        let source = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read `{rel}`: {e}"))?;
        Ok(rules::lint_file(&ScannedFile::scan(rel, &source), allow))
    });

    let mut report = LintReport::new();
    let mut suppressed = vec![0usize; allow.entries().len()];
    for slot in slots {
        let findings = slot?;
        for d in findings.diagnostics {
            report.push(d);
        }
        for (k, n) in findings.suppressed.iter().enumerate() {
            suppressed[k] += n;
        }
    }
    for (entry, &count) in allow.entries().iter().zip(&suppressed) {
        if count == 0 {
            report.push(Diagnostic::new(
                Code::U005,
                format!("lint.toml:{}", entry.line),
                format!(
                    "allowlist entry for `{}` ({}) suppressed no findings; \
                     delete it or fix its path",
                    entry.path,
                    entry
                        .codes
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            ));
        }
    }
    Ok(SourceAudit {
        report,
        files_scanned: rels.len(),
    })
}

/// Sorted subdirectory listing (deterministic walk order).
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir` as workspace-relative
/// forward-slash paths.
fn walk_rs_files(dir: &Path, root: &Path, rels: &mut Vec<String>) -> Result<(), String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read `{}`: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs_files(&path, root, rels)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("`{}` escapes the workspace root", path.display()))?;
            rels.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_file_lint_reports_and_allowlists() {
        let src = "use std::collections::HashMap;\n";
        let report = lint_source_file("crates/x/src/lib.rs", src, &Allowlist::empty());
        assert_eq!(report.codes(), vec![Code::D001]);

        let allow = Allowlist::parse(
            "[[allow]]\npath = \"crates/x/src/lib.rs\"\ncodes = [\"D001\"]\nreason = \"membership only\"\n",
        )
        .unwrap();
        let report = lint_source_file("crates/x/src/lib.rs", src, &allow);
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn workspace_audit_scans_a_temp_tree_and_flags_stale_entries() {
        let dir = std::env::temp_dir().join(format!("mc-lint-walk-{}", std::process::id()));
        let src_dir = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src_dir).expect("temp tree");
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
        )
        .expect("write fixture");
        let allow = Allowlist::parse(
            "[[allow]]\npath = \"crates/demo/src/gone.rs\"\ncodes = [\"D001\"]\nreason = \"r\"\n",
        )
        .unwrap();
        let audit = lint_workspace_sources(&dir, &allow, 1).expect("audit runs");
        assert_eq!(audit.files_scanned, 1);
        assert_eq!(audit.report.codes(), vec![Code::U003, Code::U005]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn thread_counts_do_not_change_the_report() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let one = lint_workspace_sources(root, &Allowlist::empty(), 1).expect("serial audit");
        let four = lint_workspace_sources(root, &Allowlist::empty(), 4).expect("parallel audit");
        assert_eq!(
            one.report.render_json().expect("render"),
            four.report.render_json().expect("render"),
        );
        assert!(one.files_scanned >= 8, "mc-lint's own sources are scanned");
    }
}
