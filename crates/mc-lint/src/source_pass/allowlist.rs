//! The `lint.toml` per-file/per-code allowlist for the source pass.
//!
//! The file is a checked-in policy document: every entry names a path
//! (optionally with a trailing `*` wildcard), the `D`/`U` codes it
//! suppresses there, and a non-empty reason. A hand-rolled parser for
//! exactly this subset keeps mc-lint zero-dependency; anything outside
//! the subset is a hard error so the policy file cannot silently rot.
//!
//! ```toml
//! [[allow]]
//! path = "crates/mc-obs/src/lib.rs"
//! codes = ["D002"]
//! reason = "trace clock: wall-times are observability metadata"
//! ```

use crate::diag::{Code, ALL_CODES};

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path; a trailing `*` matches any suffix.
    pub path: String,
    /// The codes suppressed at that path (source-pass classes only).
    pub codes: Vec<Code>,
    /// Why the suppression is sound. Required, surfaced in reports.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header in `lint.toml`.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An allowlist that suppresses nothing.
    #[must_use]
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// The entries, in file order.
    #[must_use]
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// The first entry that suppresses `code` at `rel_path`, if any.
    #[must_use]
    pub fn matches(&self, rel_path: &str, code: Code) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.codes.contains(&code) && path_matches(&e.path, rel_path))
    }

    /// Parses the `lint.toml` subset.
    ///
    /// # Errors
    ///
    /// Returns a message with the offending 1-based line for anything
    /// outside the subset: unknown sections or keys, missing keys,
    /// empty reasons, codes outside the `D`/`U` classes, or malformed
    /// values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<PartialEntry> = None;

        for (i, raw) in text.lines().enumerate() {
            let n = i + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    entries.push(finish_entry(entry)?);
                }
                current = Some((None, Vec::new(), None, n));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint.toml:{n}: unknown section `{line}` (only [[allow]] is recognised)"
                ));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.toml:{n}: expected `key = value`, got `{line}`"
                ));
            };
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "lint.toml:{n}: `{}` outside an [[allow]] section",
                    key.trim()
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "path" => entry.0 = Some(parse_string(value, n)?),
                "reason" => entry.2 = Some(parse_string(value, n)?),
                "codes" => {
                    for item in parse_string_array(value, n)? {
                        let code = ALL_CODES
                            .iter()
                            .copied()
                            .find(|c| c.to_string() == item)
                            .ok_or_else(|| format!("lint.toml:{n}: unknown code `{item}`"))?;
                        if code.class() != 'D' && code.class() != 'U' {
                            return Err(format!(
                                "lint.toml:{n}: `{item}` is not a source-pass code (only D/U codes are file-scoped)"
                            ));
                        }
                        entry.1.push(code);
                    }
                }
                other => return Err(format!("lint.toml:{n}: unknown key `{other}`")),
            }
        }
        if let Some(entry) = current.take() {
            entries.push(finish_entry(entry)?);
        }
        Ok(Allowlist { entries })
    }
}

/// Validates a completed entry tuple into an [`AllowEntry`].
/// An `[[allow]]` entry mid-parse: optional `path`, accumulated codes,
/// optional `reason`, and the header's 1-based line.
type PartialEntry = (Option<String>, Vec<Code>, Option<String>, usize);

fn finish_entry((path, codes, reason, line): PartialEntry) -> Result<AllowEntry, String> {
    let path = path.ok_or(format!(
        "lint.toml:{line}: [[allow]] entry without a `path`"
    ))?;
    let reason = reason.ok_or(format!(
        "lint.toml:{line}: [[allow]] entry without a `reason`"
    ))?;
    if reason.trim().is_empty() {
        return Err(format!(
            "lint.toml:{line}: empty `reason` — justify the suppression"
        ));
    }
    if codes.is_empty() {
        return Err(format!("lint.toml:{line}: [[allow]] entry without `codes`"));
    }
    Ok(AllowEntry {
        path,
        codes,
        reason,
        line,
    })
}

/// Whether `pattern` (exact path, or prefix ending in `*`) covers `rel`.
fn path_matches(pattern: &str, rel: &str) -> bool {
    match pattern.strip_suffix('*') {
        Some(prefix) => rel.starts_with(prefix),
        None => rel == pattern,
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted TOML string (no escapes needed by the policy).
fn parse_string(value: &str, line: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| {
            format!("lint.toml:{line}: expected a double-quoted string, got `{value}`")
        })?;
    if inner.contains('"') {
        return Err(format!(
            "lint.toml:{line}: escaped quotes are not supported"
        ));
    }
    Ok(inner.to_string())
}

/// Parses `["A", "B"]` into its items.
fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| {
            format!("lint.toml:{line}: expected an array like [\"D002\"], got `{value}`")
        })?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|item| parse_string(item, line))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# policy file
[[allow]]
path = "crates/mc-obs/src/lib.rs"
codes = ["D002"]
reason = "trace clock" # trailing comment

[[allow]]
path = "crates/bench/src/bin/*"
codes = ["D002", "U002"]
reason = "bench timing is metadata"
"#;

    #[test]
    fn parses_entries_and_matches_paths() {
        let a = Allowlist::parse(GOOD).unwrap();
        assert_eq!(a.entries().len(), 2);
        assert_eq!(a.matches("crates/mc-obs/src/lib.rs", Code::D002), Some(0));
        assert_eq!(a.matches("crates/mc-obs/src/lib.rs", Code::D001), None);
        assert_eq!(
            a.matches("crates/bench/src/bin/fig5.rs", Code::U002),
            Some(1)
        );
        assert_eq!(a.matches("crates/bench/src/lib.rs", Code::U002), None);
    }

    #[test]
    fn rejects_missing_or_empty_fields() {
        assert!(
            Allowlist::parse("[[allow]]\npath = \"x\"\ncodes = [\"D001\"]\n")
                .unwrap_err()
                .contains("without a `reason`")
        );
        assert!(
            Allowlist::parse("[[allow]]\npath = \"x\"\nreason = \"r\"\n")
                .unwrap_err()
                .contains("without `codes`")
        );
        assert!(
            Allowlist::parse("[[allow]]\ncodes = [\"D001\"]\nreason = \"r\"\n")
                .unwrap_err()
                .contains("without a `path`")
        );
    }

    #[test]
    fn rejects_non_source_codes_and_unknown_keys() {
        let err = Allowlist::parse("[[allow]]\npath = \"x\"\ncodes = [\"T001\"]\nreason = \"r\"\n")
            .unwrap_err();
        assert!(err.contains("not a source-pass code"), "{err}");
        let err = Allowlist::parse("[[allow]]\npath = \"x\"\nseverity = \"high\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = Allowlist::parse("[general]\nfoo = 1\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
    }

    #[test]
    fn rejects_unknown_codes_and_stray_keys() {
        let err = Allowlist::parse("[[allow]]\npath = \"x\"\ncodes = [\"D999\"]\nreason = \"r\"\n")
            .unwrap_err();
        assert!(err.contains("unknown code"), "{err}");
        let err = Allowlist::parse("path = \"x\"\n").unwrap_err();
        assert!(err.contains("outside an [[allow]]"), "{err}");
    }

    #[test]
    fn empty_allowlist_matches_nothing() {
        assert_eq!(Allowlist::empty().matches("any", Code::D001), None);
        assert_eq!(Allowlist::parse("").unwrap(), Allowlist::empty());
    }
}
