//! The determinism (`D0xx`) and soundness (`U0xx`) rules over scanned
//! source files.
//!
//! Every rule is a lexical heuristic on blanked code (see
//! [`super::scanner`]): deliberately simple, deterministic, and
//! documented as under-approximate — a rule that cannot see types errs
//! toward silence, and the per-file allowlist in `lint.toml` handles the
//! justified exceptions it does flag.

use super::allowlist::Allowlist;
use super::scanner::{ScannedFile, ScannedLine};
use crate::diag::{Code, Diagnostic};

/// Integer types a float must not be cast to without explicit rounding.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Evidence that a statement computes in floating point.
const FLOAT_MARKERS: &[&str] = &["f64", "f32", "as_secs_f64", "as_secs_f32"];

/// Explicit-rounding (or bit-level) calls that make a float→int cast
/// well-defined and reviewable.
const ROUNDING_MARKERS: &[&str] = &["round", "ceil", "floor", "trunc", "clamp", "to_bits"];

/// Identifiers whose presence means randomness came from the
/// environment, not a seed.
const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng", "ThreadId"];

/// The result of linting one file: findings plus, per allowlist entry,
/// how many findings it suppressed (for the stale-entry check).
#[derive(Debug, Clone)]
pub struct FileFindings {
    /// The diagnostics, in (line, rule) order.
    pub diagnostics: Vec<Diagnostic>,
    /// `suppressed[k]` counts findings suppressed by allowlist entry `k`.
    pub suppressed: Vec<usize>,
}

/// Lints one scanned file under an allowlist.
#[must_use]
pub fn lint_file(file: &ScannedFile, allow: &Allowlist) -> FileFindings {
    let mut out = FileFindings {
        diagnostics: Vec::new(),
        suppressed: vec![0; allow.entries().len()],
    };
    let file_mentions_hash = file
        .lines
        .iter()
        .filter(|l| !l.in_test)
        .any(|l| contains_word(&l.code, "HashMap") || contains_word(&l.code, "HashSet"));

    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let number = idx + 1;
        let mut emit = |code: Code, message: String| match allow.matches(&file.rel_path, code) {
            Some(entry) => out.suppressed[entry] += 1,
            None => out.diagnostics.push(Diagnostic::new(
                code,
                format!("src:{}:{number}", file.rel_path),
                message,
            )),
        };

        check_hash_collections(line, &mut emit);
        check_wall_clock(line, &mut emit);
        check_entropy(line, &mut emit);
        check_unordered_reduction(file, idx, file_mentions_hash, &mut emit);
        check_unsafe(file, idx, &mut emit);
        check_float_casts(file, idx, &mut emit);
        if !file.is_bin {
            check_panics(file, idx, &mut emit);
        }
    }
    out
}

/// D001 — `HashMap`/`HashSet` in library code.
fn check_hash_collections(line: &ScannedLine, emit: &mut impl FnMut(Code, String)) {
    for name in ["HashMap", "HashSet"] {
        if contains_word(&line.code, name) {
            emit(
                Code::D001,
                format!(
                    "`{name}` has a nondeterministic iteration order; use the BTree \
                     equivalent or sort before iterating (allowlist membership-only uses)"
                ),
            );
        }
    }
}

/// D002 — `Instant::now` / `SystemTime` wall-clock reads.
fn check_wall_clock(line: &ScannedLine, emit: &mut impl FnMut(Code, String)) {
    let dense = strip_ws(&line.code);
    if dense.contains("Instant::now(") {
        emit(
            Code::D002,
            "`Instant::now()` reads the wall clock; results must not depend on it \
             (timing-only modules belong in the lint.toml allowlist)"
                .to_string(),
        );
    }
    if contains_word(&line.code, "SystemTime") {
        emit(
            Code::D002,
            "`SystemTime` reads the wall clock; results must not depend on it \
             (timing-only modules belong in the lint.toml allowlist)"
                .to_string(),
        );
    }
}

/// D003 — unseeded or environment-derived randomness.
fn check_entropy(line: &ScannedLine, emit: &mut impl FnMut(Code, String)) {
    for name in ENTROPY_SOURCES {
        if contains_word(&line.code, name) {
            emit(
                Code::D003,
                format!(
                    "`{name}` draws from the environment; every random stream must \
                     derive from an explicit seed (see the core seed contract)"
                ),
            );
        }
    }
    if strip_ws(&line.code).contains("rand::random(") {
        emit(
            Code::D003,
            "`rand::random()` is thread-local and unseeded; derive values from an \
             explicit seeded RNG instead"
                .to_string(),
        );
    }
}

/// D004 — float reduction over an unordered iterator. Fires when the
/// enclosing statement shows float evidence, a reduction, and unordered
/// hash iteration (directly or via `.values()`/`.keys()` in a file that
/// uses hash collections).
fn check_unordered_reduction(
    file: &ScannedFile,
    idx: usize,
    file_mentions_hash: bool,
    emit: &mut impl FnMut(Code, String),
) {
    let line = &file.lines[idx];
    let dense = strip_ws(&line.code);
    let reduces = [".sum(", ".sum::<", ".product(", ".product::<", ".fold("]
        .iter()
        .any(|m| dense.contains(m));
    if !reduces {
        return;
    }
    let stmt = statement_around(file, idx);
    let stmt_dense = strip_ws(&stmt);
    let float = FLOAT_MARKERS.iter().any(|m| contains_word(&stmt, m)) || has_float_literal(&stmt);
    if !float {
        return;
    }
    let direct_hash = contains_word(&stmt, "HashMap") || contains_word(&stmt, "HashSet");
    let via_views = file_mentions_hash
        && [".values(", ".keys(", ".iter(", ".drain(", ".into_iter("]
            .iter()
            .any(|m| stmt_dense.contains(m));
    if direct_hash || via_views {
        emit(
            Code::D004,
            "float reduction over an unordered iterator: accumulation order changes \
             the rounded result; iterate a sorted view instead"
                .to_string(),
        );
    }
}

/// U001 — `unsafe` without a `// SAFETY:` justification in the
/// preceding comments (same line or up to 4 lines above).
fn check_unsafe(file: &ScannedFile, idx: usize, emit: &mut impl FnMut(Code, String)) {
    if !contains_word(&file.lines[idx].code, "unsafe") {
        return;
    }
    let from = idx.saturating_sub(4);
    let justified = file.lines[from..=idx]
        .iter()
        .any(|l| l.comment.contains("SAFETY:"));
    if !justified {
        emit(
            Code::U001,
            "`unsafe` without a `// SAFETY:` comment in the preceding lines; state \
             the invariant that makes this sound"
                .to_string(),
        );
    }
}

/// U002 — float→int `as` cast without explicit rounding: the cast's
/// operand expression shows float evidence but no rounding call. Only
/// the operand is examined — evidence elsewhere in the statement (a
/// neighbouring `as f64`, an `f64` field in a nearby struct) says
/// nothing about what *this* cast truncates.
fn check_float_casts(file: &ScannedFile, idx: usize, emit: &mut impl FnMut(Code, String)) {
    let line = &file.lines[idx];
    let code = &line.code;
    let mut search_from = 0usize;
    while let Some(pos) = find_word_from(code, "as", search_from) {
        search_from = pos + 2;
        let target: String = code[pos + 2..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !INT_TYPES.contains(&target.as_str()) {
            continue;
        }
        // The enclosing statement's text up to this cast (earlier lines
        // plus this line's prefix), then narrowed to the operand.
        let mut prefix = statement_before(file, idx);
        prefix.push_str(&code[..pos]);
        let operand = cast_operand(&prefix);
        let float =
            FLOAT_MARKERS.iter().any(|m| contains_word(operand, m)) || has_float_literal(operand);
        let rounded = ROUNDING_MARKERS.iter().any(|m| contains_word(operand, m));
        if float && !rounded {
            emit(
                Code::U002,
                format!(
                    "float value cast to `{target}` with `as` truncates toward zero \
                     and saturates silently; make the rounding explicit \
                     (`.round()`/`.floor()`/`.ceil()`) or clamp first"
                ),
            );
        }
    }
}

/// U003/U004 — `.unwrap()` and `.expect(..)` in library code. A
/// one-argument `.expect("…")` with a string-literal message is the
/// sanctioned, documented panic form (U004, informational); a bare
/// `.unwrap()` or an `.expect(..)` whose single argument is not a string
/// literal is U003. Calls with two or more arguments, and calls whose
/// result is propagated with `?`, are domain methods that merely share
/// the name (std's `expect` returns `T`, never `Result`), and are
/// skipped.
fn check_panics(file: &ScannedFile, idx: usize, emit: &mut impl FnMut(Code, String)) {
    let line = &file.lines[idx];
    let dense = strip_ws(&line.code);
    let mut from = 0usize;
    while let Some(p) = dense[from..].find(".unwrap()") {
        from += p + ".unwrap()".len();
        emit(
            Code::U003,
            "`.unwrap()` in library code panics without a documented invariant; \
             return an error or use `.expect(\"<invariant>\")`"
                .to_string(),
        );
    }
    let mut search = 0usize;
    while let Some(p) = dense[search..].find(".expect(") {
        let open = search + p + ".expect(".len() - 1;
        search = open;
        // The argument list may continue on following lines: join the
        // statement's remaining dense text.
        let mut text = dense[open..].to_string();
        for next in file.lines.iter().skip(idx + 1).take(10) {
            if text.matches('(').count() > text.matches(')').count() {
                text.push_str(&strip_ws(&next.code));
            } else {
                break;
            }
        }
        match expect_args(&text) {
            Some((args, _)) if args.len() >= 2 => {} // domain method, not Option/Result::expect
            Some((_, end)) if text[end..].starts_with('?') => {} // returns Result — domain method
            Some((args, _)) if args.len() == 1 && args[0].starts_with('"') => emit(
                Code::U004,
                "documented `.expect(\"…\")` panic in library code (inventory; \
                 allow U004 to silence)"
                    .to_string(),
            ),
            _ => emit(
                Code::U003,
                "`.expect(..)` without a string-literal message does not document \
                 its invariant; use `.expect(\"<invariant>\")` or return an error"
                    .to_string(),
            ),
        }
    }
}

/// Splits the parenthesised argument list starting at `text[0] == '('`
/// into top-level comma-separated arguments, plus the byte index just
/// past the closing `)`. Returns `None` when the list never closes in
/// the joined text.
fn expect_args(text: &str) -> Option<(Vec<String>, usize)> {
    debug_assert!(text.starts_with('('));
    let mut depth = 0usize;
    let mut args: Vec<String> = vec![String::new()];
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                if depth > 1 {
                    args.last_mut().expect("args starts non-empty").push(c);
                }
            }
            ')' | ']' | '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    let list: Vec<String> = args.into_iter().filter(|a| !a.is_empty()).collect();
                    return Some((list, i + c.len_utf8()));
                }
                args.last_mut().expect("args starts non-empty").push(c);
            }
            ',' if depth == 1 => args.push(String::new()),
            _ => args.last_mut().expect("args starts non-empty").push(c),
        }
    }
    None
}

/// The text of the statement containing line `idx` (split on `;`),
/// capped at 10 lines in each direction.
fn statement_around(file: &ScannedFile, idx: usize) -> String {
    let mut text = statement_before(file, idx);
    text.push_str(&file.lines[idx].code);
    let mut depth_guard = 0;
    if !file.lines[idx].code.contains(';') {
        for next in file.lines.iter().skip(idx + 1).take(10) {
            text.push('\n');
            text.push_str(&next.code);
            depth_guard += 1;
            if next.code.contains(';') || depth_guard >= 10 {
                break;
            }
        }
    }
    text
}

/// The statement text *before* line `idx`: preceding lines back to the
/// last `;` (exclusive), capped at 10 lines.
fn statement_before(file: &ScannedFile, idx: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for prev in file.lines[..idx].iter().rev().take(10) {
        match prev.code.rfind(';') {
            Some(p) => {
                parts.push(&prev.code[p + 1..]);
                break;
            }
            None => parts.push(&prev.code),
        }
    }
    parts.reverse();
    let mut text = parts.join("\n");
    if !text.is_empty() {
        text.push('\n');
    }
    text
}

/// Whether `text` contains `word` delimited by non-identifier chars.
pub fn contains_word(text: &str, word: &str) -> bool {
    find_word_from(text, word, 0).is_some()
}

/// Finds `word` at an identifier boundary, starting at byte `from`.
fn find_word_from(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut start = from;
    while let Some(p) = text.get(start..).and_then(|t| t.find(word)) {
        let pos = start + p;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + word.len();
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Removes all whitespace (for token-sequence matching).
fn strip_ws(text: &str) -> String {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Whether the text contains a float literal: `digit . digit` or an
/// exponent form (`1e9`, `1e-9`).
fn has_float_literal(text: &str) -> bool {
    let b = text.as_bytes();
    let mut i = 0;
    while i < b.len() {
        // Hex/binary/octal literals are skipped whole: the `E` in
        // `0x9E37` is a hex digit, not an exponent.
        if b[i] == b'0'
            && i + 1 < b.len()
            && matches!(b[i + 1], b'x' | b'X' | b'b' | b'B' | b'o' | b'O')
        {
            i += 2;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            continue;
        }
        if b[i].is_ascii_digit() && i + 2 < b.len() {
            let (c1, c2) = (b[i + 1], b[i + 2]);
            if (c1 == b'.' && c2.is_ascii_digit())
                || ((c1 == b'e' || c1 == b'E') && (c2.is_ascii_digit() || c2 == b'-' || c2 == b'+'))
            {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// The operand expression immediately before an `as` cast: scans
/// `prefix` backwards, balancing brackets, stopping at an operator,
/// separator, or statement boundary at depth zero. `-` is kept so a
/// negated literal (`-1.5 as i64`) stays in the operand.
fn cast_operand(prefix: &str) -> &str {
    let b = prefix.as_bytes();
    let mut depth = 0usize;
    let mut i = b.len();
    while i > 0 {
        match b[i - 1] {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'=' | b'{' | b'}' | b'+' | b'*' | b'/' | b'%' | b'&' | b'|' | b'<'
            | b'>' | b'!' | b'?'
                if depth == 0 =>
            {
                break;
            }
            _ => {}
        }
        i -= 1;
    }
    &prefix[i..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    fn findings(rel: &str, src: &str) -> Vec<(Code, usize)> {
        let file = ScannedFile::scan(rel, src);
        lint_file(&file, &Allowlist::empty())
            .diagnostics
            .into_iter()
            .map(|d| {
                let line = d
                    .source
                    .rsplit(':')
                    .next()
                    .and_then(|n| n.parse().ok())
                    .expect("source label ends with the line number");
                (d.code, line)
            })
            .collect()
    }

    fn lib(src: &str) -> Vec<(Code, usize)> {
        findings("crates/demo/src/lib.rs", src)
    }

    #[test]
    fn hashmap_in_lib_code_is_d001() {
        let f =
            lib("use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n");
        assert_eq!(f, vec![(Code::D001, 1), (Code::D001, 2)]);
    }

    #[test]
    fn hashmap_in_test_or_comment_is_clean() {
        let f = lib("// a HashMap here is fine\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_is_d002() {
        let f = lib("fn f() { let t = std::time::Instant::now(); }\n");
        assert_eq!(f, vec![(Code::D002, 1)]);
        let f = lib("use std::time::SystemTime;\n");
        assert_eq!(f, vec![(Code::D002, 1)]);
    }

    #[test]
    fn entropy_sources_are_d003() {
        let f = lib("fn f() { let mut rng = rand::thread_rng(); }\n");
        assert_eq!(f, vec![(Code::D003, 1)]);
        let f = lib("fn f() -> f64 { rand::random() }\n");
        assert_eq!(f, vec![(Code::D003, 1)]);
    }

    #[test]
    fn float_sum_over_hash_values_is_d004() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f64>) -> f64 {\n    m.values().sum::<f64>()\n}\n";
        let f = lib(src);
        assert!(f.contains(&(Code::D004, 3)), "{f:?}");
    }

    #[test]
    fn int_count_over_hash_is_not_d004() {
        let src = "use std::collections::HashSet;\nfn f(s: &HashSet<u64>) -> u64 {\n    s.iter().copied().sum()\n}\n";
        let f = lib(src);
        assert!(!f.iter().any(|&(c, _)| c == Code::D004), "{f:?}");
    }

    #[test]
    fn unsafe_without_safety_is_u001() {
        let f = lib("fn f(p: *const u8) -> u8 { unsafe { *p } }\n");
        assert_eq!(f, vec![(Code::U001, 1)]);
    }

    #[test]
    fn unsafe_with_safety_comment_is_clean() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn unrounded_float_cast_is_u002() {
        let f = lib("fn f(x: f64) -> u64 { (x * 2.0) as u64 }\n");
        assert_eq!(f, vec![(Code::U002, 1)]);
    }

    #[test]
    fn rounded_or_integer_casts_are_clean() {
        assert!(lib("fn f(x: f64) -> u64 { x.round() as u64 }\n").is_empty());
        assert!(lib("fn f(n: usize) -> u64 { n as u64 }\n").is_empty());
        assert!(lib("fn f(x: f64) -> f64 { x as f64 }\n").is_empty());
    }

    #[test]
    fn unwrap_in_lib_is_u003_and_documented_expect_is_u004() {
        let f = lib("fn f(o: Option<u8>) -> u8 { o.unwrap() }\n");
        assert_eq!(f, vec![(Code::U003, 1)]);
        let f = lib("fn f(o: Option<u8>) -> u8 { o.expect(\"always set by new()\") }\n");
        assert_eq!(f, vec![(Code::U004, 1)]);
    }

    #[test]
    fn domain_expect_methods_are_skipped() {
        // Two-argument expect is a parser-style domain method.
        let f = lib("fn f(p: &mut P) { p.expect(Tok::Eq, \"after key\"); }\n");
        assert!(f.is_empty(), "{f:?}");
        // One non-string argument is an undocumented panic.
        let f = lib("fn f(p: &mut P) { p.expect(b'{'); }\n");
        assert_eq!(f, vec![(Code::U003, 1)]);
    }

    #[test]
    fn multiline_expect_message_is_u004() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.expect(\n        \"set by construction\",\n    )\n}\n";
        let f = lib(src);
        assert_eq!(f, vec![(Code::U004, 2)]);
    }

    #[test]
    fn bins_may_unwrap_but_not_use_hash_collections() {
        let src = "use std::collections::HashMap;\nfn main() { foo().unwrap(); }\n";
        let f = findings("crates/bench/src/bin/demo.rs", src);
        assert_eq!(f, vec![(Code::D001, 1)]);
    }

    #[test]
    fn unwrap_in_test_module_is_clean() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { foo().unwrap(); }\n}\n";
        assert!(lib(src).is_empty());
    }
}
