//! Task-set linting (`T0xx` diagnostics): per-task model invariants,
//! Chebyshev preconditions, and set-level schedulability sanity.
//!
//! The pass accepts *any* [`TaskSet`], including ones deserialised without
//! revalidation, so a hand-edited workload with `C_LO > C_HI` is lintable
//! rather than merely rejected. Structural impossibilities are errors;
//! states that legitimate policies produce (an ACET above `C_LO` under a
//! λ-fraction baseline, `U^LO > 1` in an acceptance-ratio sweep) are
//! warnings.

use crate::diag::{Code, Diagnostic, LintReport};
use mc_sched::analysis::edf_vd;
use mc_task::{McTask, TaskSet};

fn task_source(t: &McTask) -> String {
    if t.name().is_empty() {
        format!("task {}", t.id())
    } else {
        format!("task {} ({})", t.id(), t.name())
    }
}

fn lint_task(t: &McTask, report: &mut LintReport) {
    let src = task_source(t);

    // T004: ordering of the timing parameters.
    if t.period().is_zero() {
        report.push(Diagnostic::new(Code::T004, src.clone(), "period is zero"));
    }
    if t.deadline().is_zero() {
        report.push(Diagnostic::new(Code::T004, src.clone(), "deadline is zero"));
    } else if t.deadline() > t.period() {
        report.push(Diagnostic::new(
            Code::T004,
            src.clone(),
            format!(
                "deadline {} exceeds period {} (the model is constrained-deadline)",
                t.deadline(),
                t.period(),
            ),
        ));
    }
    if t.c_lo().is_zero() {
        report.push(Diagnostic::new(
            Code::T004,
            src.clone(),
            "optimistic budget C_LO is zero",
        ));
    }
    if t.c_hi() > t.deadline() && !t.deadline().is_zero() {
        report.push(Diagnostic::new(
            Code::T004,
            src.clone(),
            format!(
                "pessimistic budget C_HI {} exceeds the deadline {}",
                t.c_hi(),
                t.deadline(),
            ),
        ));
    }

    // T001: inverted budgets make every mode-switch argument unsound.
    if t.c_lo() > t.c_hi() {
        report.push(Diagnostic::new(
            Code::T001,
            src.clone(),
            format!(
                "C_LO {} exceeds C_HI {}; LO-mode demand would exceed \
                 HI-mode demand",
                t.c_lo(),
                t.c_hi(),
            ),
        ));
    }

    match t.profile() {
        Some(p) => {
            if !t.is_high() {
                report.push(Diagnostic::new(
                    Code::T011,
                    src.clone(),
                    "low-criticality task carries an execution profile; \
                     WCET assignment ignores it",
                ));
            }
            // T003: the (ACET, σ) pair must describe a distribution.
            let finite = p.acet().is_finite() && p.sigma().is_finite() && p.wcet_pes().is_finite();
            if !finite {
                report.push(Diagnostic::new(
                    Code::T003,
                    src.clone(),
                    "profile contains non-finite values",
                ));
            } else {
                if p.acet() <= 0.0 {
                    report.push(Diagnostic::new(
                        Code::T003,
                        src.clone(),
                        format!("ACET {} must be strictly positive", p.acet()),
                    ));
                }
                if p.sigma() < 0.0 {
                    report.push(Diagnostic::new(
                        Code::T003,
                        src.clone(),
                        format!("σ {} must be non-negative", p.sigma()),
                    ));
                }
                // T005: Eq. 9 needs WCET_pes ≥ ACET, otherwise no
                // Chebyshev factor n ≥ 0 exists.
                if p.wcet_pes() < p.acet() && p.acet() > 0.0 {
                    report.push(Diagnostic::new(
                        Code::T005,
                        src.clone(),
                        format!(
                            "pessimistic WCET {} is below the ACET {}: the \
                             Chebyshev range [ACET, WCET_pes] is empty",
                            p.wcet_pes(),
                            p.acet(),
                        ),
                    ));
                }
                // T002: C_LO below the mean means the task overruns its
                // optimistic budget more often than not. Legitimate for
                // λ-fraction baselines, hence a warning.
                let c_lo_ns = t.c_lo().as_nanos() as f64;
                if p.acet() > 0.0 && p.acet() > c_lo_ns {
                    report.push(Diagnostic::new(
                        Code::T002,
                        src.clone(),
                        format!(
                            "ACET {:.0} ns exceeds C_LO {:.0} ns: the task \
                             overruns its optimistic budget on average",
                            p.acet(),
                            c_lo_ns,
                        ),
                    ));
                }
                // T012: profile and task disagree about the HI budget.
                let c_hi_ns = t.c_hi().as_nanos() as f64;
                if t.is_high() && (p.wcet_pes() - c_hi_ns).abs() > 1.0 {
                    report.push(Diagnostic::new(
                        Code::T012,
                        src.clone(),
                        format!(
                            "profile WCET_pes {:.0} ns disagrees with C_HI \
                             {:.0} ns",
                            p.wcet_pes(),
                            c_hi_ns,
                        ),
                    ));
                }
            }
        }
        None => {
            // T006: without (ACET, σ) the paper's scheme cannot assign
            // this task an optimistic WCET.
            if t.is_high() {
                report.push(Diagnostic::new(
                    Code::T006,
                    src.clone(),
                    "high-criticality task has no execution profile; \
                     Chebyshev WCET assignment must skip it",
                ));
            }
        }
    }
}

/// Lints a task set: every task individually, then set-level properties.
#[must_use]
pub fn lint_taskset(ts: &TaskSet) -> LintReport {
    let mut report = LintReport::new();

    // T007: duplicate ids (possible in raw-deserialised sets).
    for (i, a) in ts.iter().enumerate() {
        if ts.iter().skip(i + 1).any(|b| b.id() == a.id()) {
            report.push(Diagnostic::new(
                Code::T007,
                task_source(a),
                format!("task id {} appears more than once", a.id()),
            ));
        }
    }

    for t in ts.iter() {
        lint_task(t, &mut report);
    }

    // T008: nothing to schedule, or nothing for the MC argument to protect.
    if ts.is_empty() {
        report.push(Diagnostic::new(Code::T008, "task set", "task set is empty"));
    } else if ts.hc_count() == 0 {
        report.push(Diagnostic::new(
            Code::T008,
            "task set",
            "task set has no high-criticality tasks; mixed-criticality \
             analysis degenerates to plain EDF",
        ));
    }

    if !ts.is_empty() {
        // T009: overload already in LO mode.
        let u_lo = ts.u_total_lo();
        if u_lo > 1.0 + 1e-9 {
            report.push(Diagnostic::new(
                Code::T009,
                "task set",
                format!(
                    "total LO-mode utilization {u_lo:.3} exceeds 1: the set \
                     is EDF-infeasible before any mode switch",
                ),
            ));
        }

        // T010: EDF-VD's Eq. 8 preconditions, including the x ∈ (0, 1]
        // deadline-shrinking factor.
        if ts.hc_count() > 0 {
            let a = edf_vd::analyze(ts);
            if !a.schedulable {
                let detail = match a.x {
                    None => "no deadline-shrinking factor x in (0, 1] exists".to_string(),
                    Some(x) => format!("x = {x:.3} exists but Eq. 8 still fails"),
                };
                report.push(Diagnostic::new(
                    Code::T010,
                    "task set",
                    format!(
                        "EDF-VD preconditions fail (U_HC^LO = {:.3}, \
                         U_HC^HI = {:.3}, U_LC^LO = {:.3}): {detail}",
                        a.u_hc_lo, a.u_hc_hi, a.u_lc_lo,
                    ),
                ));
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};

    fn hc(id: u32, period_ms: u64, c_lo_ms: u64, c_hi_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(period_ms))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(c_hi_ms))
            .profile(
                ExecutionProfile::new(
                    c_lo_ms as f64 * 0.5e6,
                    c_lo_ms as f64 * 0.1e6,
                    c_hi_ms as f64 * 1e6,
                )
                .unwrap(),
            )
            .build()
            .unwrap()
    }

    fn lc(id: u32, period_ms: u64, c_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .period(Duration::from_millis(period_ms))
            .c_lo(Duration::from_millis(c_ms))
            .build()
            .unwrap()
    }

    #[test]
    fn valid_set_is_clean() {
        let ts = TaskSet::from_tasks(vec![hc(0, 100, 10, 40), lc(1, 200, 20)]).unwrap();
        let report = lint_taskset(&ts);
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn inverted_budgets_via_raw_deserialisation_raise_t001() {
        let good = TaskSet::from_tasks(vec![hc(0, 100, 10, 40)]).unwrap();
        let json = serde_json::to_string(&good).unwrap();
        // c_lo 10 ms → 90 ms, past c_hi = 40 ms.
        let evil = json.replacen("10000000", "90000000", 1);
        let ts: TaskSet = serde_json::from_str(&evil).unwrap();
        let report = lint_taskset(&ts);
        assert!(report.iter().any(|d| d.code == Code::T001));
        // C_HI < C_LO also puts C_LO past the deadline? No — but ACET
        // moved below the new C_LO, so no T002 either way; just require
        // the error.
        assert!(report.has_errors());
    }

    #[test]
    fn hc_task_without_profile_warns_t006() {
        let t = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .build()
            .unwrap();
        let ts = TaskSet::from_tasks(vec![t]).unwrap();
        let report = lint_taskset(&ts);
        assert!(report.iter().any(|d| d.code == Code::T006));
        assert!(!report.has_errors());
    }

    #[test]
    fn acet_above_c_lo_warns_t002() {
        // λ-style assignment: C_LO = 4 ms but ACET = 5 ms.
        let mut t = hc(0, 100, 10, 40);
        t.set_c_lo(Duration::from_millis(4)).unwrap();
        let ts = TaskSet::from_tasks(vec![t]).unwrap();
        let report = lint_taskset(&ts);
        let t002: Vec<_> = report.iter().filter(|d| d.code == Code::T002).collect();
        assert_eq!(t002.len(), 1, "{}", report.render_human());
        assert_eq!(t002[0].severity, crate::Severity::Warning);
    }

    #[test]
    fn duplicate_ids_raise_t007() {
        let good = TaskSet::from_tasks(vec![hc(0, 100, 10, 40), lc(1, 200, 20)]).unwrap();
        let json = serde_json::to_string(&good)
            .unwrap()
            .replace("\"id\":1", "\"id\":0");
        let ts: TaskSet = serde_json::from_str(&json).unwrap();
        let report = lint_taskset(&ts);
        assert!(report.iter().any(|d| d.code == Code::T007), "{json}");
    }

    #[test]
    fn empty_set_warns_t008() {
        let report = lint_taskset(&TaskSet::new());
        assert_eq!(report.codes(), vec![Code::T008]);
        assert!(!report.has_errors());
    }

    #[test]
    fn lc_only_set_warns_t008() {
        let ts = TaskSet::from_tasks(vec![lc(0, 100, 10)]).unwrap();
        let report = lint_taskset(&ts);
        assert!(report.iter().any(|d| d.code == Code::T008));
    }

    #[test]
    fn overload_warns_t009_and_t010() {
        let ts = TaskSet::from_tasks(vec![
            hc(0, 100, 60, 90),
            lc(1, 100, 60), // U_LO = 0.6 + 0.6 = 1.2
        ])
        .unwrap();
        let report = lint_taskset(&ts);
        assert!(report.iter().any(|d| d.code == Code::T009));
        assert!(report.iter().any(|d| d.code == Code::T010));
        assert!(!report.has_errors(), "overload is a warning, not an error");
    }

    #[test]
    fn edf_vd_schedulable_set_has_no_t010() {
        let ts = TaskSet::from_tasks(vec![hc(0, 100, 10, 40), lc(1, 200, 20)]).unwrap();
        assert!(!lint_taskset(&ts).iter().any(|d| d.code == Code::T010));
    }

    mod properties {
        use super::*;
        use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Generated sets obey every *error*-level invariant; only
            /// warnings/infos may appear (e.g. T010 at high bounds).
            #[test]
            fn generated_sets_have_no_lint_errors(
                seed in 0u64..5_000,
                bound in 0.1..1.4f64,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let ts = generate_mixed_taskset(bound, &GeneratorConfig::default(), &mut rng)
                    .unwrap();
                let report = lint_taskset(&ts);
                prop_assert!(!report.has_errors(), "{}", report.render_human());
            }
        }
    }
}
