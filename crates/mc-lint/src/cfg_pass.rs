//! CFG structural analysis: dominators, natural loops, reducibility,
//! reachability, and loop-bound placement (`C0xx` diagnostics).
//!
//! The pass re-derives the same structure the WCET analyser in `mc_exec`
//! relies on — Cooper–Harvey–Kennedy immediate dominators over a reverse
//! postorder, back edges `u → v` where `v` dominates `u`, natural loops as
//! back-edge targets — but reports *why* a graph is unanalysable instead of
//! failing late inside the longest-path computation. A back edge whose
//! header carries no `set_loop_bound` is an error here ([`Code::C005`]),
//! not an eventual `ExecError::MissingLoopBound` deep in IPET.

use crate::diag::{Code, Diagnostic, LintReport};
use mc_exec::cfg::{Cfg, NodeId};

/// Everything the pass derives about one CFG; exposed so tests (and future
/// passes) can assert on structure, not just on diagnostics.
#[derive(Debug, Clone)]
pub struct CfgStructure {
    /// Immediate dominator per node index; `None` for unreachable or dead
    /// nodes. The entry is its own immediate dominator.
    pub idom: Vec<Option<usize>>,
    /// Live node indices reachable from the entry.
    pub reachable: Vec<bool>,
    /// Back edges `(tail, header)` under the dominance definition.
    pub back_edges: Vec<(usize, usize)>,
    /// Distinct loop headers, in discovery order.
    pub headers: Vec<usize>,
    /// Whether the reachable subgraph is reducible (removing the dominator
    /// back edges leaves a DAG).
    pub reducible: bool,
}

impl CfgStructure {
    /// Whether `a` dominates `b` (both must be reachable).
    #[must_use]
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur] {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }
}

/// Human-readable label for a node: `name (nK)`.
fn label(cfg: &Cfg, idx: usize) -> String {
    let id = cfg
        .node_ids()
        .nth(idx)
        .expect("index comes from this graph");
    match cfg.node_name(id) {
        Ok(name) if !name.is_empty() => format!("{name} ({id})"),
        _ => id.to_string(),
    }
}

fn source(context: &str, cfg: &Cfg, idx: usize) -> String {
    format!("cfg:{context}/{}", label(cfg, idx))
}

/// Adjacency restricted to live nodes, as raw indices.
fn live_successors(cfg: &Cfg, idx: usize) -> Vec<usize> {
    let id = cfg
        .node_ids()
        .nth(idx)
        .expect("index comes from this graph");
    if !cfg.is_alive(id).unwrap_or(false) {
        return Vec::new();
    }
    cfg.successors(id)
        .map(|it| {
            it.filter(|&s| cfg.is_alive(s).unwrap_or(false))
                .map(NodeId::index)
                .collect()
        })
        .unwrap_or_default()
}

fn live_predecessors(cfg: &Cfg, idx: usize) -> Vec<usize> {
    let id = cfg
        .node_ids()
        .nth(idx)
        .expect("index comes from this graph");
    if !cfg.is_alive(id).unwrap_or(false) {
        return Vec::new();
    }
    cfg.predecessors(id)
        .map(|it| {
            it.filter(|&p| cfg.is_alive(p).unwrap_or(false))
                .map(NodeId::index)
                .collect()
        })
        .unwrap_or_default()
}

/// Forward reachability from `start` over live nodes.
fn reach_forward(cfg: &Cfg, start: usize) -> Vec<bool> {
    let n = cfg.node_count();
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start] = true;
    while let Some(u) = stack.pop() {
        for v in live_successors(cfg, u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Backward reachability to `target` over live nodes.
fn reach_backward(cfg: &Cfg, target: usize) -> Vec<bool> {
    let n = cfg.node_count();
    let mut seen = vec![false; n];
    let mut stack = vec![target];
    seen[target] = true;
    while let Some(u) = stack.pop() {
        for v in live_predecessors(cfg, u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    seen
}

/// Reverse postorder of the reachable live subgraph rooted at `entry`
/// (iterative DFS with an explicit child cursor).
fn reverse_postorder(cfg: &Cfg, entry: usize) -> Vec<usize> {
    let n = cfg.node_count();
    let mut visited = vec![false; n];
    let mut post = Vec::new();
    let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(entry, live_successors(cfg, entry), 0)];
    visited[entry] = true;
    while let Some((node, succs, cursor)) = stack.last_mut() {
        if let Some(&next) = succs.get(*cursor) {
            *cursor += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, live_successors(cfg, next), 0));
            }
        } else {
            post.push(*node);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Cooper–Harvey–Kennedy dominator computation over the reachable live
/// subgraph, plus back-edge discovery and a Kahn-toposort reducibility
/// check on the remaining forward edges.
#[must_use]
pub fn analyze_structure(cfg: &Cfg, entry: usize) -> CfgStructure {
    let n = cfg.node_count();
    let rpo = reverse_postorder(cfg, entry);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_index[node] = i;
    }
    let reachable: Vec<bool> = (0..n).map(|i| rpo_index[i] != usize::MAX).collect();

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[entry] = Some(entry);
    let intersect = |idom: &[Option<usize>], rpo_index: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node has an idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node has an idom");
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let preds: Vec<usize> = live_predecessors(cfg, b)
                .into_iter()
                .filter(|&p| reachable[p])
                .collect();
            let mut new_idom: Option<usize> = None;
            for &p in &preds {
                if idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, &rpo_index, p, cur),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    let structure_probe = CfgStructure {
        idom: idom.clone(),
        reachable: reachable.clone(),
        back_edges: Vec::new(),
        headers: Vec::new(),
        reducible: true,
    };
    let mut back_edges = Vec::new();
    let mut headers = Vec::new();
    for &u in &rpo {
        for v in live_successors(cfg, u) {
            if reachable[v] && structure_probe.dominates(v, u) {
                back_edges.push((u, v));
                if !headers.contains(&v) {
                    headers.push(v);
                }
            }
        }
    }

    // Kahn toposort of the reachable subgraph minus the dominator back
    // edges: any leftover node sits on a cycle with no dominating header,
    // i.e. the graph is irreducible.
    let mut indegree = vec![0usize; n];
    let mut forward: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &u in &rpo {
        for v in live_successors(cfg, u) {
            if reachable[v] && !back_edges.contains(&(u, v)) {
                forward[u].push(v);
                indegree[v] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = rpo.iter().copied().filter(|&u| indegree[u] == 0).collect();
    let mut emitted = 0usize;
    while let Some(u) = queue.pop() {
        emitted += 1;
        for &v in &forward[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                queue.push(v);
            }
        }
    }
    let reducible = emitted == rpo.len();

    CfgStructure {
        idom,
        reachable,
        back_edges,
        headers,
        reducible,
    }
}

/// Lints one CFG. `context` names the graph in diagnostic sources (for a
/// benchmark this is the benchmark name, for a file its path).
#[must_use]
pub fn lint_cfg(cfg: &Cfg, context: &str) -> LintReport {
    let mut report = LintReport::new();
    let graph_source = format!("cfg:{context}");

    // C007: edges into or out of collapsed nodes. The public builder API
    // cannot create these, but deserialised graphs can.
    for (from, to) in cfg.edges() {
        let from_alive = cfg.is_alive(from).unwrap_or(false);
        let to_alive = cfg.is_alive(to).unwrap_or(false);
        if !from_alive || !to_alive {
            report.push(Diagnostic::new(
                Code::C007,
                format!("cfg:{context}/{from}->{to}"),
                format!(
                    "edge {from} -> {to} touches a collapsed block ({} dead); \
                     the analyser ignores it",
                    if from_alive { to } else { from },
                ),
            ));
        }
    }

    let entry = cfg.entry();
    let exit = cfg.exit();
    if entry.is_none() {
        report.push(Diagnostic::new(
            Code::C001,
            graph_source.clone(),
            "no entry block is set; call set_entry before analysis",
        ));
    }
    if exit.is_none() {
        report.push(Diagnostic::new(
            Code::C002,
            graph_source,
            "no exit block is set; call set_exit before analysis",
        ));
    }
    let Some(entry) = entry else {
        return report; // Reachability and dominance need an entry.
    };
    let entry_idx = entry.index();

    let forward = reach_forward(cfg, entry_idx);
    for id in cfg.node_ids() {
        let idx = id.index();
        if cfg.is_alive(id).unwrap_or(false) && !forward[idx] {
            report.push(Diagnostic::new(
                Code::C003,
                source(context, cfg, idx),
                format!("block {} is unreachable from the entry", label(cfg, idx)),
            ));
        }
    }
    if let Some(exit) = exit {
        let backward = reach_backward(cfg, exit.index());
        for id in cfg.node_ids() {
            let idx = id.index();
            // Only reachable blocks: unreachable ones already carry C003.
            if cfg.is_alive(id).unwrap_or(false) && forward[idx] && !backward[idx] {
                report.push(Diagnostic::new(
                    Code::C004,
                    source(context, cfg, idx),
                    format!("block {} cannot reach the exit", label(cfg, idx)),
                ));
            }
        }
    }

    let structure = analyze_structure(cfg, entry_idx);
    for &header in &structure.headers {
        let id = cfg
            .node_ids()
            .nth(header)
            .expect("header index comes from this graph");
        match cfg.loop_bound(id).unwrap_or(None) {
            None => {
                let tails: Vec<String> = structure
                    .back_edges
                    .iter()
                    .filter(|&&(_, h)| h == header)
                    .map(|&(t, _)| label(cfg, t))
                    .collect();
                report.push(Diagnostic::new(
                    Code::C005,
                    source(context, cfg, header),
                    format!(
                        "loop header {} (back edge from {}) has no loop bound; \
                         WCET analysis cannot bound this loop",
                        label(cfg, header),
                        tails.join(", "),
                    ),
                ));
            }
            Some(0) => {
                report.push(Diagnostic::new(
                    Code::C009,
                    source(context, cfg, header),
                    format!(
                        "loop at {} has bound 0: the body never executes",
                        label(cfg, header),
                    ),
                ));
            }
            Some(_) => {}
        }
    }

    // C008: a bound on a block that heads no loop is dead annotation —
    // usually a refactoring leftover or a bound attached to the wrong block.
    for id in cfg.node_ids() {
        let idx = id.index();
        if cfg.is_alive(id).unwrap_or(false)
            && structure.reachable[idx]
            && cfg.loop_bound(id).unwrap_or(None).is_some()
            && !structure.headers.contains(&idx)
        {
            report.push(Diagnostic::new(
                Code::C008,
                source(context, cfg, idx),
                format!(
                    "block {} carries a loop bound but heads no loop",
                    label(cfg, idx),
                ),
            ));
        }
    }

    if !structure.reducible {
        report.push(Diagnostic::new(
            Code::C006,
            format!("cfg:{context}"),
            "irreducible control flow: a cycle remains after removing all \
             dominator back edges (multiple-entry loop)",
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_exec::cfg::Cfg;

    /// entry -> header{10} -> body -> header ; header -> exit
    fn bounded_loop() -> Cfg {
        let mut cfg = Cfg::new();
        let entry = cfg.add_node("entry", 5);
        let header = cfg.add_node("header", 2);
        let body = cfg.add_node("body", 7);
        let exit = cfg.add_node("exit", 1);
        cfg.add_edge(entry, header).unwrap();
        cfg.add_edge(header, body).unwrap();
        cfg.add_edge(body, header).unwrap();
        cfg.add_edge(header, exit).unwrap();
        cfg.set_entry(entry).unwrap();
        cfg.set_exit(exit).unwrap();
        cfg.set_loop_bound(header, 10).unwrap();
        cfg
    }

    #[test]
    fn clean_loop_lints_clean() {
        let report = lint_cfg(&bounded_loop(), "demo");
        assert!(report.is_clean(), "{}", report.render_human());
    }

    #[test]
    fn dominators_of_a_diamond() {
        // 0 -> {1, 2} -> 3
        let mut cfg = Cfg::new();
        let a = cfg.add_node("a", 1);
        let b = cfg.add_node("b", 1);
        let c = cfg.add_node("c", 1);
        let d = cfg.add_node("d", 1);
        cfg.add_edge(a, b).unwrap();
        cfg.add_edge(a, c).unwrap();
        cfg.add_edge(b, d).unwrap();
        cfg.add_edge(c, d).unwrap();
        cfg.set_entry(a).unwrap();
        cfg.set_exit(d).unwrap();
        let s = analyze_structure(&cfg, 0);
        assert_eq!(s.idom[0], Some(0));
        assert_eq!(s.idom[1], Some(0));
        assert_eq!(s.idom[2], Some(0));
        assert_eq!(s.idom[3], Some(0), "join point is dominated by the fork");
        assert!(s.dominates(0, 3));
        assert!(!s.dominates(1, 3));
        assert!(s.back_edges.is_empty());
        assert!(s.reducible);
    }

    #[test]
    fn nested_loops_have_two_headers() {
        // entry -> h1 -> h2 -> b -> h2 ; h2 -> h1 ; h1 -> exit
        let mut cfg = Cfg::new();
        let entry = cfg.add_node("entry", 1);
        let h1 = cfg.add_node("h1", 1);
        let h2 = cfg.add_node("h2", 1);
        let b = cfg.add_node("b", 1);
        let exit = cfg.add_node("exit", 1);
        cfg.add_edge(entry, h1).unwrap();
        cfg.add_edge(h1, h2).unwrap();
        cfg.add_edge(h2, b).unwrap();
        cfg.add_edge(b, h2).unwrap();
        cfg.add_edge(h2, h1).unwrap();
        cfg.add_edge(h1, exit).unwrap();
        cfg.set_entry(entry).unwrap();
        cfg.set_exit(exit).unwrap();
        let s = analyze_structure(&cfg, 0);
        assert_eq!(s.headers.len(), 2);
        assert!(s.headers.contains(&h1.index()));
        assert!(s.headers.contains(&h2.index()));
        assert!(s.reducible);

        // Without bounds both headers raise C005.
        let report = lint_cfg(&cfg, "nested");
        let c005: Vec<_> = report.iter().filter(|d| d.code == Code::C005).collect();
        assert_eq!(c005.len(), 2, "{}", report.render_human());

        // Bounding both silences the pass.
        cfg.set_loop_bound(h1, 4).unwrap();
        cfg.set_loop_bound(h2, 8).unwrap();
        assert!(lint_cfg(&cfg, "nested").is_clean());
    }

    #[test]
    fn missing_entry_and_exit_are_errors() {
        let cfg = Cfg::new();
        let report = lint_cfg(&cfg, "empty");
        assert_eq!(report.codes(), vec![Code::C001, Code::C002]);
        assert!(report.has_errors());
    }

    #[test]
    fn unreachable_block_is_reported() {
        let mut cfg = bounded_loop();
        cfg.add_node("orphan", 3);
        let report = lint_cfg(&cfg, "demo");
        assert!(report.iter().any(|d| d.code == Code::C003));
        assert!(report
            .iter()
            .any(|d| d.message.contains("orphan") && d.code == Code::C003));
    }

    #[test]
    fn block_that_cannot_reach_exit_is_reported() {
        let mut cfg = bounded_loop();
        let trap = cfg.add_node("trap", 3);
        let entry = cfg.entry().unwrap();
        cfg.add_edge(entry, trap).unwrap();
        let report = lint_cfg(&cfg, "demo");
        let c004: Vec<_> = report.iter().filter(|d| d.code == Code::C004).collect();
        assert_eq!(c004.len(), 1);
        assert!(c004[0].message.contains("trap"));
    }

    #[test]
    fn unbounded_loop_is_an_error_not_a_late_failure() {
        let mut cfg = bounded_loop();
        // Re-add the same shape without a bound on a second loop.
        let h = cfg.add_node("h2", 1);
        let t = cfg.add_node("t2", 1);
        let entry = cfg.entry().unwrap();
        let exit = cfg.exit().unwrap();
        cfg.add_edge(entry, h).unwrap();
        cfg.add_edge(h, t).unwrap();
        cfg.add_edge(t, h).unwrap();
        cfg.add_edge(h, exit).unwrap();
        let report = lint_cfg(&cfg, "demo");
        let c005: Vec<_> = report.iter().filter(|d| d.code == Code::C005).collect();
        assert_eq!(c005.len(), 1, "{}", report.render_human());
        assert!(c005[0].message.contains("h2"));
        assert!(report.has_errors());
    }

    #[test]
    fn irreducible_graph_is_detected() {
        // Two-entry cycle: entry branches to both b and c, which form a
        // cycle between them. Neither dominates the other.
        let mut cfg = Cfg::new();
        let entry = cfg.add_node("entry", 1);
        let b = cfg.add_node("b", 1);
        let c = cfg.add_node("c", 1);
        let exit = cfg.add_node("exit", 1);
        cfg.add_edge(entry, b).unwrap();
        cfg.add_edge(entry, c).unwrap();
        cfg.add_edge(b, c).unwrap();
        cfg.add_edge(c, b).unwrap();
        cfg.add_edge(b, exit).unwrap();
        cfg.set_entry(entry).unwrap();
        cfg.set_exit(exit).unwrap();
        let s = analyze_structure(&cfg, 0);
        assert!(!s.reducible);
        let report = lint_cfg(&cfg, "irr");
        assert!(report.iter().any(|d| d.code == Code::C006));
    }

    #[test]
    fn stray_loop_bound_is_a_warning() {
        let mut cfg = bounded_loop();
        let entry = cfg.entry().unwrap();
        cfg.set_loop_bound(entry, 3).unwrap();
        let report = lint_cfg(&cfg, "demo");
        let c008: Vec<_> = report.iter().filter(|d| d.code == Code::C008).collect();
        assert_eq!(c008.len(), 1);
        assert!(!report.has_errors());
    }

    #[test]
    fn zero_bound_is_info() {
        let mut cfg = bounded_loop();
        let header = cfg.node_ids().nth(1).unwrap();
        cfg.set_loop_bound(header, 0).unwrap();
        let report = lint_cfg(&cfg, "demo");
        assert!(report.iter().any(|d| d.code == Code::C009));
        assert!(!report.has_errors());
    }

    #[test]
    fn self_loop_is_its_own_header() {
        let mut cfg = Cfg::new();
        let entry = cfg.add_node("entry", 1);
        let spin = cfg.add_node("spin", 1);
        let exit = cfg.add_node("exit", 1);
        cfg.add_edge(entry, spin).unwrap();
        cfg.add_edge(spin, spin).unwrap();
        cfg.add_edge(spin, exit).unwrap();
        cfg.set_entry(entry).unwrap();
        cfg.set_exit(exit).unwrap();
        let s = analyze_structure(&cfg, 0);
        assert_eq!(s.back_edges, vec![(spin.index(), spin.index())]);
        let report = lint_cfg(&cfg, "selfloop");
        assert!(report.iter().any(|d| d.code == Code::C005));
        cfg.set_loop_bound(spin, 6).unwrap();
        assert!(lint_cfg(&cfg, "selfloop").is_clean());
    }

    #[test]
    fn structure_agrees_with_the_wcet_analyser() {
        // The analyser rejects what the linter flags as errors, and accepts
        // what the linter deems clean.
        let clean = bounded_loop();
        assert!(lint_cfg(&clean, "x").is_clean());
        assert!(clean.wcet().is_ok());

        let mut unbounded = bounded_loop();
        let h = unbounded.add_node("h2", 1);
        let entry = unbounded.entry().unwrap();
        let exit = unbounded.exit().unwrap();
        unbounded.add_edge(entry, h).unwrap();
        unbounded.add_edge(h, h).unwrap();
        unbounded.add_edge(h, exit).unwrap();
        assert!(lint_cfg(&unbounded, "x").has_errors());
        assert!(unbounded.wcet().is_err());
    }
}
