//! Scheme-configuration linting (`S0xx` diagnostics): GA hyper-parameters,
//! the Chebyshev problem configuration, and the synthetic task generator.
//!
//! Unlike the crates' own `validate()` methods — which return on the first
//! violation — this pass reports *every* problem at once, so a config file
//! with three mistakes needs one lint run, not three failed runs.

use crate::diag::{Code, Diagnostic, LintReport};
use mc_opt::{GaConfig, ProblemConfig};
use mc_task::generate::GeneratorConfig;

/// Search budgets past this many evaluations get an [`Code::S006`] warning.
const BUDGET_WARN: u64 = 10_000_000;

/// Lints GA hyper-parameters.
#[must_use]
pub fn lint_ga_config(cfg: &GaConfig) -> LintReport {
    let mut report = LintReport::new();
    let src = "ga-config";

    if cfg.population_size < 2 {
        report.push(Diagnostic::new(
            Code::S001,
            src,
            format!(
                "population_size {} is below 2; crossover needs two parents",
                cfg.population_size,
            ),
        ));
    }
    if cfg.generations == 0 {
        report.push(Diagnostic::new(
            Code::S002,
            src,
            "generations is 0; the GA would return the random initial population",
        ));
    }
    for (p, name) in [
        (cfg.crossover_probability, "crossover_probability"),
        (cfg.mutation_probability, "mutation_probability"),
    ] {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            report.push(Diagnostic::new(
                Code::S003,
                src,
                format!("{name} = {p} is outside [0, 1]"),
            ));
        }
    }
    if cfg.tournament_size == 0 || cfg.tournament_size > cfg.population_size {
        report.push(Diagnostic::new(
            Code::S004,
            src,
            format!(
                "tournament_size {} is outside [1, population_size = {}]",
                cfg.tournament_size, cfg.population_size,
            ),
        ));
    }
    if cfg.elitism >= cfg.population_size {
        report.push(Diagnostic::new(
            Code::S005,
            src,
            format!(
                "elitism {} is not smaller than the population {}; no \
                 offspring would ever be admitted",
                cfg.elitism, cfg.population_size,
            ),
        ));
    }
    let budget = cfg.population_size as u64 * cfg.generations as u64;
    if budget > BUDGET_WARN {
        report.push(Diagnostic::new(
            Code::S006,
            src,
            format!(
                "search budget {budget} evaluations ({} × {}) is far beyond \
                 the paper's setup; expect long runtimes",
                cfg.population_size, cfg.generations,
            ),
        ));
    }
    report
}

/// Lints the Chebyshev problem configuration.
#[must_use]
pub fn lint_problem_config(cfg: &ProblemConfig) -> LintReport {
    let mut report = LintReport::new();
    let src = "problem-config";
    if !cfg.factor_cap.is_finite() || cfg.factor_cap <= 0.0 {
        report.push(Diagnostic::new(
            Code::S007,
            src,
            format!("factor_cap {} must be finite and positive", cfg.factor_cap),
        ));
    } else if cfg.factor_cap < 3.0 {
        // Fig. 2 of the paper explores n up to ≈ 30; a cap this low clips
        // the useful part of the 1/(1+n²) curve.
        report.push(Diagnostic::new(
            Code::S008,
            src,
            format!(
                "factor_cap {} is below the paper's operating region \
                 (n ≲ 30); the optimiser cannot reach low violation \
                 probabilities",
                cfg.factor_cap,
            ),
        ));
    }
    report
}

/// Lints the synthetic task-generator configuration, reporting every
/// violated range at once.
#[must_use]
pub fn lint_generator_config(cfg: &GeneratorConfig) -> LintReport {
    let mut report = LintReport::new();
    let src = "generator-config";
    let mut push = |msg: String| {
        report.push(Diagnostic::new(Code::S009, src, msg));
    };

    if cfg.period_ms.0 == 0 || cfg.period_ms.1 < cfg.period_ms.0 {
        push(format!(
            "period range [{}, {}] ms must be non-empty and start above zero",
            cfg.period_ms.0, cfg.period_ms.1,
        ));
    }
    let (ulo, uhi) = cfg.task_utilization;
    if !(ulo.is_finite() && uhi.is_finite()) || ulo <= 0.0 || uhi < ulo || uhi > 1.0 {
        push(format!(
            "task utilization range [{ulo}, {uhi}] must satisfy 0 < lo <= hi <= 1",
        ));
    }
    let (rlo, rhi) = cfg.wcet_ratio;
    if !(rlo.is_finite() && rhi.is_finite()) || rlo < 1.0 || rhi < rlo {
        push(format!(
            "WCET ratio range [{rlo}, {rhi}] must satisfy 1 <= lo <= hi",
        ));
    }
    let (clo, chi) = cfg.coefficient_of_variation;
    if !(clo.is_finite() && chi.is_finite()) || clo < 0.0 || chi < clo {
        push(format!(
            "coefficient-of-variation range [{clo}, {chi}] must satisfy 0 <= lo <= hi",
        ));
    }
    if !cfg.p_high.is_finite() || !(0.0..=1.0).contains(&cfg.p_high) {
        push(format!("p_high {} must be in [0, 1]", cfg.p_high));
    }
    if cfg.max_tasks == 0 {
        push("max_tasks must be non-zero".to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn default_configs_are_clean() {
        assert!(lint_ga_config(&GaConfig::default()).is_clean());
        assert!(lint_problem_config(&ProblemConfig::default()).is_clean());
        assert!(lint_generator_config(&GeneratorConfig::default()).is_clean());
    }

    #[test]
    fn ga_violations_are_all_reported_at_once() {
        let cfg = GaConfig {
            population_size: 1,
            generations: 0,
            crossover_probability: 1.5,
            mutation_probability: -0.1,
            tournament_size: 0,
            elitism: 5,
            ..GaConfig::default()
        };
        let report = lint_ga_config(&cfg);
        for code in [Code::S001, Code::S002, Code::S004, Code::S005] {
            assert!(
                report.iter().any(|d| d.code == code),
                "missing {code}: {}",
                report.render_human(),
            );
        }
        // Both probabilities are bad — two S003 findings, not one.
        assert_eq!(report.iter().filter(|d| d.code == Code::S003).count(), 2);
        assert!(report.has_errors());
    }

    #[test]
    fn oversized_ga_budget_warns() {
        let cfg = GaConfig {
            population_size: 10_000,
            generations: 10_000,
            ..GaConfig::default()
        };
        let report = lint_ga_config(&cfg);
        assert_eq!(report.codes(), vec![Code::S006]);
        assert!(!report.has_errors());
    }

    #[test]
    fn factor_cap_edges() {
        assert!(lint_problem_config(&ProblemConfig {
            factor_cap: f64::NAN
        })
        .iter()
        .any(|d| d.code == Code::S007));
        assert!(lint_problem_config(&ProblemConfig { factor_cap: -1.0 })
            .iter()
            .any(|d| d.code == Code::S007));
        let low = lint_problem_config(&ProblemConfig { factor_cap: 1.0 });
        assert_eq!(low.codes(), vec![Code::S008]);
        assert_eq!(low.diagnostics[0].severity, Severity::Info);
    }

    #[test]
    fn generator_violations_are_all_reported_at_once() {
        let cfg = GeneratorConfig {
            period_ms: (0, 10),
            task_utilization: (0.0, 1.5),
            wcet_ratio: (0.5, 0.2),
            coefficient_of_variation: (-0.1, 0.2),
            p_high: 2.0,
            max_tasks: 0,
        };
        let report = lint_generator_config(&cfg);
        assert_eq!(report.iter().filter(|d| d.code == Code::S009).count(), 6);
        // The crate's own validate() stops at the first of these.
        assert!(cfg.validate().is_err());
    }
}
