//! Campaign-specification linting (`E0xx` diagnostics) for the `mc-exp`
//! experiment runner.
//!
//! `mc-exp` sits above this crate in the dependency graph (it depends on
//! `chebymc-core`, which depends on `mc-lint`), so the pass cannot see its
//! `CampaignSpec` type directly. Instead it lints [`CampaignCheck`], a
//! plain summary of the fields the pass cares about; `mc-exp` builds one
//! from a spec plus the run configuration and fails fast on errors, so
//! `chebymc exp run` reports named diagnostics like every other subsystem
//! instead of crashing mid-campaign.

use crate::diag::{Code, Diagnostic, LintReport};

/// Campaigns past this many work units get an [`Code::E006`] warning.
const UNITS_WARN: u64 = 10_000_000;

/// The campaign facts the `E0xx` pass checks: axis points, replication,
/// sharding, and output paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheck {
    /// Campaign name (used as the diagnostic source label).
    pub name: String,
    /// One label per axis point.
    pub point_labels: Vec<String>,
    /// Task-set replicas per point.
    pub replicas: usize,
    /// Shard index of this process (0-based).
    pub shard_index: usize,
    /// Total number of shards.
    pub shard_count: usize,
    /// Result-store path, when the campaign writes one.
    pub store_path: Option<String>,
    /// CSV-export path, when one is requested alongside the store.
    pub export_path: Option<String>,
}

impl CampaignCheck {
    /// A single-shard check with no output paths — the common in-process
    /// case; set the sharding and path fields for CLI runs.
    #[must_use]
    pub fn new(name: impl Into<String>, point_labels: Vec<String>, replicas: usize) -> Self {
        CampaignCheck {
            name: name.into(),
            point_labels,
            replicas,
            shard_index: 0,
            shard_count: 1,
            store_path: None,
            export_path: None,
        }
    }
}

/// Lints a campaign specification summary.
#[must_use]
pub fn lint_campaign(check: &CampaignCheck) -> LintReport {
    let mut report = LintReport::new();
    let src = format!("campaign:{}", check.name);

    if check.point_labels.is_empty() {
        report.push(Diagnostic::new(
            Code::E001,
            &src,
            "the campaign axis is empty: no points, so no work units",
        ));
    }
    if check.replicas == 0 {
        report.push(Diagnostic::new(
            Code::E002,
            &src,
            "replica count is 0; every point would average zero task sets",
        ));
    }
    if check.shard_count == 0 || check.shard_index >= check.shard_count {
        report.push(Diagnostic::new(
            Code::E003,
            &src,
            format!(
                "shard {}/{} is invalid; the index must be below the count \
                 (valid shards are 0/{n} .. {m}/{n})",
                check.shard_index,
                check.shard_count,
                n = check.shard_count.max(1),
                m = check.shard_count.max(1) - 1,
            ),
        ));
    }
    let mut sorted: Vec<&String> = check.point_labels.iter().collect();
    sorted.sort();
    for pair in sorted.windows(2) {
        if pair[0] == pair[1] {
            report.push(Diagnostic::new(
                Code::E004,
                &src,
                format!(
                    "point label `{}` appears more than once; aggregation \
                     over labels would silently merge distinct points",
                    pair[0]
                ),
            ));
        }
    }
    if let (Some(store), Some(export)) = (&check.store_path, &check.export_path) {
        if store == export {
            report.push(Diagnostic::new(
                Code::E005,
                &src,
                format!(
                    "store and export both write `{store}`; the export \
                     would clobber the crash-safe result store"
                ),
            ));
        }
    }
    let units = check.point_labels.len() as u64 * check.replicas as u64;
    if units > UNITS_WARN {
        report.push(Diagnostic::new(
            Code::E006,
            &src,
            format!(
                "{units} work units ({} points × {} replicas) is far beyond \
                 the paper's scale; expect very long runtimes",
                check.point_labels.len(),
                check.replicas,
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn valid() -> CampaignCheck {
        CampaignCheck::new("fig5", vec!["a".into(), "b".into()], 100)
    }

    #[test]
    fn valid_campaign_is_clean() {
        assert!(lint_campaign(&valid()).is_clean());
    }

    #[test]
    fn empty_axis_is_e001() {
        let mut c = valid();
        c.point_labels.clear();
        let r = lint_campaign(&c);
        assert_eq!(r.codes(), vec![Code::E001]);
        assert!(r.has_errors());
    }

    #[test]
    fn zero_replicas_is_e002() {
        let mut c = valid();
        c.replicas = 0;
        assert_eq!(lint_campaign(&c).codes(), vec![Code::E002]);
    }

    #[test]
    fn bad_shards_are_e003() {
        let mut c = valid();
        c.shard_index = 2;
        c.shard_count = 2;
        let r = lint_campaign(&c);
        assert_eq!(r.codes(), vec![Code::E003]);
        assert!(r.render_human().contains("2/2"));
        c.shard_index = 0;
        c.shard_count = 0;
        assert_eq!(lint_campaign(&c).codes(), vec![Code::E003]);
        c.shard_index = 1;
        c.shard_count = 2;
        assert!(lint_campaign(&c).is_clean());
    }

    #[test]
    fn duplicate_labels_are_e004() {
        let mut c = valid();
        c.point_labels = vec!["u0.5".into(), "u0.8".into(), "u0.5".into()];
        let r = lint_campaign(&c);
        assert_eq!(r.codes(), vec![Code::E004]);
        assert!(r.render_human().contains("u0.5"));
    }

    #[test]
    fn colliding_paths_are_e005() {
        let mut c = valid();
        c.store_path = Some("out.jsonl".into());
        c.export_path = Some("out.jsonl".into());
        assert_eq!(lint_campaign(&c).codes(), vec![Code::E005]);
        c.export_path = Some("out.csv".into());
        assert!(lint_campaign(&c).is_clean());
    }

    #[test]
    fn huge_campaigns_warn_e006() {
        let mut c = valid();
        c.replicas = 20_000_000;
        let r = lint_campaign(&c);
        assert_eq!(r.codes(), vec![Code::E006]);
        assert!(!r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn multiple_violations_report_together() {
        let c = CampaignCheck {
            name: "broken".into(),
            point_labels: vec![],
            replicas: 0,
            shard_index: 3,
            shard_count: 3,
            store_path: Some("x".into()),
            export_path: Some("x".into()),
        };
        let r = lint_campaign(&c);
        assert_eq!(
            r.codes(),
            vec![Code::E001, Code::E002, Code::E003, Code::E005]
        );
        assert_eq!(r.count(Severity::Error), 4);
    }
}
