//! Automotive workload lint pass (`A0xx`).
//!
//! The automotive generator is driven by baked-in calibration tables
//! (period/share bins and BCET/WCET factor matrices) plus a per-campaign
//! [`AutomotiveConfig`]. A silent edit to a table — a transposed digit in
//! a share, a factor row whose min drifts above its max — would not crash
//! anything: it would quietly skew every generated set and invalidate the
//! golden fixture. This pass re-derives the table invariants from the
//! published data's structure and checks them, alongside the config
//! validation every campaign gate runs.

use crate::diag::{Code, Diagnostic, LintReport};
use mc_task::automotive::{
    AutomotiveConfig, ACET_US, BCET_FACTOR, BIN_COUNT, PERIOD_MS, SHARE_PERCENT, SHARE_TOTAL,
    WCET_FACTOR, WEIBULL_FEASIBLE_MEAN_RATIO,
};

/// Lints the baked-in Bosch calibration tables: share entries (`A001`),
/// period-bin ordering (`A002`), factor matrices (`A003`), ACET statistic
/// ordering (`A004`), and per-bin Weibull feasibility (`A006`).
#[must_use]
pub fn lint_automotive_tables() -> LintReport {
    let mut report = LintReport::new();
    let mut share_sum = 0.0;
    for b in 0..BIN_COUNT {
        let source = format!("automotive bin[{b}] ({} ms)", PERIOD_MS[b]);
        let share = SHARE_PERCENT[b];
        if !share.is_finite() || share <= 0.0 {
            report.push(Diagnostic::new(
                Code::A001,
                source.clone(),
                format!("share {share} % must be finite and positive"),
            ));
        } else {
            share_sum += share;
        }
        if PERIOD_MS[b] == 0 || (b > 0 && PERIOD_MS[b] <= PERIOD_MS[b - 1]) {
            report.push(Diagnostic::new(
                Code::A002,
                source.clone(),
                format!("period {} ms breaks strict bin ordering", PERIOD_MS[b]),
            ));
        }
        let [bf_min, bf_max] = BCET_FACTOR[b];
        if !(bf_min.is_finite() && bf_max.is_finite())
            || bf_min <= 0.0
            || bf_min > bf_max
            || bf_max >= 1.0
        {
            report.push(Diagnostic::new(
                Code::A003,
                source.clone(),
                format!("BCET factors [{bf_min}, {bf_max}] must satisfy 0 < min <= max < 1"),
            ));
        }
        let [wf_min, wf_max] = WCET_FACTOR[b];
        if !(wf_min.is_finite() && wf_max.is_finite()) || wf_min <= 1.0 || wf_min > wf_max {
            report.push(Diagnostic::new(
                Code::A003,
                source.clone(),
                format!("WCET factors [{wf_min}, {wf_max}] must satisfy 1 < min <= max"),
            ));
        }
        let [a_min, a_avg, a_max] = ACET_US[b];
        if !(a_min.is_finite() && a_avg.is_finite() && a_max.is_finite())
            || a_min <= 0.0
            || a_min > a_avg
            || a_avg > a_max
        {
            report.push(Diagnostic::new(
                Code::A004,
                source.clone(),
                format!(
                    "ACET stats ({a_min}, {a_avg}, {a_max}) µs must satisfy 0 < min <= avg <= max"
                ),
            ));
        }
        // The mean-position ratio (1 - bf)/(wf - bf) is decreasing in both
        // factors, so the bin's best attainable ratio sits at
        // (bf_min, wf_min); if even that corner is below the floor, the
        // per-task discard loop can never terminate.
        let best_ratio = (1.0 - bf_min) / (wf_min - bf_min);
        if best_ratio < WEIBULL_FEASIBLE_MEAN_RATIO {
            report.push(Diagnostic::new(
                Code::A006,
                source,
                format!(
                    "best attainable mean ratio {best_ratio:.5} is below the \
                     Weibull feasibility floor {WEIBULL_FEASIBLE_MEAN_RATIO}"
                ),
            ));
        }
    }
    if (share_sum - SHARE_TOTAL).abs() > 1e-9 {
        report.push(Diagnostic::new(
            Code::A001,
            "automotive share table",
            format!("shares sum to {share_sum} %, not the documented {SHARE_TOTAL} %"),
        ));
    }
    report
}

/// Lints an [`AutomotiveConfig`] (`A005`), mirroring
/// [`AutomotiveConfig::validate`] the way `S009` mirrors the synthetic
/// generator's checks, and re-checks the calibration tables so every
/// campaign gate covers both.
#[must_use]
pub fn lint_automotive_config(cfg: &AutomotiveConfig) -> LintReport {
    let mut report = lint_automotive_tables();
    if let Err(e) = cfg.validate() {
        report.push(Diagnostic::new(
            Code::A005,
            "automotive generator config",
            e.to_string(),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baked_in_tables_are_clean() {
        let report = lint_automotive_tables();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn default_config_is_clean() {
        assert!(lint_automotive_config(&AutomotiveConfig::default()).is_clean());
    }

    #[test]
    fn invalid_config_is_a005() {
        let cfg = AutomotiveConfig {
            runnables: 3,
            ..AutomotiveConfig::default()
        };
        let report = lint_automotive_config(&cfg);
        assert_eq!(report.codes(), vec![Code::A005]);
        assert!(report.has_errors());
        let d = report.iter().find(|d| d.code == Code::A005).unwrap();
        assert!(d.message.contains("runnables"), "{}", d.message);
    }

    #[test]
    fn nan_p_high_is_a005() {
        let cfg = AutomotiveConfig {
            p_high: f64::NAN,
            ..AutomotiveConfig::default()
        };
        assert_eq!(lint_automotive_config(&cfg).codes(), vec![Code::A005]);
    }
}
