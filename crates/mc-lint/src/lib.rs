//! mc-lint — static analysis and diagnostics for the chebymc workspace.
//!
//! Three lint passes feed one diagnostics framework:
//!
//! * [`cfg_pass`] analyses [`mc_exec::cfg::Cfg`] structure — dominators
//!   (Cooper–Harvey–Kennedy), natural loops, reducibility, reachability,
//!   loop-bound placement — and reports `C0xx` codes *before* WCET
//!   analysis fails obscurely.
//! * [`task_pass`] checks task-set invariants and Chebyshev/EDF-VD
//!   preconditions (`T0xx`).
//! * [`scheme_pass`] checks GA, problem, and generator configuration
//!   (`S0xx`), reporting every violation at once instead of failing on the
//!   first.
//! * [`exp_pass`] checks experiment-campaign specifications (`E0xx`):
//!   axis/replica emptiness, shard validity, label collisions, and output
//!   path clashes, so `chebymc exp run` fails fast with named diagnostics.
//! * [`policy_pass`] checks scheduling-policy rosters (`P0xx`): parameter
//!   ranges, duplicate policy names, and empty rosters, gating the
//!   `policy_arena` campaign before any unit runs.
//! * [`automotive_pass`] checks the automotive workload family (`A0xx`):
//!   the baked-in Bosch period/share and factor tables, per-bin Weibull
//!   feasibility, and the campaign's `AutomotiveConfig`.
//! * [`source_pass`] audits the workspace's *own Rust sources* for
//!   determinism and soundness hazards (`D0xx`/`U0xx`): unordered hash
//!   iteration, wall-clock reads, unseeded randomness, unordered float
//!   reduction, undocumented `unsafe` and panics, truncating float
//!   casts. Driven by `chebymc lint --source` with a checked-in
//!   `lint.toml` allowlist.
//!
//! Diagnostics carry stable codes ([`Code`]), fixed severities
//! ([`Severity`]), and a source label; a [`LintReport`] renders either for
//! terminals ([`LintReport::render_human`]) or as JSON
//! ([`LintReport::render_json`], round-trippable through `serde_json`).
//!
//! [`LintBundle`] is the file format behind `chebymc lint`: a JSON object
//! optionally carrying a serialised CFG, a workload, and configs. The
//! bundle is deserialised *without* revalidation, so defective inputs —
//! an unbounded loop, a task with `C_LO > C_HI` — are lintable instead of
//! being rejected at parse time.

#![warn(missing_docs)]

pub mod automotive_pass;
pub mod cfg_pass;
pub mod diag;
pub mod exp_pass;
pub mod policy_pass;
pub mod scheme_pass;
pub mod source_pass;
pub mod task_pass;

pub use automotive_pass::{lint_automotive_config, lint_automotive_tables};
pub use cfg_pass::{analyze_structure, lint_cfg, CfgStructure};
pub use diag::{Code, Diagnostic, Gate, LintReport, Severity, ALL_CODES};
pub use exp_pass::{lint_campaign, CampaignCheck};
pub use policy_pass::lint_policy_roster;
pub use scheme_pass::{lint_ga_config, lint_generator_config, lint_problem_config};
pub use source_pass::{
    collect_workspace_files, lint_source_file, lint_workspace_sources, Allowlist, SourceAudit,
};
pub use task_pass::lint_taskset;

use mc_exec::cfg::Cfg;
use mc_opt::{GaConfig, ProblemConfig};
use mc_task::automotive::AutomotiveConfig;
use mc_task::generate::GeneratorConfig;
use mc_task::workload::Workload;
use serde::{Deserialize, Serialize};

/// Lintable inputs bundled into one JSON document — the input format of
/// `chebymc lint`. Every section is optional; absent sections are skipped.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LintBundle {
    /// A control-flow graph (the `Cfg` serde shape).
    pub cfg: Option<Cfg>,
    /// A workload (name, description, tasks) — *not* revalidated on load.
    pub workload: Option<Workload>,
    /// GA hyper-parameters.
    pub ga: Option<GaConfig>,
    /// Chebyshev problem configuration.
    pub problem: Option<ProblemConfig>,
    /// Synthetic task-generator configuration.
    pub generator: Option<GeneratorConfig>,
    /// Automotive workload-family configuration (also re-checks the
    /// calibration tables).
    #[serde(default)]
    pub automotive: Option<AutomotiveConfig>,
}

impl LintBundle {
    /// Parses a bundle from JSON without revalidating its contents.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed JSON or a shape
    /// that does not match the bundle.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Runs every applicable pass and merges the reports.
    #[must_use]
    pub fn lint(&self) -> LintReport {
        let mut report = LintReport::new();
        if let Some(cfg) = &self.cfg {
            report.merge(lint_cfg(cfg, "bundle"));
        }
        if let Some(w) = &self.workload {
            report.merge(lint_taskset(&w.tasks));
        }
        if let Some(ga) = &self.ga {
            report.merge(lint_ga_config(ga));
        }
        if let Some(p) = &self.problem {
            report.merge(lint_problem_config(p));
        }
        if let Some(g) = &self.generator {
            report.merge(lint_generator_config(g));
        }
        if let Some(a) = &self.automotive {
            report.merge(lint_automotive_config(a));
        }
        report
    }
}

/// Lints a named benchmark's CFG (convenience for `chebymc lint --benchmark`).
#[must_use]
pub fn lint_benchmark_cfg(name: &str, cfg: &Cfg) -> LintReport {
    lint_cfg(cfg, name)
}

/// Parses a workload JSON *without* revalidation and lints its task set —
/// the `chebymc lint --workload` path. [`Workload::load_json`] would
/// reject a file with `C_LO > C_HI` outright; this reports every problem
/// instead.
///
/// # Errors
///
/// Returns the parse error for malformed JSON; invalid-but-well-formed
/// workloads produce diagnostics, not errors.
pub fn lint_workload_json(json: &str) -> Result<LintReport, serde_json::Error> {
    let w: Workload = serde_json::from_str(json)?;
    Ok(lint_taskset(&w.tasks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bundle_is_clean() {
        let bundle = LintBundle::from_json("{}").unwrap();
        assert!(bundle.lint().is_clean());
    }

    #[test]
    fn bundle_sections_compose() {
        let bundle = LintBundle {
            ga: Some(GaConfig {
                generations: 0,
                ..GaConfig::default()
            }),
            problem: Some(ProblemConfig { factor_cap: 1.0 }),
            ..LintBundle::default()
        };
        let report = bundle.lint();
        assert_eq!(report.codes(), vec![Code::S002, Code::S008]);
    }

    #[test]
    fn bundle_json_round_trips() {
        let bundle = LintBundle {
            ga: Some(GaConfig::default()),
            generator: Some(GeneratorConfig::default()),
            ..LintBundle::default()
        };
        let json = serde_json::to_string_pretty(&bundle).unwrap();
        let back = LintBundle::from_json(&json).unwrap();
        assert_eq!(back, bundle);
    }

    #[test]
    fn malformed_bundle_is_rejected() {
        assert!(LintBundle::from_json("{").is_err());
        assert!(LintBundle::from_json("[1, 2]").is_err());
    }
}
