//! Processor platform model: cycle ↔ time conversion.
//!
//! Benchmark statistics are measured in cycles; the task model and the
//! simulator work in nanoseconds. A [`Platform`] fixes the clock frequency
//! that relates the two. The workspace default is 1 GHz, where one cycle is
//! exactly one nanosecond — the convention all built-in benchmarks assume —
//! but any frequency can be modelled.

use crate::benchmarks::Benchmark;
use crate::ExecError;
use mc_task::time::Duration;
use mc_task::{Criticality, ExecutionProfile, McTask, TaskId};
use serde::{Deserialize, Serialize};

/// A single-core platform with a fixed clock frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    frequency_hz: f64,
}

impl Default for Platform {
    /// The workspace convention: 1 GHz (1 cycle = 1 ns).
    fn default() -> Self {
        Platform {
            frequency_hz: 1.0e9,
        }
    }
}

impl Platform {
    /// Creates a platform clocked at `frequency_hz`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] unless the frequency is finite
    /// and strictly positive.
    pub fn new(frequency_hz: f64) -> Result<Self, ExecError> {
        if !frequency_hz.is_finite() || frequency_hz <= 0.0 {
            return Err(ExecError::InvalidModel {
                reason: "platform frequency must be finite and positive",
            });
        }
        Ok(Platform { frequency_hz })
    }

    /// The clock frequency in hertz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Converts a cycle count to wall-clock time, rounding *up* to whole
    /// nanoseconds (the conservative direction for budgets).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] for negative, non-finite, or
    /// unrepresentably large cycle counts.
    pub fn duration_of_cycles(&self, cycles: f64) -> Result<Duration, ExecError> {
        let ns = cycles / self.frequency_hz * 1e9;
        Duration::try_from_nanos_f64_ceil(ns).ok_or(ExecError::InvalidModel {
            reason: "cycle count does not convert to a representable duration",
        })
    }

    /// Converts a duration back to (fractional) cycles.
    pub fn cycles_of(&self, d: Duration) -> f64 {
        d.as_nanos() as f64 / 1e9 * self.frequency_hz
    }
}

impl Benchmark {
    /// Converts this benchmark into a mixed-criticality task on `platform`:
    /// the published pessimistic WCET becomes `C_HI`, the published
    /// `(ACET, σ)` become the task's execution profile (both expressed in
    /// nanoseconds at the platform's frequency), and `C_LO` starts
    /// pessimistically at `C_HI` for a WCET-assignment policy to lower.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] when the converted WCET does not
    /// fit in the period, plus any conversion error.
    ///
    /// # Example
    ///
    /// ```
    /// use mc_exec::benchmarks;
    /// use mc_exec::platform::Platform;
    /// use mc_task::time::Duration;
    /// use mc_task::{Criticality, TaskId};
    ///
    /// # fn main() -> Result<(), mc_exec::ExecError> {
    /// let task = benchmarks::qsort(100)?.to_mc_task(
    ///     TaskId::new(0),
    ///     Criticality::Hi,
    ///     Duration::from_millis(10),
    ///     &Platform::default(),
    /// )?;
    /// assert_eq!(task.c_hi(), Duration::from_micros(410)); // 410 000 cycles @ 1 GHz
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_mc_task(
        &self,
        id: TaskId,
        criticality: Criticality,
        period: Duration,
        platform: &Platform,
    ) -> Result<McTask, ExecError> {
        let spec = self.spec();
        let c_hi = platform.duration_of_cycles(spec.wcet_pes)?;
        if c_hi > period {
            return Err(ExecError::InvalidModel {
                reason: "benchmark WCET exceeds the requested period",
            });
        }
        let scale = 1e9 / platform.frequency_hz();
        let mut builder = McTask::builder(id)
            .name(self.name().to_string())
            .criticality(criticality)
            .period(period)
            .c_lo(c_hi);
        if criticality.is_high() {
            let profile = ExecutionProfile::new(
                spec.acet * scale,
                spec.sigma * scale,
                c_hi.as_nanos() as f64,
            )
            .map_err(|_| ExecError::InvalidModel {
                reason: "benchmark statistics do not form a valid profile",
            })?;
            builder = builder.c_hi(c_hi).profile(profile);
        }
        builder.build().map_err(|_| ExecError::InvalidModel {
            reason: "benchmark does not fit the task-model invariants",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn default_is_one_gigahertz() {
        let p = Platform::default();
        assert_eq!(p.frequency_hz(), 1.0e9);
        assert_eq!(
            p.duration_of_cycles(1_000.0).unwrap(),
            Duration::from_micros(1)
        );
    }

    #[test]
    fn construction_validates_frequency() {
        assert!(Platform::new(0.0).is_err());
        assert!(Platform::new(-1.0e9).is_err());
        assert!(Platform::new(f64::NAN).is_err());
        assert!(Platform::new(2.4e9).is_ok());
    }

    #[test]
    fn conversion_rounds_up_and_round_trips() {
        let p = Platform::new(3.0e9).unwrap(); // 3 GHz: 1 cycle = 1/3 ns
        let d = p.duration_of_cycles(1.0).unwrap();
        assert_eq!(d, Duration::from_nanos(1)); // ceil(0.333)
        let d = p.duration_of_cycles(3_000_000.0).unwrap();
        assert_eq!(d, Duration::from_millis(1));
        assert!((p.cycles_of(d) - 3_000_000.0).abs() < 1.0);
    }

    #[test]
    fn conversion_rejects_bad_cycles() {
        let p = Platform::default();
        assert!(p.duration_of_cycles(-1.0).is_err());
        assert!(p.duration_of_cycles(f64::INFINITY).is_err());
    }

    #[test]
    fn benchmark_converts_to_hc_task_with_profile() {
        let b = benchmarks::corner().unwrap();
        let task = b
            .to_mc_task(
                TaskId::new(3),
                Criticality::Hi,
                Duration::from_millis(25),
                &Platform::default(),
            )
            .unwrap();
        assert_eq!(task.name(), "corner");
        assert!(task.is_high());
        assert_eq!(task.c_hi(), Duration::from_nanos(9_400_000));
        assert_eq!(task.c_lo(), task.c_hi(), "C_LO starts pessimistic");
        let profile = task.profile().unwrap();
        assert!((profile.acet() - 5.6e5).abs() < 1e-6);
    }

    #[test]
    fn benchmark_converts_to_lc_task_without_profile() {
        let b = benchmarks::qsort(100).unwrap();
        let task = b
            .to_mc_task(
                TaskId::new(0),
                Criticality::Lo,
                Duration::from_millis(10),
                &Platform::default(),
            )
            .unwrap();
        assert!(!task.is_high());
        assert!(task.profile().is_none());
        assert_eq!(task.c_lo(), Duration::from_micros(410));
    }

    #[test]
    fn frequency_scales_the_budgets() {
        let b = benchmarks::qsort(100).unwrap(); // 410 000 cycles
        let fast = Platform::new(2.0e9).unwrap();
        let task = b
            .to_mc_task(
                TaskId::new(0),
                Criticality::Hi,
                Duration::from_millis(10),
                &fast,
            )
            .unwrap();
        // Twice the clock → half the time.
        assert_eq!(task.c_hi(), Duration::from_micros(205));
        let profile = task.profile().unwrap();
        assert!((profile.acet() - 9_000.0).abs() < 1.0); // 18 000 cycles / 2
    }

    #[test]
    fn wcet_larger_than_period_is_rejected() {
        let b = benchmarks::smooth().unwrap(); // 4.9e8 cycles = 490 ms @ 1 GHz
        let err = b
            .to_mc_task(
                TaskId::new(0),
                Criticality::Hi,
                Duration::from_millis(100),
                &Platform::default(),
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::InvalidModel { .. }));
    }
}
