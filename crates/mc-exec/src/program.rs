//! Structured program models.
//!
//! A [`Program`] is an abstract-syntax-level model of a benchmark: basic
//! blocks with cycle costs composed by sequencing, branching and bounded
//! loops. Two independent analyses are available:
//!
//! * a *tree* analysis ([`Program::wcet`], [`Program::bcet`],
//!   [`Program::acet_estimate`]) that folds the structure directly, and
//! * a *graph* analysis via [`Program::to_cfg`] + [`crate::cfg::Cfg::wcet`],
//!   which exercises dominator/natural-loop machinery.
//!
//! The two must agree on WCET; `crate::wcet::analyze` checks that, mirroring
//! how production WCET tools cross-validate structural and IPET results.

use crate::cfg::{Cfg, NodeId};
use crate::ExecError;
use serde::{Deserialize, Serialize};

/// A cost-annotated basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Diagnostic name.
    pub name: String,
    /// Execution cost in cycles.
    pub cost: u64,
}

impl BasicBlock {
    /// Creates a block.
    pub fn new(name: impl Into<String>, cost: u64) -> Self {
        BasicBlock {
            name: name.into(),
            cost,
        }
    }
}

/// A structured program fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Program {
    /// A straight-line basic block.
    Block(BasicBlock),
    /// Sequential composition.
    Seq(Vec<Program>),
    /// Two-way branch. `taken_probability` is the probability of the *then*
    /// arm and is only used by the average-case estimate.
    Branch {
        /// Condition-evaluation block.
        cond: BasicBlock,
        /// Arm taken with probability `taken_probability`.
        then_branch: Box<Program>,
        /// Arm taken otherwise.
        else_branch: Box<Program>,
        /// Probability of the then-arm, in `[0, 1]`.
        taken_probability: f64,
    },
    /// A bounded loop. The header executes `iterations + 1` times (the final
    /// test exits); the body executes `iterations` times, where `iterations`
    /// ranges over `[min_iterations, bound]`. `avg_iterations` drives the
    /// average-case estimate.
    Loop {
        /// Loop test/increment block.
        header: BasicBlock,
        /// Worst-case iteration bound.
        bound: u64,
        /// Best-case iteration count (`≤ bound`).
        min_iterations: u64,
        /// Average iteration count (`min_iterations ≤ avg ≤ bound`).
        avg_iterations: f64,
        /// Loop body.
        body: Box<Program>,
    },
}

impl Program {
    /// A single block program.
    pub fn block(name: impl Into<String>, cost: u64) -> Self {
        Program::Block(BasicBlock::new(name, cost))
    }

    /// Sequential composition of fragments.
    pub fn seq(parts: impl IntoIterator<Item = Program>) -> Self {
        Program::Seq(parts.into_iter().collect())
    }

    /// A branch (see [`Program::Branch`]).
    pub fn branch(
        cond: BasicBlock,
        then_branch: Program,
        else_branch: Program,
        taken_probability: f64,
    ) -> Self {
        Program::Branch {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
            taken_probability,
        }
    }

    /// A loop with equal min/avg/max iteration counts.
    pub fn fixed_loop(header: BasicBlock, iterations: u64, body: Program) -> Self {
        Program::Loop {
            header,
            bound: iterations,
            min_iterations: iterations,
            avg_iterations: iterations as f64,
            body: Box::new(body),
        }
    }

    /// A loop with distinct bound/min/average iteration counts.
    pub fn variable_loop(
        header: BasicBlock,
        bound: u64,
        min_iterations: u64,
        avg_iterations: f64,
        body: Program,
    ) -> Self {
        Program::Loop {
            header,
            bound,
            min_iterations,
            avg_iterations,
            body: Box::new(body),
        }
    }

    /// Validates structural annotations: probabilities in `[0, 1]`,
    /// `min_iterations ≤ avg_iterations ≤ bound`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidProgram`] on the first violation.
    pub fn validate(&self) -> Result<(), ExecError> {
        match self {
            Program::Block(_) => Ok(()),
            Program::Seq(parts) => parts.iter().try_for_each(Program::validate),
            Program::Branch {
                then_branch,
                else_branch,
                taken_probability,
                ..
            } => {
                if !taken_probability.is_finite() || !(0.0..=1.0).contains(taken_probability) {
                    return Err(ExecError::InvalidProgram {
                        reason: "branch probability must be in [0, 1]",
                    });
                }
                then_branch.validate()?;
                else_branch.validate()
            }
            Program::Loop {
                bound,
                min_iterations,
                avg_iterations,
                body,
                ..
            } => {
                if min_iterations > bound {
                    return Err(ExecError::InvalidProgram {
                        reason: "loop min_iterations must not exceed the bound",
                    });
                }
                if !avg_iterations.is_finite()
                    || *avg_iterations < *min_iterations as f64
                    || *avg_iterations > *bound as f64
                {
                    return Err(ExecError::InvalidProgram {
                        reason: "loop avg_iterations must lie within [min_iterations, bound]",
                    });
                }
                body.validate()
            }
        }
    }

    /// Worst-case execution time (tree analysis): every branch takes its
    /// costlier arm, every loop runs to its bound.
    pub fn wcet(&self) -> u64 {
        match self {
            Program::Block(b) => b.cost,
            Program::Seq(parts) => parts.iter().map(Program::wcet).sum(),
            Program::Branch {
                cond,
                then_branch,
                else_branch,
                ..
            } => cond.cost + then_branch.wcet().max(else_branch.wcet()),
            Program::Loop {
                header,
                bound,
                body,
                ..
            } => (bound + 1) * header.cost + bound * body.wcet(),
        }
    }

    /// Best-case execution time: cheaper branch arms, minimum iterations.
    pub fn bcet(&self) -> u64 {
        match self {
            Program::Block(b) => b.cost,
            Program::Seq(parts) => parts.iter().map(Program::bcet).sum(),
            Program::Branch {
                cond,
                then_branch,
                else_branch,
                ..
            } => cond.cost + then_branch.bcet().min(else_branch.bcet()),
            Program::Loop {
                header,
                min_iterations,
                body,
                ..
            } => (min_iterations + 1) * header.cost + min_iterations * body.bcet(),
        }
    }

    /// Expected execution time under the structural annotations
    /// (branch probabilities, average iteration counts). This is a model
    /// *estimate*, not a measurement — the paper's ACET comes from traces.
    pub fn acet_estimate(&self) -> f64 {
        match self {
            Program::Block(b) => b.cost as f64,
            Program::Seq(parts) => parts.iter().map(Program::acet_estimate).sum(),
            Program::Branch {
                cond,
                then_branch,
                else_branch,
                taken_probability,
            } => {
                cond.cost as f64
                    + taken_probability * then_branch.acet_estimate()
                    + (1.0 - taken_probability) * else_branch.acet_estimate()
            }
            Program::Loop {
                header,
                avg_iterations,
                body,
                ..
            } => {
                (avg_iterations + 1.0) * header.cost as f64 + avg_iterations * body.acet_estimate()
            }
        }
    }

    /// Number of basic blocks in the model.
    pub fn block_count(&self) -> usize {
        match self {
            Program::Block(_) => 1,
            Program::Seq(parts) => parts.iter().map(Program::block_count).sum(),
            Program::Branch {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.block_count() + else_branch.block_count(),
            Program::Loop { body, .. } => 1 + body.block_count(),
        }
    }

    /// Lowers the structured program to a [`Cfg`] with loop bounds attached,
    /// adding zero-cost entry/join/exit nodes where control flow merges.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidProgram`] when [`Program::validate`]
    /// fails.
    pub fn to_cfg(&self) -> Result<Cfg, ExecError> {
        self.validate()?;
        let mut cfg = Cfg::new();
        let entry = cfg.add_node("entry", 0);
        let (first, last) = self.lower(&mut cfg)?;
        cfg.add_edge(entry, first)?;
        let exit = cfg.add_node("exit", 0);
        cfg.add_edge(last, exit)?;
        cfg.set_entry(entry)?;
        cfg.set_exit(exit)?;
        Ok(cfg)
    }

    /// Lowers this fragment, returning its (entry, exit) nodes.
    fn lower(&self, cfg: &mut Cfg) -> Result<(NodeId, NodeId), ExecError> {
        match self {
            Program::Block(b) => {
                let n = cfg.add_node(b.name.clone(), b.cost);
                Ok((n, n))
            }
            Program::Seq(parts) => {
                if parts.is_empty() {
                    let n = cfg.add_node("nop", 0);
                    return Ok((n, n));
                }
                let mut first = None;
                let mut prev: Option<NodeId> = None;
                for p in parts {
                    let (lo, hi) = p.lower(cfg)?;
                    if let Some(prev) = prev {
                        cfg.add_edge(prev, lo)?;
                    }
                    if first.is_none() {
                        first = Some(lo);
                    }
                    prev = Some(hi);
                }
                Ok((
                    first.expect("non-empty sequence"),
                    prev.expect("non-empty sequence"),
                ))
            }
            Program::Branch {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = cfg.add_node(cond.name.clone(), cond.cost);
                let (t_lo, t_hi) = then_branch.lower(cfg)?;
                let (e_lo, e_hi) = else_branch.lower(cfg)?;
                let join = cfg.add_node("join", 0);
                cfg.add_edge(c, t_lo)?;
                cfg.add_edge(c, e_lo)?;
                cfg.add_edge(t_hi, join)?;
                cfg.add_edge(e_hi, join)?;
                Ok((c, join))
            }
            Program::Loop {
                header,
                bound,
                body,
                ..
            } => {
                let h = cfg.add_node(header.name.clone(), header.cost);
                cfg.set_loop_bound(h, *bound)?;
                let (b_lo, b_hi) = body.lower(cfg)?;
                cfg.add_edge(h, b_lo)?;
                cfg.add_edge(b_hi, h)?;
                // Control leaves the loop from the header.
                Ok((h, h))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(name: &str, cost: u64) -> BasicBlock {
        BasicBlock::new(name, cost)
    }

    #[test]
    fn block_costs_are_exact() {
        let p = Program::block("b", 42);
        assert_eq!(p.wcet(), 42);
        assert_eq!(p.bcet(), 42);
        assert_eq!(p.acet_estimate(), 42.0);
        assert_eq!(p.block_count(), 1);
    }

    #[test]
    fn seq_sums() {
        let p = Program::seq([Program::block("a", 1), Program::block("b", 2)]);
        assert_eq!(p.wcet(), 3);
        assert_eq!(p.bcet(), 3);
        assert_eq!(p.acet_estimate(), 3.0);
    }

    #[test]
    fn branch_worst_best_average() {
        let p = Program::branch(
            bb("cond", 1),
            Program::block("then", 10),
            Program::block("else", 4),
            0.25,
        );
        assert_eq!(p.wcet(), 11);
        assert_eq!(p.bcet(), 5);
        assert!((p.acet_estimate() - (1.0 + 0.25 * 10.0 + 0.75 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn loop_analysis_matches_formulas() {
        let p = Program::variable_loop(bb("h", 2), 10, 1, 4.0, Program::block("body", 7));
        assert_eq!(p.wcet(), 11 * 2 + 10 * 7);
        assert_eq!(p.bcet(), 2 * 2 + 7);
        assert!((p.acet_estimate() - (5.0 * 2.0 + 4.0 * 7.0)).abs() < 1e-12);
    }

    #[test]
    fn bcet_never_exceeds_acet_never_exceeds_wcet() {
        let p = Program::seq([
            Program::branch(
                bb("c", 1),
                Program::block("t", 100),
                Program::block("e", 1),
                0.5,
            ),
            Program::variable_loop(bb("h", 1), 50, 0, 20.0, Program::block("b", 3)),
        ]);
        assert!(p.bcet() as f64 <= p.acet_estimate());
        assert!(p.acet_estimate() <= p.wcet() as f64);
    }

    #[test]
    fn validate_rejects_bad_probability_and_iterations() {
        let p = Program::branch(
            bb("c", 1),
            Program::block("t", 1),
            Program::block("e", 1),
            1.5,
        );
        assert!(p.validate().is_err());

        let p = Program::variable_loop(bb("h", 1), 5, 6, 5.0, Program::block("b", 1));
        assert!(p.validate().is_err());

        let p = Program::variable_loop(bb("h", 1), 5, 0, 7.0, Program::block("b", 1));
        assert!(p.validate().is_err());

        // Nested violations are found.
        let p = Program::seq([Program::variable_loop(
            bb("h", 1),
            5,
            0,
            2.0,
            Program::branch(
                bb("c", 1),
                Program::block("t", 1),
                Program::block("e", 1),
                -0.1,
            ),
        )]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn cfg_lowering_agrees_with_tree_wcet_on_block() {
        let p = Program::block("b", 42);
        assert_eq!(p.to_cfg().unwrap().wcet().unwrap(), 42);
    }

    #[test]
    fn cfg_lowering_agrees_on_branch() {
        let p = Program::branch(
            bb("c", 3),
            Program::block("t", 10),
            Program::block("e", 4),
            0.5,
        );
        assert_eq!(p.to_cfg().unwrap().wcet().unwrap(), p.wcet());
    }

    #[test]
    fn cfg_lowering_agrees_on_loop() {
        let p = Program::fixed_loop(bb("h", 2), 10, Program::block("b", 7));
        assert_eq!(p.to_cfg().unwrap().wcet().unwrap(), p.wcet());
    }

    #[test]
    fn cfg_lowering_agrees_on_nested_structures() {
        let p = Program::seq([
            Program::block("init", 5),
            Program::fixed_loop(
                bb("outer", 2),
                10,
                Program::seq([
                    Program::branch(
                        bb("c", 1),
                        Program::fixed_loop(bb("inner", 1), 3, Program::block("ib", 4)),
                        Program::block("fast", 2),
                        0.5,
                    ),
                    Program::block("tail", 1),
                ]),
            ),
            Program::block("fini", 3),
        ]);
        assert_eq!(p.to_cfg().unwrap().wcet().unwrap(), p.wcet());
    }

    #[test]
    fn empty_seq_is_a_nop() {
        let p = Program::seq([]);
        assert_eq!(p.wcet(), 0);
        assert_eq!(p.to_cfg().unwrap().wcet().unwrap(), 0);
    }

    #[test]
    fn to_cfg_rejects_invalid_programs() {
        let p = Program::branch(
            bb("c", 1),
            Program::block("t", 1),
            Program::block("e", 1),
            f64::NAN,
        );
        assert!(matches!(
            p.to_cfg().unwrap_err(),
            ExecError::InvalidProgram { .. }
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random structured programs, depth-bounded.
        fn arb_program() -> impl Strategy<Value = Program> {
            let leaf = (0u64..100).prop_map(|c| Program::block("b", c));
            leaf.prop_recursive(4, 32, 4, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 0..4).prop_map(Program::seq),
                    (inner.clone(), inner.clone(), 0u64..20, 0.0..=1.0f64)
                        .prop_map(|(t, e, c, p)| Program::branch(BasicBlock::new("c", c), t, e, p)),
                    (inner, 0u64..8, 0u64..8, 0u64..20).prop_map(|(b, bound, min, c)| {
                        let min = min.min(bound);
                        let avg = (min + bound) as f64 / 2.0;
                        Program::variable_loop(BasicBlock::new("h", c), bound, min, avg, b)
                    }),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn analyses_are_ordered(p in arb_program()) {
                p.validate().unwrap();
                prop_assert!(p.bcet() <= p.wcet());
                prop_assert!(p.bcet() as f64 <= p.acet_estimate() + 1e-9);
                prop_assert!(p.acet_estimate() <= p.wcet() as f64 + 1e-9);
            }

            #[test]
            fn tree_and_graph_wcet_agree(p in arb_program()) {
                let cfg = p.to_cfg().unwrap();
                prop_assert_eq!(cfg.wcet().unwrap(), p.wcet());
            }
        }
    }
}
