//! The miniature static WCET analyser (OTAWA stand-in).
//!
//! [`analyze`] runs both the tree analysis and the CFG analysis of a
//! [`Program`] and cross-checks them, the way production WCET tools validate
//! structural results against IPET results. The returned [`WcetReport`]
//! carries the full best/average/worst-case picture that Fig. 1 of the paper
//! illustrates.

use crate::program::Program;
use crate::ExecError;
use serde::{Deserialize, Serialize};

/// The result of statically analysing a program model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WcetReport {
    /// WCET from the structural (tree) analysis, in cycles.
    pub wcet: u64,
    /// Best-case execution time, in cycles.
    pub bcet: u64,
    /// Model-based average-case estimate, in cycles.
    pub acet_estimate: f64,
    /// Number of basic blocks in the model.
    pub block_count: usize,
    /// Number of live CFG nodes after lowering (includes synthetic
    /// entry/join/exit nodes).
    pub cfg_node_count: usize,
}

impl WcetReport {
    /// The WCET/ACET gap the paper's motivation section highlights.
    pub fn wcet_acet_ratio(&self) -> f64 {
        self.wcet as f64 / self.acet_estimate
    }
}

/// Statically analyses `program`, cross-checking the tree and CFG analyses.
///
/// # Errors
///
/// Propagates structural errors from either analysis and returns
/// [`ExecError::AnalysisMismatch`] when the two disagree (which would
/// indicate a lowering bug — the analyses are algorithmically independent).
///
/// # Example
///
/// ```
/// use mc_exec::program::{BasicBlock, Program};
/// use mc_exec::wcet::analyze;
///
/// # fn main() -> Result<(), mc_exec::ExecError> {
/// let p = Program::fixed_loop(
///     BasicBlock::new("header", 2),
///     10,
///     Program::block("body", 7),
/// );
/// let report = analyze(&p)?;
/// assert_eq!(report.wcet, 11 * 2 + 10 * 7);
/// # Ok(())
/// # }
/// ```
pub fn analyze(program: &Program) -> Result<WcetReport, ExecError> {
    program.validate()?;
    let tree_wcet = program.wcet();
    let cfg = program.to_cfg()?;
    let cfg_wcet = cfg.wcet()?;
    if tree_wcet != cfg_wcet {
        return Err(ExecError::AnalysisMismatch {
            tree: tree_wcet,
            cfg: cfg_wcet,
        });
    }
    Ok(WcetReport {
        wcet: tree_wcet,
        bcet: program.bcet(),
        acet_estimate: program.acet_estimate(),
        block_count: program.block_count(),
        cfg_node_count: cfg.live_node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BasicBlock;

    #[test]
    fn report_fields_are_consistent() {
        let p = Program::seq([
            Program::block("init", 10),
            Program::branch(
                BasicBlock::new("cond", 1),
                Program::block("t", 100),
                Program::block("e", 2),
                0.1,
            ),
        ]);
        let r = analyze(&p).unwrap();
        assert_eq!(r.wcet, 111);
        assert_eq!(r.bcet, 13);
        assert!((r.acet_estimate - (11.0 + 0.1 * 100.0 + 0.9 * 2.0)).abs() < 1e-9);
        assert_eq!(r.block_count, 4);
        assert!(r.cfg_node_count >= r.block_count);
        assert!(r.wcet_acet_ratio() > 1.0);
    }

    #[test]
    fn invalid_program_is_rejected() {
        let p = Program::branch(
            BasicBlock::new("c", 1),
            Program::block("t", 1),
            Program::block("e", 1),
            2.0,
        );
        assert!(matches!(
            analyze(&p).unwrap_err(),
            ExecError::InvalidProgram { .. }
        ));
    }

    #[test]
    fn deep_nesting_analyses_agree() {
        let mut p = Program::block("core", 3);
        for depth in 0..6 {
            p = Program::fixed_loop(BasicBlock::new(format!("h{depth}"), 1), 3, p);
        }
        let r = analyze(&p).unwrap();
        // Verified by construction through the cross-check; spot-check the
        // innermost term: 3^6 core executions.
        assert!(r.wcet >= 3u64.pow(6) * 3);
    }
}
