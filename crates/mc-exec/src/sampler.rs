//! Execution-time sampling.
//!
//! An [`ExecutionModel`] stands in for the paper's MEET ARM simulator: it
//! produces per-job execution times from a calibrated distribution, clamped
//! into `[1, WCET_pes]` cycles — the pessimistic WCET is, by definition of a
//! sound static analysis, never exceeded at runtime.

use crate::trace::ExecutionTrace;
use crate::ExecError;
use mc_stats::dist::Dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A stochastic execution-time model bounded by a pessimistic WCET.
///
/// # Example
///
/// ```
/// use mc_exec::sampler::ExecutionModel;
/// use mc_stats::dist::Dist;
///
/// # fn main() -> Result<(), mc_exec::ExecError> {
/// let dist = Dist::normal(1_000.0, 100.0).map_err(mc_exec::ExecError::Stats)?;
/// let model = ExecutionModel::new(dist, 5_000.0)?;
/// let trace = model.sample_trace("demo", 1_000, 42)?;
/// assert_eq!(trace.len(), 1_000);
/// assert!(trace.samples().iter().all(|&x| x >= 1.0 && x <= 5_000.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionModel {
    dist: Dist,
    wcet_pes: f64,
}

impl ExecutionModel {
    /// Creates a model from a sampling distribution and a pessimistic WCET
    /// (in cycles).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] when `wcet_pes` is non-finite or
    /// below one cycle, or when the distribution's analytic mean (if known)
    /// exceeds `wcet_pes` — such a model would clamp essentially every
    /// sample.
    pub fn new(dist: Dist, wcet_pes: f64) -> Result<Self, ExecError> {
        if !wcet_pes.is_finite() || wcet_pes < 1.0 {
            return Err(ExecError::InvalidModel {
                reason: "wcet_pes must be finite and at least one cycle",
            });
        }
        if let Some(mean) = dist.mean() {
            if mean > wcet_pes {
                return Err(ExecError::InvalidModel {
                    reason: "distribution mean exceeds wcet_pes",
                });
            }
        }
        Ok(ExecutionModel { dist, wcet_pes })
    }

    /// Creates the automotive Weibull execution model from a
    /// `(BCET, ACET, WCET)` triple, all in cycles: a shifted Weibull is
    /// fitted via [`Dist::weibull_from_triple`] (location = BCET,
    /// mean = ACET, survival at the WCET = `mc_stats::dist::WEIBULL_TRIPLE_TAIL`)
    /// and truncated at the pessimistic WCET, so every sample lands in
    /// `[BCET, WCET]` by construction — seeded, zero-dependency
    /// inverse-CDF sampling throughout.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Stats`] when the triple is not strictly
    /// ordered or no Weibull shape can realise its mean, and
    /// [`ExecError::InvalidModel`] when the WCET is below one cycle.
    pub fn weibull_from_triple(bcet: f64, acet: f64, wcet: f64) -> Result<Self, ExecError> {
        let dist = Dist::weibull_from_triple(bcet, acet, wcet)?.truncated_above(wcet)?;
        ExecutionModel::new(dist, wcet)
    }

    /// The underlying distribution.
    pub fn dist(&self) -> &Dist {
        &self.dist
    }

    /// The pessimistic WCET bound in cycles.
    pub fn wcet_pes(&self) -> f64 {
        self.wcet_pes
    }

    /// Draws one execution time, clamped into `[1, WCET_pes]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng).clamp(1.0, self.wcet_pes)
    }

    /// Draws a full trace of `count` jobs with a dedicated seeded generator
    /// — the reproducible analogue of "we executed 20 000 instances".
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] when `count` is zero.
    pub fn sample_trace(
        &self,
        name: impl Into<String>,
        count: usize,
        seed: u64,
    ) -> Result<ExecutionTrace, ExecError> {
        if count == 0 {
            return Err(ExecError::InvalidModel {
                reason: "a trace needs at least one sample",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = ExecutionTrace::new(name);
        for _ in 0..count {
            trace.push(self.sample(&mut rng))?;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_model() -> ExecutionModel {
        ExecutionModel::new(Dist::normal(1_000.0, 100.0).unwrap(), 5_000.0).unwrap()
    }

    #[test]
    fn construction_validates_bounds() {
        let d = Dist::normal(100.0, 10.0).unwrap();
        assert!(ExecutionModel::new(d.clone(), 0.5).is_err());
        assert!(ExecutionModel::new(d.clone(), f64::NAN).is_err());
        assert!(ExecutionModel::new(d.clone(), 50.0).is_err()); // mean 100 > 50
        assert!(ExecutionModel::new(d, 150.0).is_ok());
    }

    #[test]
    fn samples_stay_in_bounds() {
        let m = ExecutionModel::new(Dist::normal(10.0, 50.0).unwrap(), 40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = m.sample(&mut rng);
            assert!((1.0..=40.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn trace_is_reproducible_per_seed() {
        let m = normal_model();
        let a = m.sample_trace("a", 100, 7).unwrap();
        let b = m.sample_trace("a", 100, 7).unwrap();
        assert_eq!(a, b);
        let c = m.sample_trace("a", 100, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_statistics_approach_model_moments() {
        let m = normal_model();
        let t = m.sample_trace("t", 100_000, 3).unwrap();
        let s = t.summary().unwrap();
        assert!((s.mean() - 1_000.0).abs() < 2.0);
        assert!((s.std_dev() - 100.0).abs() < 2.0);
    }

    #[test]
    fn zero_count_is_rejected() {
        assert!(normal_model().sample_trace("t", 0, 1).is_err());
    }

    #[test]
    fn accessors_expose_parts() {
        let m = normal_model();
        assert_eq!(m.wcet_pes(), 5_000.0);
        assert_eq!(m.dist().mean(), Some(1_000.0));
    }

    #[test]
    fn serde_round_trip() {
        let m = normal_model();
        let json = serde_json::to_string(&m).unwrap();
        let back: ExecutionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    /// The moment contract for the automotive Weibull mode, in the same
    /// style as the Table I suite in `benchmarks`: for a grid of
    /// `(BCET, ACET, WCET)` triples spanning the Bosch factor-matrix
    /// extremes and several seeds, the empirical moments of 10⁴ samples
    /// must match the fitted (truncated) distribution, and every sample
    /// must stay inside `[BCET, WCET]`.
    mod weibull_contract {
        use super::*;

        /// Factor pairs `(bcet_f, wcet_f)` from the corners of the Bosch
        /// BCET/WCET factor matrix (feasible ones; infeasible corners are
        /// the generator's discard case), applied to a 1000-cycle ACET.
        const FACTOR_GRID: [(f64, f64); 7] = [
            (0.19, 1.30),
            (0.19, 29.11),
            (0.92, 1.30),
            (0.05, 30.03),
            (0.68, 4.75),
            (0.45, 1.03),
            (0.99, 1.06),
        ];
        const SEEDS: [u64; 3] = [1, 42, 1234];
        const SAMPLES: usize = 10_000;

        fn grid_triples() -> Vec<(f64, f64, f64)> {
            const ACET: f64 = 1_000.0;
            FACTOR_GRID
                .iter()
                .map(|&(b, w)| (b * ACET, ACET, w * ACET))
                .collect()
        }

        /// Reference moments of the truncated model by Simpson integration
        /// of the survival function: for `X` supported on `[lo, hi]`,
        /// `E[X] = lo + ∫ S` and `E[X²] = lo² + 2 ∫ x·S(x) dx`.
        fn reference_moments(m: &ExecutionModel, lo: f64, hi: f64) -> (f64, f64) {
            let n = 20_000usize;
            let h = (hi - lo) / n as f64;
            let (mut i1, mut i2) = (0.0, 0.0);
            for k in 0..=n {
                let x = lo + h * k as f64;
                let w = if k == 0 || k == n {
                    1.0
                } else if k % 2 == 1 {
                    4.0
                } else {
                    2.0
                };
                let s = m.dist().survival(x);
                i1 += w * s;
                i2 += w * x * s;
            }
            i1 *= h / 3.0;
            i2 *= h / 3.0;
            let mean = lo + i1;
            let var = (lo * lo + 2.0 * i2 - mean * mean).max(0.0);
            (mean, var.sqrt())
        }

        #[test]
        fn sampled_moments_match_fitted_distribution() {
            for (bcet, acet, wcet) in grid_triples() {
                let m = ExecutionModel::weibull_from_triple(bcet, acet, wcet).unwrap();
                let (ref_mean, ref_sd) = reference_moments(&m, bcet, wcet);
                // Truncation clips only the 1e-4 tail, so the truncated
                // mean must still sit on the calibration target.
                assert!(
                    (ref_mean - acet).abs() / acet < 0.02,
                    "({bcet},{acet},{wcet}): truncated mean {ref_mean} strays from ACET"
                );
                for seed in SEEDS {
                    let t = m.sample_trace("w", SAMPLES, seed).unwrap();
                    let s = t.summary().unwrap();
                    // Tolerances sized for heavy tails (shape k ≈ 0.5 at
                    // the widest factor corners): the sample mean of 10⁴
                    // draws wanders a few percent there; seeds are fixed
                    // so the check is deterministic.
                    let mean_err = (s.mean() - ref_mean).abs() / ref_mean;
                    assert!(
                        mean_err < 0.04,
                        "({bcet},{acet},{wcet}) seed {seed}: mean {} vs reference {ref_mean}",
                        s.mean()
                    );
                    let sd_err = (s.std_dev() - ref_sd).abs() / ref_sd;
                    assert!(
                        sd_err < 0.12,
                        "({bcet},{acet},{wcet}) seed {seed}: sigma {} vs reference {ref_sd}",
                        s.std_dev()
                    );
                }
            }
        }

        #[test]
        fn every_sample_stays_inside_bcet_wcet() {
            for (bcet, acet, wcet) in grid_triples() {
                let m = ExecutionModel::weibull_from_triple(bcet, acet, wcet).unwrap();
                for seed in SEEDS {
                    let t = m.sample_trace("w", SAMPLES, seed).unwrap();
                    assert!(
                        t.samples().iter().all(|&x| x >= bcet && x <= wcet),
                        "({bcet},{acet},{wcet}) seed {seed}: sample escaped [BCET, WCET]"
                    );
                }
            }
        }

        #[test]
        fn streams_are_bit_identical_across_thread_counts() {
            let (bcet, acet, wcet) = (190.0, 1_000.0, 29_110.0);
            let m = ExecutionModel::weibull_from_triple(bcet, acet, wcet).unwrap();
            let serial: Vec<Vec<f64>> = SEEDS
                .iter()
                .map(|&s| m.sample_trace("w", 2_000, s).unwrap().samples().to_vec())
                .collect();
            for threads in [2usize, 4] {
                let handles: Vec<_> = SEEDS
                    .iter()
                    .map(|&s| {
                        let m = m.clone();
                        std::thread::spawn(move || {
                            m.sample_trace("w", 2_000, s).unwrap().samples().to_vec()
                        })
                    })
                    .collect();
                let parallel: Vec<Vec<f64>> =
                    handles.into_iter().map(|h| h.join().unwrap()).collect();
                assert_eq!(serial, parallel, "{threads}-thread run diverged");
            }
        }

        #[test]
        fn infeasible_triples_are_rejected_not_mangled() {
            // The (bcet_f, wcet_f) = (0.99, 30.03) corner: mean-to-span
            // ratio below any Weibull shape's reach.
            assert!(ExecutionModel::weibull_from_triple(990.0, 1_000.0, 30_030.0).is_err());
            assert!(ExecutionModel::weibull_from_triple(500.0, 400.0, 1_000.0).is_err());
            assert!(ExecutionModel::weibull_from_triple(0.0, 0.0, 1_000.0).is_err());
        }
    }
}
