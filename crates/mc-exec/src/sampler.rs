//! Execution-time sampling.
//!
//! An [`ExecutionModel`] stands in for the paper's MEET ARM simulator: it
//! produces per-job execution times from a calibrated distribution, clamped
//! into `[1, WCET_pes]` cycles — the pessimistic WCET is, by definition of a
//! sound static analysis, never exceeded at runtime.

use crate::trace::ExecutionTrace;
use crate::ExecError;
use mc_stats::dist::Dist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A stochastic execution-time model bounded by a pessimistic WCET.
///
/// # Example
///
/// ```
/// use mc_exec::sampler::ExecutionModel;
/// use mc_stats::dist::Dist;
///
/// # fn main() -> Result<(), mc_exec::ExecError> {
/// let dist = Dist::normal(1_000.0, 100.0).map_err(mc_exec::ExecError::Stats)?;
/// let model = ExecutionModel::new(dist, 5_000.0)?;
/// let trace = model.sample_trace("demo", 1_000, 42)?;
/// assert_eq!(trace.len(), 1_000);
/// assert!(trace.samples().iter().all(|&x| x >= 1.0 && x <= 5_000.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionModel {
    dist: Dist,
    wcet_pes: f64,
}

impl ExecutionModel {
    /// Creates a model from a sampling distribution and a pessimistic WCET
    /// (in cycles).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] when `wcet_pes` is non-finite or
    /// below one cycle, or when the distribution's analytic mean (if known)
    /// exceeds `wcet_pes` — such a model would clamp essentially every
    /// sample.
    pub fn new(dist: Dist, wcet_pes: f64) -> Result<Self, ExecError> {
        if !wcet_pes.is_finite() || wcet_pes < 1.0 {
            return Err(ExecError::InvalidModel {
                reason: "wcet_pes must be finite and at least one cycle",
            });
        }
        if let Some(mean) = dist.mean() {
            if mean > wcet_pes {
                return Err(ExecError::InvalidModel {
                    reason: "distribution mean exceeds wcet_pes",
                });
            }
        }
        Ok(ExecutionModel { dist, wcet_pes })
    }

    /// The underlying distribution.
    pub fn dist(&self) -> &Dist {
        &self.dist
    }

    /// The pessimistic WCET bound in cycles.
    pub fn wcet_pes(&self) -> f64 {
        self.wcet_pes
    }

    /// Draws one execution time, clamped into `[1, WCET_pes]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng).clamp(1.0, self.wcet_pes)
    }

    /// Draws a full trace of `count` jobs with a dedicated seeded generator
    /// — the reproducible analogue of "we executed 20 000 instances".
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] when `count` is zero.
    pub fn sample_trace(
        &self,
        name: impl Into<String>,
        count: usize,
        seed: u64,
    ) -> Result<ExecutionTrace, ExecError> {
        if count == 0 {
            return Err(ExecError::InvalidModel {
                reason: "a trace needs at least one sample",
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = ExecutionTrace::new(name);
        for _ in 0..count {
            trace.push(self.sample(&mut rng))?;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normal_model() -> ExecutionModel {
        ExecutionModel::new(Dist::normal(1_000.0, 100.0).unwrap(), 5_000.0).unwrap()
    }

    #[test]
    fn construction_validates_bounds() {
        let d = Dist::normal(100.0, 10.0).unwrap();
        assert!(ExecutionModel::new(d.clone(), 0.5).is_err());
        assert!(ExecutionModel::new(d.clone(), f64::NAN).is_err());
        assert!(ExecutionModel::new(d.clone(), 50.0).is_err()); // mean 100 > 50
        assert!(ExecutionModel::new(d, 150.0).is_ok());
    }

    #[test]
    fn samples_stay_in_bounds() {
        let m = ExecutionModel::new(Dist::normal(10.0, 50.0).unwrap(), 40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = m.sample(&mut rng);
            assert!((1.0..=40.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn trace_is_reproducible_per_seed() {
        let m = normal_model();
        let a = m.sample_trace("a", 100, 7).unwrap();
        let b = m.sample_trace("a", 100, 7).unwrap();
        assert_eq!(a, b);
        let c = m.sample_trace("a", 100, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_statistics_approach_model_moments() {
        let m = normal_model();
        let t = m.sample_trace("t", 100_000, 3).unwrap();
        let s = t.summary().unwrap();
        assert!((s.mean() - 1_000.0).abs() < 2.0);
        assert!((s.std_dev() - 100.0).abs() < 2.0);
    }

    #[test]
    fn zero_count_is_rejected() {
        assert!(normal_model().sample_trace("t", 0, 1).is_err());
    }

    #[test]
    fn accessors_expose_parts() {
        let m = normal_model();
        assert_eq!(m.wcet_pes(), 5_000.0);
        assert_eq!(m.dist().mean(), Some(1_000.0));
    }

    #[test]
    fn serde_round_trip() {
        let m = normal_model();
        let json = serde_json::to_string(&m).unwrap();
        let back: ExecutionModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
