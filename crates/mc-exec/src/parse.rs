//! A small textual language for program models.
//!
//! Hand-building [`Program`] trees is fine for library code but clumsy for
//! experiments; this module provides a tiny DSL so benchmark models can be
//! written as text (and checked in as fixtures):
//!
//! ```text
//! # image kernel
//! block init 120;
//! loop rows 4 bound=64 min=64 avg=64 {
//!     if check 2 p=0.8 {
//!         block filter 180;
//!     } else {
//!         block copy 12;
//!     }
//! }
//! block commit 40;
//! ```
//!
//! * `block NAME COST;` — a basic block costing `COST` cycles;
//! * `loop NAME HEADER_COST bound=N [min=N] [avg=X] { … }` — a bounded
//!   loop (`min` defaults to 0, `avg` to `(min+bound)/2`);
//! * `if NAME COND_COST p=X { … } else { … }` — a two-way branch taken
//!   with probability `X`;
//! * `#` starts a comment to end of line.
//!
//! [`to_source`] pretty-prints a `Program` back; parse ∘ print is the
//! identity (tested).

use crate::program::{BasicBlock, Program};
use crate::ExecError;
use std::fmt::Write as _;

/// Parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for ExecError {
    fn from(e: ParseError) -> Self {
        ExecError::Serialization {
            detail: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Semi,
    LBrace,
    RBrace,
    Eq,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    column: usize,
}

fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut column = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, column);
        let mut advance = |chars: &mut std::iter::Peekable<std::str::Chars>| {
            let c = chars.next().expect("peeked");
            if c == '\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
            c
        };
        if c.is_whitespace() {
            advance(&mut chars);
            continue;
        }
        if c == '#' {
            while let Some(&c) = chars.peek() {
                advance(&mut chars);
                if c == '\n' {
                    break;
                }
            }
            continue;
        }
        let tok = match c {
            ';' => {
                advance(&mut chars);
                Tok::Semi
            }
            '{' => {
                advance(&mut chars);
                Tok::LBrace
            }
            '}' => {
                advance(&mut chars);
                Tok::RBrace
            }
            '=' => {
                advance(&mut chars);
                Tok::Eq
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '_' {
                        text.push(advance(&mut chars));
                    } else {
                        break;
                    }
                }
                let cleaned = text.replace('_', "");
                let value = cleaned.parse::<f64>().map_err(|_| ParseError {
                    line: tl,
                    column: tc,
                    message: format!("invalid number `{text}`"),
                })?;
                Tok::Number(value)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        text.push(advance(&mut chars));
                    } else {
                        break;
                    }
                }
                Tok::Ident(text)
            }
            other => {
                return Err(ParseError {
                    line: tl,
                    column: tc,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        out.push(Spanned {
            tok,
            line: tl,
            column: tc,
        });
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.peek().map(|s| (s.line, s.column)).unwrap_or_else(|| {
            self.toks
                .last()
                .map(|s| (s.line, s.column + 1))
                .unwrap_or((1, 1))
        });
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }

    fn next(&mut self, what: &str) -> Result<Spanned, ParseError> {
        let s = self
            .peek()
            .cloned()
            .ok_or_else(|| self.err_here(format!("expected {what}, found end of input")))?;
        self.pos += 1;
        Ok(s)
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        let s = self.next(what)?;
        if s.tok != tok {
            return Err(ParseError {
                line: s.line,
                column: s.column,
                message: format!("expected {what}, found {:?}", s.tok),
            });
        }
        Ok(())
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        let s = self.next(what)?;
        match s.tok {
            Tok::Ident(name) => Ok(name),
            other => Err(ParseError {
                line: s.line,
                column: s.column,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        let s = self.next(what)?;
        match s.tok {
            Tok::Number(v) => Ok(v),
            other => Err(ParseError {
                line: s.line,
                column: s.column,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn cost(&mut self, what: &str) -> Result<u64, ParseError> {
        let v = self.number(what)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(self.err_here(format!("{what} must be a non-negative integer")));
        }
        Ok(v as u64)
    }

    /// `key=NUMBER`, where the key ident was already consumed.
    fn keyed_number(&mut self, key: &str) -> Result<f64, ParseError> {
        self.expect(Tok::Eq, &format!("`=` after `{key}`"))?;
        self.number(&format!("value for `{key}`"))
    }

    fn sequence(&mut self, stop_at_rbrace: bool) -> Result<Vec<Program>, ParseError> {
        let mut items = Vec::new();
        loop {
            match self.peek().map(|s| s.tok.clone()) {
                None => {
                    if stop_at_rbrace {
                        return Err(self.err_here("expected `}`"));
                    }
                    return Ok(items);
                }
                Some(Tok::RBrace) if stop_at_rbrace => return Ok(items),
                Some(Tok::Ident(word)) => match word.as_str() {
                    "block" => {
                        self.pos += 1;
                        let name = self.ident("block name")?;
                        let cost = self.cost("block cost")?;
                        self.expect(Tok::Semi, "`;` after block")?;
                        items.push(Program::Block(BasicBlock::new(name, cost)));
                    }
                    "loop" => {
                        self.pos += 1;
                        let name = self.ident("loop name")?;
                        let header_cost = self.cost("loop header cost")?;
                        let mut bound: Option<u64> = None;
                        let mut min: Option<u64> = None;
                        let mut avg: Option<f64> = None;
                        while let Some(Tok::Ident(key)) = self.peek().map(|s| s.tok.clone()) {
                            match key.as_str() {
                                "bound" => {
                                    self.pos += 1;
                                    let v = self.keyed_number("bound")?;
                                    bound = Some(v as u64);
                                }
                                "min" => {
                                    self.pos += 1;
                                    let v = self.keyed_number("min")?;
                                    min = Some(v as u64);
                                }
                                "avg" => {
                                    self.pos += 1;
                                    avg = Some(self.keyed_number("avg")?);
                                }
                                _ => break,
                            }
                        }
                        let bound =
                            bound.ok_or_else(|| self.err_here("loop requires `bound=N`"))?;
                        let min = min.unwrap_or(0);
                        let avg = avg.unwrap_or((min + bound) as f64 / 2.0);
                        self.expect(Tok::LBrace, "`{` opening the loop body")?;
                        let body = self.sequence(true)?;
                        self.expect(Tok::RBrace, "`}` closing the loop body")?;
                        items.push(Program::variable_loop(
                            BasicBlock::new(name, header_cost),
                            bound,
                            min,
                            avg,
                            Program::Seq(body),
                        ));
                    }
                    "if" => {
                        self.pos += 1;
                        let name = self.ident("branch name")?;
                        let cond_cost = self.cost("branch condition cost")?;
                        let p_key = self.ident("`p=PROB`")?;
                        if p_key != "p" {
                            return Err(self.err_here("expected `p=PROB` after branch cost"));
                        }
                        let p = self.keyed_number("p")?;
                        self.expect(Tok::LBrace, "`{` opening the then-arm")?;
                        let then_branch = self.sequence(true)?;
                        self.expect(Tok::RBrace, "`}` closing the then-arm")?;
                        let else_kw = self.ident("`else`")?;
                        if else_kw != "else" {
                            return Err(self.err_here("expected `else`"));
                        }
                        self.expect(Tok::LBrace, "`{` opening the else-arm")?;
                        let else_branch = self.sequence(true)?;
                        self.expect(Tok::RBrace, "`}` closing the else-arm")?;
                        items.push(Program::branch(
                            BasicBlock::new(name, cond_cost),
                            Program::Seq(then_branch),
                            Program::Seq(else_branch),
                            p,
                        ));
                    }
                    other => {
                        return Err(self.err_here(format!(
                            "expected `block`, `loop` or `if`, found `{other}`"
                        )))
                    }
                },
                Some(other) => {
                    return Err(self.err_here(format!("expected a statement, found {other:?}")))
                }
            }
        }
    }
}

/// Parses DSL source into a validated [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on syntax errors; semantic
/// violations (probabilities out of range, `min > bound`) surface through
/// [`Program::validate`] as [`ExecError::InvalidProgram`].
///
/// # Example
///
/// ```
/// use mc_exec::parse::parse_program;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_program("block a 3; loop l 1 bound=4 { block b 2; }")?;
/// assert_eq!(p.wcet(), 3 + 5 * 1 + 4 * 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_program(src: &str) -> Result<Program, ExecError> {
    let toks = tokenize(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let items = parser.sequence(false)?;
    let program = Program::Seq(items);
    program.validate()?;
    Ok(program)
}

/// Pretty-prints a [`Program`] in the DSL syntax; `parse_program` of the
/// result reproduces the tree (modulo `Seq` nesting, which is flattened).
pub fn to_source(program: &Program) -> String {
    let mut out = String::new();
    emit(program, 0, &mut out);
    out
}

fn emit(program: &Program, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match program {
        Program::Block(b) => {
            let _ = writeln!(out, "{pad}block {} {};", b.name, b.cost);
        }
        Program::Seq(parts) => {
            for p in parts {
                emit(p, indent, out);
            }
        }
        Program::Branch {
            cond,
            then_branch,
            else_branch,
            taken_probability,
        } => {
            let _ = writeln!(
                out,
                "{pad}if {} {} p={} {{",
                cond.name, cond.cost, taken_probability
            );
            emit(then_branch, indent + 1, out);
            let _ = writeln!(out, "{pad}}} else {{");
            emit(else_branch, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Program::Loop {
            header,
            bound,
            min_iterations,
            avg_iterations,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}loop {} {} bound={} min={} avg={} {{",
                header.name, header.cost, bound, min_iterations, avg_iterations
            );
            emit(body, indent + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcet::analyze;

    #[test]
    fn parses_single_block() {
        let p = parse_program("block setup 42;").unwrap();
        assert_eq!(p.wcet(), 42);
    }

    #[test]
    fn parses_loop_with_defaults() {
        let p = parse_program("loop l 2 bound=10 { block b 7; }").unwrap();
        assert_eq!(p.wcet(), 11 * 2 + 10 * 7);
        assert_eq!(p.bcet(), 2); // min defaults to 0
        assert!((p.acet_estimate() - (6.0 * 2.0 + 5.0 * 7.0)).abs() < 1e-9);
    }

    #[test]
    fn parses_branch() {
        let p = parse_program("if cond 1 p=0.25 { block t 10; } else { block e 4; }").unwrap();
        assert_eq!(p.wcet(), 11);
        assert_eq!(p.bcet(), 5);
        assert!((p.acet_estimate() - (1.0 + 0.25 * 10.0 + 0.75 * 4.0)).abs() < 1e-9);
    }

    #[test]
    fn parses_nested_structure_with_comments() {
        let src = "
            # image kernel
            block init 120;
            loop rows 4 bound=64 min=64 avg=64 {
                if check 2 p=0.8 {
                    block filter 180; # expensive path
                } else {
                    block copy 12;
                }
            }
            block commit 40;
        ";
        let p = parse_program(src).unwrap();
        // Matches the hand-built program in examples/wcet_analysis.rs.
        assert_eq!(p.wcet(), 120 + 65 * 4 + 64 * (2 + 180) + 40);
        // The full analyser accepts it (tree and CFG agree).
        assert!(analyze(&p).is_ok());
    }

    #[test]
    fn underscores_in_numbers_are_allowed() {
        let p = parse_program("block big 1_000_000;").unwrap();
        assert_eq!(p.wcet(), 1_000_000);
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let err = parse_program("block a 1;\nblock b ;").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("2:"), "position missing: {text}");

        let err = parse_program("loop l 1 { block b 2; }").unwrap_err();
        assert!(err.to_string().contains("bound"), "{err}");

        let err = parse_program("if c 1 p=0.5 { block t 1; }").unwrap_err();
        assert!(err.to_string().contains("else"), "{err}");

        let err = parse_program("widget w 3;").unwrap_err();
        assert!(err.to_string().contains("block"), "{err}");

        let err = parse_program("block a 1; }").unwrap_err();
        assert!(err.to_string().contains("statement"), "{err}");

        let err = parse_program("block a 1.5;").unwrap_err();
        assert!(err.to_string().contains("integer"), "{err}");

        let err = parse_program("block a @;").unwrap_err();
        assert!(err.to_string().contains("unexpected character"), "{err}");
    }

    #[test]
    fn semantic_errors_come_from_validate() {
        let err = parse_program("if c 1 p=1.5 { block t 1; } else { block e 1; }").unwrap_err();
        assert!(matches!(err, ExecError::InvalidProgram { .. }));

        let err = parse_program("loop l 1 bound=3 min=5 { block b 1; }").unwrap_err();
        assert!(matches!(err, ExecError::InvalidProgram { .. }));
    }

    #[test]
    fn print_parse_round_trip() {
        let src = "
            block init 5;
            loop outer 2 bound=10 min=1 avg=4 {
                if c 1 p=0.5 {
                    loop inner 1 bound=3 min=3 avg=3 { block ib 4; }
                } else {
                    block fast 2;
                }
                block tail 1;
            }
        ";
        let p1 = parse_program(src).unwrap();
        let printed = to_source(&p1);
        let p2 = parse_program(&printed).unwrap();
        // Round trip preserves all three analyses.
        assert_eq!(p1.wcet(), p2.wcet());
        assert_eq!(p1.bcet(), p2.bcet());
        assert!((p1.acet_estimate() - p2.acet_estimate()).abs() < 1e-9);
        // And printing again is a fixpoint.
        assert_eq!(printed, to_source(&p2));
    }

    #[test]
    fn empty_source_is_an_empty_program() {
        let p = parse_program("  # nothing but a comment\n").unwrap();
        assert_eq!(p.wcet(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_program() -> impl Strategy<Value = Program> {
            let leaf = (0u64..100).prop_map(|c| Program::block("b", c));
            leaf.prop_recursive(3, 16, 3, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 1..3).prop_map(Program::seq),
                    (inner.clone(), inner.clone(), 0u64..20).prop_map(|(t, e, c)| {
                        Program::branch(BasicBlock::new("c", c), t, e, 0.5)
                    }),
                    (inner, 0u64..8, 0u64..20).prop_map(|(b, bound, c)| {
                        Program::variable_loop(
                            BasicBlock::new("h", c),
                            bound,
                            0,
                            bound as f64 / 2.0,
                            b,
                        )
                    }),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn print_then_parse_preserves_analyses(p in arb_program()) {
                let src = to_source(&p);
                let back = parse_program(&src).unwrap();
                prop_assert_eq!(back.wcet(), p.wcet());
                prop_assert_eq!(back.bcet(), p.bcet());
                prop_assert!((back.acet_estimate() - p.acet_estimate()).abs() < 1e-9);
            }
        }
    }
}
