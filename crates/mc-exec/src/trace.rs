//! Execution traces.
//!
//! An [`ExecutionTrace`] is the synthetic equivalent of the paper's
//! 20 000-instance MEET simulator runs: a named sequence of per-job
//! execution times (in cycles ≡ nanoseconds at the workspace's 1 GHz
//! convention). Traces summarise to `(ACET, σ)` exactly as Eqs. 3–4
//! prescribe and serialise to JSON for reuse across experiments.

use crate::ExecError;
use mc_stats::estimate::{exceedance_rate, ExceedanceEstimate};
use mc_stats::histogram::Histogram;
use mc_stats::summary::Summary;
use serde::{Deserialize, Serialize};

/// A named sequence of measured execution times.
///
/// # Example
///
/// ```
/// use mc_exec::trace::ExecutionTrace;
///
/// # fn main() -> Result<(), mc_exec::ExecError> {
/// let trace = ExecutionTrace::from_samples("demo", vec![10.0, 12.0, 11.0, 30.0])?;
/// let summary = trace.summary()?;
/// assert_eq!(summary.count(), 4);
/// // Overrun rate at a candidate optimistic WCET of 12.5 cycles:
/// assert_eq!(trace.overrun_rate(12.5)?.exceeding, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    name: String,
    samples: Vec<f64>,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        ExecutionTrace {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// Creates a trace from existing samples.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidTrace`] when any sample is non-finite or
    /// non-positive (execution takes time).
    pub fn from_samples(name: impl Into<String>, samples: Vec<f64>) -> Result<Self, ExecError> {
        let mut t = ExecutionTrace::new(name);
        for s in samples {
            t.push(s)?;
        }
        Ok(t)
    }

    /// Appends one observation.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidTrace`] when the sample is non-finite or
    /// non-positive.
    pub fn push(&mut self, sample: f64) -> Result<(), ExecError> {
        if !sample.is_finite() || sample <= 0.0 {
            return Err(ExecError::InvalidTrace {
                reason: "execution-time samples must be finite and positive",
            });
        }
        self.samples.push(sample);
        Ok(())
    }

    /// The trace name (typically the benchmark it came from).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Summarises the trace — `mean()` is the paper's ACET (Eq. 3),
    /// `std_dev()` its σ (Eq. 4).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidTrace`] for an empty trace.
    pub fn summary(&self) -> Result<Summary, ExecError> {
        Summary::from_samples(&self.samples).map_err(|_| ExecError::InvalidTrace {
            reason: "cannot summarise an empty trace",
        })
    }

    /// Measured overrun rate at a candidate optimistic WCET `level`
    /// (the paper's "% of samples that overruns" columns).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Stats`] when `level` is NaN.
    pub fn overrun_rate(&self, level: f64) -> Result<ExceedanceEstimate, ExecError> {
        exceedance_rate(&self.samples, level).map_err(ExecError::Stats)
    }

    /// Builds a histogram over the trace (Fig. 1-style shape inspection).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Stats`] for an empty trace or zero bins.
    pub fn histogram(&self, bins: usize) -> Result<Histogram, ExecError> {
        Histogram::from_samples(&self.samples, bins).map_err(ExecError::Stats)
    }

    /// Serialises the trace to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Serialization`] when encoding fails.
    pub fn to_json(&self) -> Result<String, ExecError> {
        serde_json::to_string(self).map_err(|e| ExecError::Serialization {
            detail: e.to_string(),
        })
    }

    /// Parses a trace from JSON produced by [`ExecutionTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Serialization`] on malformed input and
    /// [`ExecError::InvalidTrace`] when the decoded samples violate trace
    /// invariants.
    pub fn from_json(json: &str) -> Result<Self, ExecError> {
        let raw: ExecutionTrace =
            serde_json::from_str(json).map_err(|e| ExecError::Serialization {
                detail: e.to_string(),
            })?;
        // Re-validate: serde bypasses `push`.
        ExecutionTrace::from_samples(raw.name, raw.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_samples() {
        let mut t = ExecutionTrace::new("t");
        t.push(1.0).unwrap();
        assert!(t.push(0.0).is_err());
        assert!(t.push(-1.0).is_err());
        assert!(t.push(f64::NAN).is_err());
        assert!(t.push(f64::INFINITY).is_err());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn summary_matches_paper_equations() {
        let t = ExecutionTrace::from_samples("t", vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
            .unwrap();
        let s = t.summary().unwrap();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
    }

    #[test]
    fn empty_trace_cannot_be_summarised() {
        let t = ExecutionTrace::new("t");
        assert!(t.is_empty());
        assert!(t.summary().is_err());
        assert!(t.histogram(4).is_err());
    }

    #[test]
    fn overrun_rate_counts_strict_exceedances() {
        let t = ExecutionTrace::from_samples("t", vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(t.overrun_rate(2.0).unwrap().exceeding, 1);
        assert_eq!(t.overrun_rate(0.5).unwrap().exceeding, 3);
    }

    #[test]
    fn json_round_trip() {
        let t = ExecutionTrace::from_samples("bench", vec![1.5, 2.5]).unwrap();
        let json = t.to_json().unwrap();
        let back = ExecutionTrace::from_json(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_with_invalid_samples_is_rejected() {
        let json = r#"{"name":"evil","samples":[1.0,-3.0]}"#;
        assert!(matches!(
            ExecutionTrace::from_json(json).unwrap_err(),
            ExecError::InvalidTrace { .. }
        ));
        assert!(ExecutionTrace::from_json("not json").is_err());
    }

    #[test]
    fn histogram_covers_trace() {
        let t = ExecutionTrace::from_samples("t", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let h = t.histogram(2).unwrap();
        assert_eq!(h.total(), 4);
    }
}
