//! Execution-time simulation substrate for the `chebymc` workspace.
//!
//! The paper measures benchmark execution times on MEET (an ARM
//! instruction-level simulator) and obtains pessimistic WCETs from OTAWA
//! (a static analyser). Neither is available here, so this crate builds the
//! closest synthetic equivalents that exercise the same downstream code:
//!
//! * [`cfg`](mod@cfg) / [`program`] / [`wcet`] — a miniature structural WCET analyser
//!   (dominators, natural-loop collapsing, DAG longest path) over explicit
//!   program models; the OTAWA stand-in.
//! * [`sampler`] / [`trace`] — seeded execution-time sampling bounded by the
//!   pessimistic WCET; the MEET stand-in.
//! * [`benchmarks`] — the paper's Table I suite (qsort-10/100/10000, corner,
//!   edge, smooth, epic) with distribution models calibrated to the
//!   published `(ACET, σ, WCET_pes)` triples.
//!
//! # Example
//!
//! ```
//! use mc_exec::benchmarks;
//!
//! # fn main() -> Result<(), mc_exec::ExecError> {
//! let bench = benchmarks::qsort(100)?;
//! // Static analysis reproduces Table I's pessimistic WCET…
//! assert_eq!(bench.analyze()?.wcet, 410_000);
//! // …and sampling reproduces the measured behaviour.
//! let trace = bench.sample_trace(1_000, 42)?;
//! assert!(trace.summary()?.mean() < 410_000.0 / 8.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod benchmarks;
pub mod cfg;
pub mod parse;
pub mod platform;
pub mod program;
pub mod sampler;
pub mod trace;
pub mod wcet;

use std::error::Error;
use std::fmt;

pub use benchmarks::Benchmark;
pub use sampler::ExecutionModel;
pub use trace::ExecutionTrace;

/// Errors produced by the execution-time substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// A CFG operation referenced a node that does not exist.
    UnknownNode {
        /// The out-of-range index.
        index: usize,
    },
    /// A CFG analysis ran without an entry or exit being set.
    MissingEntryOrExit,
    /// A live CFG node is unreachable from the entry.
    UnreachableNode {
        /// The unreachable node's index.
        index: usize,
    },
    /// The CFG contains a cycle that is not a bounded natural loop.
    IrreducibleCfg,
    /// A natural loop's header carries no iteration bound.
    MissingLoopBound {
        /// The header node's index.
        index: usize,
    },
    /// A WCET computation overflowed 64 bits.
    CostOverflow,
    /// A program model violates its structural annotations.
    InvalidProgram {
        /// What was violated.
        reason: &'static str,
    },
    /// The tree and CFG analyses disagreed (internal invariant).
    AnalysisMismatch {
        /// Tree-analysis WCET.
        tree: u64,
        /// CFG-analysis WCET.
        cfg: u64,
    },
    /// An execution model was configured inconsistently.
    InvalidModel {
        /// What was violated.
        reason: &'static str,
    },
    /// A trace operation received invalid samples.
    InvalidTrace {
        /// What was violated.
        reason: &'static str,
    },
    /// No benchmark with the requested name exists.
    UnknownBenchmark {
        /// The unrecognised name.
        name: String,
    },
    /// An underlying statistics error.
    Stats(mc_stats::StatsError),
    /// JSON (de)serialisation failed.
    Serialization {
        /// Serialiser error text.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownNode { index } => write!(f, "unknown CFG node index {index}"),
            ExecError::MissingEntryOrExit => {
                write!(f, "CFG analysis requires an entry and an exit node")
            }
            ExecError::UnreachableNode { index } => {
                write!(f, "CFG node {index} is unreachable from the entry")
            }
            ExecError::IrreducibleCfg => {
                write!(f, "CFG contains an irreducible cycle; cannot bound it")
            }
            ExecError::MissingLoopBound { index } => {
                write!(f, "loop headed at node {index} has no iteration bound")
            }
            ExecError::CostOverflow => write!(f, "WCET computation overflowed 64 bits"),
            ExecError::InvalidProgram { reason } => write!(f, "invalid program model: {reason}"),
            ExecError::AnalysisMismatch { tree, cfg } => {
                write!(f, "tree and CFG WCET analyses disagree: {tree} vs {cfg}")
            }
            ExecError::InvalidModel { reason } => write!(f, "invalid execution model: {reason}"),
            ExecError::InvalidTrace { reason } => write!(f, "invalid trace: {reason}"),
            ExecError::UnknownBenchmark { name } => write!(f, "unknown benchmark `{name}`"),
            ExecError::Stats(e) => write!(f, "statistics error: {e}"),
            ExecError::Serialization { detail } => write!(f, "serialization failed: {detail}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mc_stats::StatsError> for ExecError {
    fn from(e: mc_stats::StatsError) -> Self {
        ExecError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(ExecError::IrreducibleCfg
            .to_string()
            .contains("irreducible"));
        assert!(ExecError::UnknownNode { index: 3 }
            .to_string()
            .contains('3'));
        assert!(ExecError::AnalysisMismatch { tree: 1, cfg: 2 }
            .to_string()
            .contains("disagree"));
        let e = ExecError::Stats(mc_stats::StatsError::EmptySamples);
        assert!(e.to_string().contains("statistics"));
    }

    #[test]
    fn stats_errors_convert_and_chain() {
        let e: ExecError = mc_stats::StatsError::EmptySamples.into();
        assert!(matches!(e, ExecError::Stats(_)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecError>();
    }
}
