//! The paper's benchmark suite, modelled synthetically.
//!
//! Table I of the paper reports, for seven benchmark configurations
//! (three qsort input sizes and four image/media kernels), the measured
//! ACET, the OTAWA-analysed pessimistic WCET, and the execution-time
//! standard deviation. This module rebuilds each benchmark as:
//!
//! * a [`Program`] model whose *statically analysed* WCET equals the
//!   published `WCET_pes` exactly (the qsort models have the paper's
//!   O(k log k) average vs O(k²) worst-case asymmetry), and
//! * an [`ExecutionModel`] whose sampling distribution is calibrated to the
//!   published `(ACET, σ)`.
//!
//! Distribution families: the qsort variants use a truncated normal — this
//! reproduces Table II's qsort-100 row almost exactly (15.78 % measured at
//! `n = 1` vs the normal's 15.87 %). The image kernels (`corner`, `edge`,
//! `smooth`, `epic`) show a lighter 1σ tail (~9–10 %) with a small secondary
//! mode near `µ + 2σ` (~3 % at 2σ, ≈0 at 3σ); they are modelled as a
//! left-skewed Gumbel bulk plus a narrow high-cost cluster — a shape typical
//! of data-dependent image kernels (hot path plus an occasional busy tile).

use crate::program::{BasicBlock, Program};
use crate::sampler::ExecutionModel;
use crate::trace::ExecutionTrace;
use crate::wcet::{analyze, WcetReport};
use crate::ExecError;
use mc_stats::dist::Dist;
use serde::{Deserialize, Serialize};

/// The published Table I statistics of a benchmark, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableSpec {
    /// Average-case execution time.
    pub acet: f64,
    /// Standard deviation of the execution time.
    pub sigma: f64,
    /// Pessimistic WCET (static analysis).
    pub wcet_pes: f64,
}

impl TableSpec {
    /// Validates `0 < acet ≤ wcet_pes` and `σ ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] on violation.
    pub fn validate(&self) -> Result<(), ExecError> {
        if !(self.acet.is_finite() && self.sigma.is_finite() && self.wcet_pes.is_finite()) {
            return Err(ExecError::InvalidModel {
                reason: "benchmark spec values must be finite",
            });
        }
        if self.acet <= 0.0 || self.sigma < 0.0 || self.wcet_pes < self.acet {
            return Err(ExecError::InvalidModel {
                reason: "benchmark spec must satisfy 0 < acet <= wcet_pes, sigma >= 0",
            });
        }
        Ok(())
    }
}

/// A fully modelled benchmark: published statistics, a program model whose
/// analysed WCET matches, and a calibrated execution-time sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    name: String,
    spec: TableSpec,
    model: ExecutionModel,
    program: Program,
}

impl Benchmark {
    /// Assembles a benchmark from parts, validating the spec and that the
    /// program's analysed WCET equals the spec's `wcet_pes`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::InvalidModel`] when the program's WCET disagrees
    /// with the spec, plus any analysis error.
    pub fn from_parts(
        name: impl Into<String>,
        spec: TableSpec,
        program: Program,
        dist: Dist,
    ) -> Result<Self, ExecError> {
        spec.validate()?;
        let report = analyze(&program)?;
        if report.wcet as f64 != spec.wcet_pes {
            return Err(ExecError::InvalidModel {
                reason: "program WCET must equal the spec's wcet_pes",
            });
        }
        let model = ExecutionModel::new(dist, spec.wcet_pes)?;
        Ok(Benchmark {
            name: name.into(),
            spec,
            model,
            program,
        })
    }

    /// Benchmark name (e.g. `"qsort-100"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The published Table I statistics.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// The calibrated execution-time model (MEET stand-in).
    pub fn model(&self) -> &ExecutionModel {
        &self.model
    }

    /// The structural program model (OTAWA-analysable stand-in).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the static analyser on the program model.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors (none occur for the built-in benchmarks).
    pub fn analyze(&self) -> Result<WcetReport, ExecError> {
        analyze(&self.program)
    }

    /// Samples a `count`-job execution trace with the given seed — the
    /// analogue of the paper's "20000 instances with different inputs".
    ///
    /// # Errors
    ///
    /// Returns an error when `count` is zero.
    pub fn sample_trace(&self, count: usize, seed: u64) -> Result<ExecutionTrace, ExecError> {
        self.model.sample_trace(self.name.clone(), count, seed)
    }
}

/// Truncated-normal execution model used by the qsort family.
fn qsort_dist(spec: &TableSpec) -> Result<Dist, ExecError> {
    Dist::normal(spec.acet, spec.sigma)
        .and_then(|d| d.truncated_above(spec.wcet_pes))
        .map_err(ExecError::Stats)
}

/// Left-skewed bulk plus a narrow secondary cluster for the image kernels.
///
/// Component placement was solved so the mixture's mean and variance equal
/// the published `(ACET, σ²)` while reproducing Table II's measured overrun
/// profile (~54 % at n = 0, ~10 % at n = 1, ~3 % at n = 2, ≈0 at n = 3):
/// a Gumbel-min bulk (95 %) centred slightly below the ACET and a tight
/// normal cluster (5 %) at `ACET + 2.185σ`.
fn image_dist(spec: &TableSpec) -> Result<Dist, ExecError> {
    let bulk = Dist::gumbel_min_from_moments(spec.acet - 0.1150 * spec.sigma, 0.8868 * spec.sigma)
        .map_err(ExecError::Stats)?;
    let cluster = Dist::normal(spec.acet + 2.185 * spec.sigma, 0.1774 * spec.sigma)
        .map_err(ExecError::Stats)?;
    Dist::mixture([(0.95, bulk), (0.05, cluster)])
        .and_then(|d| d.truncated_above(spec.wcet_pes))
        .map_err(ExecError::Stats)
}

/// Builds the qsort program model: k×k nested comparison loops (the O(k²)
/// worst case) whose average inner iteration count is tuned so that the
/// model's ACET estimate matches the published one (the O(k log k) average).
fn qsort_program(k: u64, spec: &TableSpec) -> Program {
    let n = k * k;
    let cmp_cost = (spec.wcet_pes as u64) / n;
    let pad = spec.wcet_pes as u64 - n * cmp_cost;
    let avg_inner = ((spec.acet - pad as f64) / (k as f64 * cmp_cost as f64)).clamp(0.0, k as f64);
    Program::seq([
        Program::block("partition-setup", pad),
        Program::fixed_loop(
            BasicBlock::new("outer", 0),
            k,
            Program::variable_loop(
                BasicBlock::new("inner", 0),
                k,
                0,
                avg_inner,
                Program::block("compare-swap", cmp_cost),
            ),
        ),
    ])
}

/// Builds an image-kernel program model: a rows×cols pixel scan with a
/// data-dependent branch between a cheap pass and an expensive response
/// computation, with the taken-probability tuned to the published ACET.
fn image_program(rows: u64, cols: u64, spec: &TableSpec) -> Program {
    const COND: u64 = 3;
    const CHEAP: u64 = 2;
    let pixels = rows * cols;
    let per_pixel = (spec.wcet_pes as u64) / pixels;
    let expensive = per_pixel - COND;
    let pad = spec.wcet_pes as u64 - pixels * per_pixel;
    let base = pad as f64 + pixels as f64 * (COND + CHEAP) as f64;
    let p = ((spec.acet - base) / (pixels as f64 * (expensive - CHEAP) as f64)).clamp(0.0, 1.0);
    Program::seq([
        Program::block("frame-setup", pad),
        Program::fixed_loop(
            BasicBlock::new("rows", 0),
            rows,
            Program::fixed_loop(
                BasicBlock::new("cols", 0),
                cols,
                Program::branch(
                    BasicBlock::new("pixel-test", COND),
                    Program::block("kernel-response", expensive),
                    Program::block("skip", CHEAP),
                    p,
                ),
            ),
        ),
    ])
}

fn qsort_spec(k: u64) -> Option<TableSpec> {
    match k {
        10 => Some(TableSpec {
            acet: 2.3e2,
            sigma: 3.9e1,
            wcet_pes: 1.9e3,
        }),
        100 => Some(TableSpec {
            acet: 1.8e4,
            sigma: 1.2e3,
            wcet_pes: 4.1e5,
        }),
        10_000 => Some(TableSpec {
            acet: 1.8e8,
            sigma: 1.1e6,
            wcet_pes: 1.0e10,
        }),
        _ => None,
    }
}

/// The `qsort-k` benchmark for the paper's input sizes `k ∈ {10, 100, 10000}`.
///
/// # Errors
///
/// Returns [`ExecError::UnknownBenchmark`] for other sizes (Table I only
/// publishes these three).
pub fn qsort(k: u64) -> Result<Benchmark, ExecError> {
    let spec = qsort_spec(k).ok_or_else(|| ExecError::UnknownBenchmark {
        name: format!("qsort-{k}"),
    })?;
    Benchmark::from_parts(
        format!("qsort-{k}"),
        spec,
        qsort_program(k, &spec),
        qsort_dist(&spec)?,
    )
}

fn image_benchmark(name: &str, spec: TableSpec) -> Result<Benchmark, ExecError> {
    Benchmark::from_parts(
        name,
        spec,
        image_program(256, 256, &spec),
        image_dist(&spec)?,
    )
}

/// The `corner` (corner-detection) benchmark.
///
/// # Errors
///
/// Construction is infallible for the published spec; errors indicate an
/// internal inconsistency.
pub fn corner() -> Result<Benchmark, ExecError> {
    image_benchmark(
        "corner",
        TableSpec {
            acet: 5.6e5,
            sigma: 6.2e4,
            wcet_pes: 9.4e6,
        },
    )
}

/// The `edge` (edge-detection) benchmark. See [`corner`] for errors.
///
/// # Errors
///
/// Same conditions as [`corner`].
pub fn edge() -> Result<Benchmark, ExecError> {
    image_benchmark(
        "edge",
        TableSpec {
            acet: 9.8e5,
            sigma: 1.1e5,
            wcet_pes: 1.1e7,
        },
    )
}

/// The `smooth` (smoothing-filter) benchmark. See [`corner`] for errors.
///
/// # Errors
///
/// Same conditions as [`corner`].
pub fn smooth() -> Result<Benchmark, ExecError> {
    image_benchmark(
        "smooth",
        TableSpec {
            acet: 1.9e7,
            sigma: 5.1e6,
            wcet_pes: 4.9e8,
        },
    )
}

/// The `epic` (image-compression) benchmark. See [`corner`] for errors.
///
/// # Errors
///
/// Same conditions as [`corner`].
pub fn epic() -> Result<Benchmark, ExecError> {
    image_benchmark(
        "epic",
        TableSpec {
            acet: 1.1e7,
            sigma: 1.9e6,
            wcet_pes: 7.0e8,
        },
    )
}

/// All seven Table I benchmark configurations, in table order.
///
/// # Errors
///
/// Construction is infallible for the published specs; errors indicate an
/// internal inconsistency.
pub fn all() -> Result<Vec<Benchmark>, ExecError> {
    Ok(vec![
        qsort(10)?,
        qsort(100)?,
        qsort(10_000)?,
        corner()?,
        edge()?,
        smooth()?,
        epic()?,
    ])
}

/// The five benchmarks used by the paper's Table II (qsort-100 plus the
/// image kernels).
///
/// # Errors
///
/// Same conditions as [`all`].
pub fn table2_suite() -> Result<Vec<Benchmark>, ExecError> {
    Ok(vec![qsort(100)?, corner()?, edge()?, smooth()?, epic()?])
}

/// Looks a benchmark up by its Table I name (e.g. `"qsort-100"`, `"epic"`).
///
/// # Errors
///
/// Returns [`ExecError::UnknownBenchmark`] for unknown names.
pub fn by_name(name: &str) -> Result<Benchmark, ExecError> {
    match name {
        "qsort-10" => qsort(10),
        "qsort-100" => qsort(100),
        "qsort-10000" => qsort(10_000),
        "corner" => corner(),
        "edge" => edge(),
        "smooth" => smooth(),
        "epic" => epic(),
        other => Err(ExecError::UnknownBenchmark {
            name: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build() {
        let benches = all().unwrap();
        assert_eq!(benches.len(), 7);
        let names: Vec<&str> = benches.iter().map(Benchmark::name).collect();
        assert_eq!(
            names,
            vec![
                "qsort-10",
                "qsort-100",
                "qsort-10000",
                "corner",
                "edge",
                "smooth",
                "epic"
            ]
        );
    }

    #[test]
    fn analyzed_wcet_matches_published_wcet_exactly() {
        for b in all().unwrap() {
            let report = b.analyze().unwrap();
            assert_eq!(
                report.wcet as f64,
                b.spec().wcet_pes,
                "benchmark {}",
                b.name()
            );
        }
    }

    #[test]
    fn program_acet_estimate_tracks_published_acet() {
        for b in all().unwrap() {
            let report = b.analyze().unwrap();
            let rel = (report.acet_estimate - b.spec().acet).abs() / b.spec().acet;
            assert!(
                rel < 0.02,
                "benchmark {}: model ACET {} vs published {}",
                b.name(),
                report.acet_estimate,
                b.spec().acet
            );
        }
    }

    #[test]
    fn sampled_moments_match_published_stats() {
        for b in all().unwrap() {
            let trace = b.sample_trace(20_000, 42).unwrap();
            let s = trace.summary().unwrap();
            let mean_err = (s.mean() - b.spec().acet).abs() / b.spec().acet;
            assert!(
                mean_err < 0.02,
                "{}: sampled mean {} vs published {}",
                b.name(),
                s.mean(),
                b.spec().acet
            );
            let sd_err = (s.std_dev() - b.spec().sigma).abs() / b.spec().sigma;
            assert!(
                sd_err < 0.05,
                "{}: sampled sigma {} vs published {}",
                b.name(),
                s.std_dev(),
                b.spec().sigma
            );
        }
    }

    #[test]
    fn samples_never_exceed_wcet_pes() {
        for b in all().unwrap() {
            let trace = b.sample_trace(5_000, 7).unwrap();
            assert!(trace
                .samples()
                .iter()
                .all(|&x| x <= b.spec().wcet_pes && x >= 1.0));
        }
    }

    #[test]
    fn measured_overruns_respect_chebyshev_bound() {
        // Table II's headline: measured ≪ 1/(1+n²) for every benchmark.
        for b in table2_suite().unwrap() {
            let trace = b.sample_trace(20_000, 11).unwrap();
            let s = trace.summary().unwrap();
            for n in 1..=4u32 {
                let level = s.mean() + n as f64 * s.std_dev();
                let rate = trace.overrun_rate(level).unwrap().rate();
                let bound = mc_stats::chebyshev::one_sided_bound(n as f64);
                assert!(
                    rate <= bound,
                    "{} at n={n}: measured {rate} exceeds bound {bound}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn qsort_overrun_profile_is_normal_like() {
        // Paper Table II, qsort-100 row: 50.22 / 15.78 / 2.36 / 0.22 / 0.02 %.
        let b = qsort(100).unwrap();
        let trace = b.sample_trace(20_000, 5).unwrap();
        let s = trace.summary().unwrap();
        let rate = |n: f64| {
            trace
                .overrun_rate(s.mean() + n * s.std_dev())
                .unwrap()
                .percent()
        };
        assert!((45.0..55.0).contains(&rate(0.0)), "n=0: {}", rate(0.0));
        assert!((12.0..20.0).contains(&rate(1.0)), "n=1: {}", rate(1.0));
        assert!((1.0..4.5).contains(&rate(2.0)), "n=2: {}", rate(2.0));
        assert!(rate(3.0) < 0.6, "n=3: {}", rate(3.0));
    }

    #[test]
    fn image_overrun_profile_matches_table2_shape() {
        // Paper Table II, image rows: ~53-55 / ~8-10 / ~3 / ~0.01 / 0 %.
        for b in [corner().unwrap(), edge().unwrap(), epic().unwrap()] {
            let trace = b.sample_trace(20_000, 9).unwrap();
            let s = trace.summary().unwrap();
            let rate = |n: f64| {
                trace
                    .overrun_rate(s.mean() + n * s.std_dev())
                    .unwrap()
                    .percent()
            };
            assert!(
                (48.0..60.0).contains(&rate(0.0)),
                "{} n=0: {}",
                b.name(),
                rate(0.0)
            );
            assert!(
                (6.0..14.0).contains(&rate(1.0)),
                "{} n=1: {}",
                b.name(),
                rate(1.0)
            );
            assert!(
                (1.5..6.5).contains(&rate(2.0)),
                "{} n=2: {}",
                b.name(),
                rate(2.0)
            );
            assert!(rate(3.0) < 0.5, "{} n=3: {}", b.name(), rate(3.0));
        }
    }

    #[test]
    fn wcet_acet_gap_matches_table1() {
        // qsort's gap grows with input size: 8.1×, 22.7×, 59× (silently
        // large gaps are the paper's whole motivation).
        let gaps: Vec<f64> = [10u64, 100, 10_000]
            .iter()
            .map(|&k| {
                let b = qsort(k).unwrap();
                b.spec().wcet_pes / b.spec().acet
            })
            .collect();
        assert!((gaps[0] - 8.26).abs() < 0.1);
        assert!((gaps[1] - 22.8).abs() < 0.2);
        assert!((gaps[2] - 55.6).abs() < 1.0);
        assert!(gaps[0] < gaps[1] && gaps[1] < gaps[2]);
    }

    #[test]
    fn by_name_round_trips() {
        for b in all().unwrap() {
            let again = by_name(b.name()).unwrap();
            assert_eq!(again.name(), b.name());
            assert_eq!(again.spec(), b.spec());
        }
        assert!(matches!(
            by_name("fft").unwrap_err(),
            ExecError::UnknownBenchmark { .. }
        ));
        assert!(qsort(37).is_err());
    }

    #[test]
    fn from_parts_rejects_mismatched_program() {
        let spec = TableSpec {
            acet: 100.0,
            sigma: 10.0,
            wcet_pes: 1_000.0,
        };
        let wrong_program = Program::block("b", 999); // != 1000
        let dist = Dist::normal(100.0, 10.0).unwrap();
        assert!(matches!(
            Benchmark::from_parts("x", spec, wrong_program, dist).unwrap_err(),
            ExecError::InvalidModel { .. }
        ));
    }

    #[test]
    fn spec_validation() {
        assert!(TableSpec {
            acet: 0.0,
            sigma: 1.0,
            wcet_pes: 10.0
        }
        .validate()
        .is_err());
        assert!(TableSpec {
            acet: 10.0,
            sigma: -1.0,
            wcet_pes: 20.0
        }
        .validate()
        .is_err());
        assert!(TableSpec {
            acet: 10.0,
            sigma: 1.0,
            wcet_pes: 5.0
        }
        .validate()
        .is_err());
        assert!(TableSpec {
            acet: 10.0,
            sigma: 1.0,
            wcet_pes: f64::NAN
        }
        .validate()
        .is_err());
    }
}
