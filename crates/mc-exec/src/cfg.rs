//! Control-flow graphs with loop bounds.
//!
//! This is the graph half of the workspace's miniature static WCET analyser
//! (the stand-in for OTAWA, which the paper uses to obtain pessimistic
//! WCETs). A [`Cfg`] is a directed graph of basic blocks annotated with
//! cycle costs; loop headers carry explicit iteration bounds. The analyser
//! computes a safe longest-path bound by
//!
//! 1. computing immediate dominators (Cooper–Harvey–Kennedy),
//! 2. finding back edges (`u → v` where `v` dominates `u`),
//! 3. collapsing natural loops innermost-first into super-nodes whose cost
//!    is `bound × (header + longest body path) + header`,
//! 4. running a longest-path dynamic program over the remaining DAG.
//!
//! Irreducible graphs and loops without bounds are rejected — exactly the
//! conditions under which real structural WCET analysers give up.

use crate::ExecError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Index of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    name: String,
    cost: u64,
    loop_bound: Option<u64>,
    alive: bool,
}

/// A control-flow graph of cost-annotated basic blocks.
///
/// # Example
///
/// ```
/// use mc_exec::cfg::Cfg;
///
/// # fn main() -> Result<(), mc_exec::ExecError> {
/// // entry -> header{bound 10} -> body -> header ; header -> exit
/// let mut cfg = Cfg::new();
/// let entry = cfg.add_node("entry", 5);
/// let header = cfg.add_node("header", 2);
/// let body = cfg.add_node("body", 7);
/// let exit = cfg.add_node("exit", 1);
/// cfg.add_edge(entry, header)?;
/// cfg.add_edge(header, body)?;
/// cfg.add_edge(body, header)?;
/// cfg.add_edge(header, exit)?;
/// cfg.set_entry(entry)?;
/// cfg.set_exit(exit)?;
/// cfg.set_loop_bound(header, 10)?;
/// // 5 + 11·2 + 10·7 + 1 = 98
/// assert_eq!(cfg.wcet()?, 98);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cfg {
    nodes: Vec<Node>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    entry: Option<usize>,
    exit: Option<usize>,
}

impl Cfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Cfg::default()
    }

    /// Adds a basic block with the given `name` and `cost` (in cycles) and
    /// returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, cost: u64) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            cost,
            loop_bound: None,
            alive: true,
        });
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a directed edge. Parallel edges are merged.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when either endpoint does not
    /// exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), ExecError> {
        self.check(from)?;
        self.check(to)?;
        if !self.succ[from.0].contains(&to.0) {
            self.succ[from.0].push(to.0);
            self.pred[to.0].push(from.0);
        }
        Ok(())
    }

    /// Marks the entry block.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn set_entry(&mut self, node: NodeId) -> Result<(), ExecError> {
        self.check(node)?;
        self.entry = Some(node.0);
        Ok(())
    }

    /// Marks the exit block.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn set_exit(&mut self, node: NodeId) -> Result<(), ExecError> {
        self.check(node)?;
        self.exit = Some(node.0);
        Ok(())
    }

    /// Attaches a loop iteration bound to a (future) loop header.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn set_loop_bound(&mut self, header: NodeId, bound: u64) -> Result<(), ExecError> {
        self.check(header)?;
        self.nodes[header.0].loop_bound = Some(bound);
        Ok(())
    }

    /// Number of blocks ever added (including collapsed ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of currently live blocks.
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// The block's name.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn node_name(&self, node: NodeId) -> Result<&str, ExecError> {
        self.check(node)?;
        Ok(&self.nodes[node.0].name)
    }

    /// The block's cycle cost.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn node_cost(&self, node: NodeId) -> Result<u64, ExecError> {
        self.check(node)?;
        Ok(self.nodes[node.0].cost)
    }

    /// The entry block, if one has been set.
    pub fn entry(&self) -> Option<NodeId> {
        self.entry.map(NodeId)
    }

    /// The exit block, if one has been set.
    pub fn exit(&self) -> Option<NodeId> {
        self.exit.map(NodeId)
    }

    /// All node ids ever added, including collapsed (dead) ones.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Whether the block is still live (not collapsed away).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn is_alive(&self, node: NodeId) -> Result<bool, ExecError> {
        self.check(node)?;
        Ok(self.nodes[node.0].alive)
    }

    /// The block's loop bound, if one has been set.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn loop_bound(&self, node: NodeId) -> Result<Option<u64>, ExecError> {
        self.check(node)?;
        Ok(self.nodes[node.0].loop_bound)
    }

    /// The block's successors.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn successors(&self, node: NodeId) -> Result<impl Iterator<Item = NodeId> + '_, ExecError> {
        self.check(node)?;
        Ok(self.succ[node.0].iter().copied().map(NodeId))
    }

    /// The block's predecessors.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownNode`] when the node does not exist.
    pub fn predecessors(
        &self,
        node: NodeId,
    ) -> Result<impl Iterator<Item = NodeId> + '_, ExecError> {
        self.check(node)?;
        Ok(self.pred[node.0].iter().copied().map(NodeId))
    }

    /// Every directed edge in the graph, including edges incident to
    /// collapsed nodes.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(from, tos)| tos.iter().map(move |&to| (NodeId(from), NodeId(to))))
    }

    fn check(&self, node: NodeId) -> Result<(), ExecError> {
        if node.0 >= self.nodes.len() {
            return Err(ExecError::UnknownNode { index: node.0 });
        }
        Ok(())
    }

    fn entry_exit(&self) -> Result<(usize, usize), ExecError> {
        let entry = self.entry.ok_or(ExecError::MissingEntryOrExit)?;
        let exit = self.exit.ok_or(ExecError::MissingEntryOrExit)?;
        Ok((entry, exit))
    }

    /// Checks structural sanity: an entry and exit are set, every live node
    /// is reachable from the entry, and the exit is reachable.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::MissingEntryOrExit`] or
    /// [`ExecError::UnreachableNode`] accordingly.
    pub fn validate(&self) -> Result<(), ExecError> {
        let (entry, exit) = self.entry_exit()?;
        let reach = self.reachable_from(entry);
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive && !reach[i] {
                return Err(ExecError::UnreachableNode { index: i });
            }
        }
        if !reach[exit] {
            return Err(ExecError::UnreachableNode { index: exit });
        }
        Ok(())
    }

    fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.succ[u] {
                if self.nodes[v].alive && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Reverse postorder over live nodes reachable from the entry.
    fn reverse_postorder(&self, entry: usize) -> Vec<usize> {
        let mut post = Vec::new();
        let mut state = vec![0u8; self.nodes.len()]; // 0 unseen, 1 open, 2 done
        let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
        state[entry] = 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            if *next < self.succ[u].len() {
                let v = self.succ[u][*next];
                *next += 1;
                if self.nodes[v].alive && state[v] == 0 {
                    state[v] = 1;
                    stack.push((v, 0));
                }
            } else {
                state[u] = 2;
                post.push(u);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Immediate dominators via Cooper–Harvey–Kennedy. Returns
    /// `idom[node]` (entry maps to itself); dead/unreachable nodes map to
    /// `usize::MAX`.
    fn immediate_dominators(&self, entry: usize) -> Vec<usize> {
        let rpo = self.reverse_postorder(entry);
        let mut order = vec![usize::MAX; self.nodes.len()];
        for (i, &n) in rpo.iter().enumerate() {
            order[n] = i;
        }
        let mut idom = vec![usize::MAX; self.nodes.len()];
        idom[entry] = entry;
        let intersect = |idom: &[usize], order: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while order[a] > order[b] {
                    a = idom[a];
                }
                while order[b] > order[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &u in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &self.pred[u] {
                    if !self.nodes[p].alive || idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &order, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[u] != new_idom {
                    idom[u] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    fn dominates(idom: &[usize], entry: usize, a: usize, mut b: usize) -> bool {
        // Walk b's dominator chain toward the entry.
        loop {
            if a == b {
                return true;
            }
            if b == entry || idom[b] == usize::MAX {
                return false;
            }
            b = idom[b];
        }
    }

    /// Finds back edges `(latch, header)` relative to the current live
    /// graph.
    fn back_edges(&self, entry: usize) -> Vec<(usize, usize)> {
        let idom = self.immediate_dominators(entry);
        let mut out = Vec::new();
        for (u, succs) in self.succ.iter().enumerate() {
            if !self.nodes[u].alive || idom[u] == usize::MAX && u != entry {
                continue;
            }
            for &v in succs {
                if self.nodes[v].alive && Self::dominates(&idom, entry, v, u) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Natural loop of a header: header plus every node that reaches a
    /// latch without passing through the header.
    fn natural_loop(&self, header: usize, latches: &[usize]) -> Vec<usize> {
        let mut in_loop = vec![false; self.nodes.len()];
        in_loop[header] = true;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &l in latches {
            if !in_loop[l] {
                in_loop[l] = true;
                queue.push_back(l);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &p in &self.pred[u] {
                if self.nodes[p].alive && !in_loop[p] {
                    in_loop[p] = true;
                    queue.push_back(p);
                }
            }
        }
        (0..self.nodes.len()).filter(|&i| in_loop[i]).collect()
    }

    /// Longest path (sum of node costs, endpoints inclusive) from `from` to
    /// `to` over the live sub-DAG induced by `allowed`, skipping edges in
    /// `banned_edges`.
    ///
    /// Returns `None` when `to` is unreachable, or an error when a cycle
    /// remains.
    fn dag_longest_path(
        &self,
        from: usize,
        to: usize,
        allowed: &[bool],
        banned_edges: &[(usize, usize)],
    ) -> Result<Option<u64>, ExecError> {
        // Kahn topological sort over the induced subgraph.
        let n = self.nodes.len();
        let is_banned = |u: usize, v: usize| banned_edges.iter().any(|&(a, b)| a == u && b == v);
        let mut indeg = vec![0usize; n];
        let mut members = Vec::new();
        for u in 0..n {
            if !allowed[u] || !self.nodes[u].alive {
                continue;
            }
            members.push(u);
            for &v in &self.succ[u] {
                if allowed[v] && self.nodes[v].alive && !is_banned(u, v) {
                    indeg[v] += 1;
                }
            }
        }
        let mut queue: VecDeque<usize> =
            members.iter().copied().filter(|&u| indeg[u] == 0).collect();
        let mut topo = Vec::with_capacity(members.len());
        while let Some(u) = queue.pop_front() {
            topo.push(u);
            for &v in &self.succ[u] {
                if allowed[v] && self.nodes[v].alive && !is_banned(u, v) {
                    indeg[v] -= 1;
                    if indeg[v] == 0 {
                        queue.push_back(v);
                    }
                }
            }
        }
        if topo.len() != members.len() {
            return Err(ExecError::IrreducibleCfg);
        }
        let mut dist: Vec<Option<u64>> = vec![None; n];
        dist[from] = Some(self.nodes[from].cost);
        for &u in &topo {
            let Some(du) = dist[u] else { continue };
            for &v in &self.succ[u] {
                if allowed[v] && self.nodes[v].alive && !is_banned(u, v) {
                    let cand = du + self.nodes[v].cost;
                    if dist[v].is_none_or(|dv| cand > dv) {
                        dist[v] = Some(cand);
                    }
                }
            }
        }
        Ok(dist[to])
    }

    /// Computes a safe WCET bound for the whole graph, collapsing bounded
    /// natural loops innermost-first and then taking the longest entry→exit
    /// path.
    ///
    /// # Errors
    ///
    /// * [`ExecError::MissingEntryOrExit`] / [`ExecError::UnreachableNode`]
    ///   when the graph is structurally unsound,
    /// * [`ExecError::MissingLoopBound`] when a loop header has no bound,
    /// * [`ExecError::IrreducibleCfg`] when a cycle is not a natural loop
    ///   (no dominating header).
    pub fn wcet(&self) -> Result<u64, ExecError> {
        self.validate()?;
        let mut work = self.clone();
        let (entry, exit) = work.entry_exit()?;
        // Each collapse removes at least one live node, so this terminates.
        for _ in 0..=work.nodes.len() {
            let backs = work.back_edges(entry);
            if backs.is_empty() {
                let alive: Vec<bool> = work.nodes.iter().map(|n| n.alive).collect();
                return work
                    .dag_longest_path(entry, exit, &alive, &[])?
                    .ok_or(ExecError::UnreachableNode { index: exit });
            }
            // Group latches per header.
            let mut headers: Vec<usize> = backs.iter().map(|&(_, h)| h).collect();
            headers.sort_unstable();
            headers.dedup();
            // Innermost loop = the one with the fewest members.
            let mut chosen: Option<(usize, Vec<usize>, Vec<usize>)> = None;
            for &h in &headers {
                let latches: Vec<usize> = backs
                    .iter()
                    .filter(|&&(_, hh)| hh == h)
                    .map(|&(l, _)| l)
                    .collect();
                let members = work.natural_loop(h, &latches);
                let smaller = chosen
                    .as_ref()
                    .is_none_or(|(_, _, m)| members.len() < m.len());
                if smaller {
                    chosen = Some((h, latches, members));
                }
            }
            let (header, latches, members) = chosen.expect("non-empty back edge set yields a loop");
            // The innermost loop must not contain another loop's header.
            let inner_has_other_header =
                headers.iter().any(|&h| h != header && members.contains(&h));
            if inner_has_other_header {
                return Err(ExecError::IrreducibleCfg);
            }
            let bound = work.nodes[header]
                .loop_bound
                .ok_or(ExecError::MissingLoopBound { index: header })?;
            // Longest single-iteration path: header → ... → latch, using
            // loop-internal edges only and not re-entering via back edges.
            let mut allowed = vec![false; work.nodes.len()];
            for &m in &members {
                allowed[m] = true;
            }
            let banned: Vec<(usize, usize)> = latches.iter().map(|&l| (l, header)).collect();
            let mut iter_cost = 0u64;
            for &latch in &latches {
                if let Some(c) = work.dag_longest_path(header, latch, &allowed, &banned)? {
                    iter_cost = iter_cost.max(c);
                }
            }
            let header_cost = work.nodes[header].cost;
            // `bound` full iterations plus the final header evaluation that
            // exits the loop.
            let collapsed_cost = bound
                .checked_mul(iter_cost)
                .and_then(|c| c.checked_add(header_cost))
                .ok_or(ExecError::CostOverflow)?;
            work.collapse(header, &members, collapsed_cost);
        }
        Err(ExecError::IrreducibleCfg)
    }

    /// Renders the live graph in Graphviz DOT syntax. Loop headers are
    /// drawn as double circles annotated with their bounds; entry and exit
    /// are shaded.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph cfg {\n    rankdir=TB;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.alive {
                continue;
            }
            let mut attrs = format!("label=\"{} [{}]\"", node.name, node.cost);
            if let Some(b) = node.loop_bound {
                let _ = write!(attrs, ", shape=doublecircle, xlabel=\"bound {b}\"");
            }
            if Some(i) == self.entry || Some(i) == self.exit {
                attrs.push_str(", style=filled, fillcolor=lightgrey");
            }
            let _ = writeln!(out, "    n{i} [{attrs}];");
        }
        for (u, succs) in self.succ.iter().enumerate() {
            if !self.nodes[u].alive {
                continue;
            }
            for &v in succs {
                if self.nodes[v].alive {
                    let _ = writeln!(out, "    n{u} -> n{v};");
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Replaces a natural loop by a single super-node (reusing the header's
    /// slot) with the given cost.
    fn collapse(&mut self, header: usize, members: &[usize], cost: u64) {
        // Gather loop-exit successors before mutating.
        let mut exits: Vec<usize> = Vec::new();
        for &m in members {
            for &v in &self.succ[m] {
                if self.nodes[v].alive && !members.contains(&v) && !exits.contains(&v) {
                    exits.push(v);
                }
            }
        }
        // Kill non-header members.
        for &m in members {
            if m != header {
                self.nodes[m].alive = false;
            }
        }
        // The header becomes the super-node: drop its old out-edges into the
        // loop, keep/add exits.
        self.nodes[header].cost = cost;
        self.nodes[header].loop_bound = None;
        let name = format!("{}*", self.nodes[header].name);
        self.nodes[header].name = name;
        self.succ[header] = exits.clone();
        for &e in &exits {
            if !self.pred[e].contains(&header) {
                self.pred[e].push(header);
            }
        }
        // Remove dangling preds pointing at dead nodes is unnecessary: all
        // traversals filter on `alive`.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// entry(5) → a(3) → exit(2), with a diamond b(10)/c(4) in the middle.
    fn diamond() -> (Cfg, NodeId, NodeId) {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 5);
        let cond = g.add_node("cond", 3);
        let b = g.add_node("then", 10);
        let c = g.add_node("else", 4);
        let join = g.add_node("join", 1);
        let exit = g.add_node("exit", 2);
        g.add_edge(entry, cond).unwrap();
        g.add_edge(cond, b).unwrap();
        g.add_edge(cond, c).unwrap();
        g.add_edge(b, join).unwrap();
        g.add_edge(c, join).unwrap();
        g.add_edge(join, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        (g, entry, exit)
    }

    #[test]
    fn straight_line_sums_costs() {
        let mut g = Cfg::new();
        let a = g.add_node("a", 1);
        let b = g.add_node("b", 2);
        let c = g.add_node("c", 3);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.set_entry(a).unwrap();
        g.set_exit(c).unwrap();
        assert_eq!(g.wcet().unwrap(), 6);
    }

    #[test]
    fn diamond_takes_expensive_branch() {
        let (g, _, _) = diamond();
        // 5 + 3 + max(10, 4) + 1 + 2 = 21
        assert_eq!(g.wcet().unwrap(), 21);
    }

    #[test]
    fn single_loop_multiplies_by_bound() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 5);
        let header = g.add_node("header", 2);
        let body = g.add_node("body", 7);
        let exit = g.add_node("exit", 1);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, body).unwrap();
        g.add_edge(body, header).unwrap();
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(header, 10).unwrap();
        // 5 + (10+1)·2 + 10·7 + 1 = 98
        assert_eq!(g.wcet().unwrap(), 98);
    }

    #[test]
    fn zero_bound_loop_executes_header_once() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 5);
        let header = g.add_node("header", 2);
        let body = g.add_node("body", 7);
        let exit = g.add_node("exit", 1);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, body).unwrap();
        g.add_edge(body, header).unwrap();
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(header, 0).unwrap();
        assert_eq!(g.wcet().unwrap(), 8); // 5 + 2 + 1
    }

    #[test]
    fn nested_loops_multiply() {
        // entry → H1{3} → H2{4} → body → H2 ; H2 → latch1 → H1 ; H1 → exit
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 1);
        let h1 = g.add_node("h1", 2);
        let h2 = g.add_node("h2", 3);
        let body = g.add_node("body", 5);
        let latch1 = g.add_node("latch1", 4);
        let exit = g.add_node("exit", 1);
        g.add_edge(entry, h1).unwrap();
        g.add_edge(h1, h2).unwrap();
        g.add_edge(h2, body).unwrap();
        g.add_edge(body, h2).unwrap();
        g.add_edge(h2, latch1).unwrap();
        g.add_edge(latch1, h1).unwrap();
        g.add_edge(h1, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(h1, 3).unwrap();
        g.set_loop_bound(h2, 4).unwrap();
        // Inner loop collapsed: cost = 4·(3+5) + 3 = 35.
        // Outer iteration: h1(2) + inner(35) + latch1(4) = 41; total = 3·41 + 2 = 125.
        // Plus entry 1 and exit 1 → 127.
        assert_eq!(g.wcet().unwrap(), 127);
    }

    #[test]
    fn loop_containing_branch_takes_worst_iteration() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 0);
        let header = g.add_node("header", 1);
        let cheap = g.add_node("cheap", 2);
        let pricey = g.add_node("pricey", 9);
        let latch = g.add_node("latch", 1);
        let exit = g.add_node("exit", 0);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, cheap).unwrap();
        g.add_edge(header, pricey).unwrap();
        g.add_edge(cheap, latch).unwrap();
        g.add_edge(pricey, latch).unwrap();
        g.add_edge(latch, header).unwrap();
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(header, 5).unwrap();
        // Per iteration: 1 + max(2, 9) + 1 = 11; total = 5·11 + 1 = 56.
        assert_eq!(g.wcet().unwrap(), 56);
    }

    #[test]
    fn missing_loop_bound_is_reported() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 0);
        let header = g.add_node("header", 1);
        let exit = g.add_node("exit", 0);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, header).unwrap(); // self loop
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        assert!(matches!(
            g.wcet().unwrap_err(),
            ExecError::MissingLoopBound { .. }
        ));
    }

    #[test]
    fn self_loop_with_bound_works() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 0);
        let header = g.add_node("spin", 3);
        let exit = g.add_node("exit", 0);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, header).unwrap();
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(header, 7).unwrap();
        // 7 iterations + final test: 8·3 = 24.
        assert_eq!(g.wcet().unwrap(), 24);
    }

    #[test]
    fn missing_entry_or_exit_is_reported() {
        let mut g = Cfg::new();
        let a = g.add_node("a", 1);
        g.set_entry(a).unwrap();
        assert!(matches!(
            g.wcet().unwrap_err(),
            ExecError::MissingEntryOrExit
        ));
    }

    #[test]
    fn unreachable_node_is_reported() {
        let mut g = Cfg::new();
        let a = g.add_node("a", 1);
        let b = g.add_node("island", 1);
        g.set_entry(a).unwrap();
        g.set_exit(a).unwrap();
        let _ = b;
        assert!(matches!(
            g.validate().unwrap_err(),
            ExecError::UnreachableNode { .. }
        ));
    }

    #[test]
    fn unknown_node_errors() {
        let mut g = Cfg::new();
        let a = g.add_node("a", 1);
        let bogus = NodeId(99);
        assert!(g.add_edge(a, bogus).is_err());
        assert!(g.add_edge(bogus, a).is_err());
        assert!(g.set_entry(bogus).is_err());
        assert!(g.set_exit(bogus).is_err());
        assert!(g.set_loop_bound(bogus, 1).is_err());
        assert!(g.node_name(bogus).is_err());
        assert!(g.node_cost(bogus).is_err());
    }

    #[test]
    fn node_accessors_work() {
        let mut g = Cfg::new();
        let a = g.add_node("alpha", 13);
        assert_eq!(g.node_name(a).unwrap(), "alpha");
        assert_eq!(g.node_cost(a).unwrap(), 13);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.live_node_count(), 1);
    }

    #[test]
    fn parallel_edges_are_merged() {
        let mut g = Cfg::new();
        let a = g.add_node("a", 1);
        let b = g.add_node("b", 1);
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        g.set_entry(a).unwrap();
        g.set_exit(b).unwrap();
        assert_eq!(g.wcet().unwrap(), 2);
    }

    #[test]
    fn cost_overflow_is_reported() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 0);
        let header = g.add_node("header", u64::MAX / 2);
        let exit = g.add_node("exit", 0);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, header).unwrap();
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(header, 1_000).unwrap();
        assert!(matches!(g.wcet().unwrap_err(), ExecError::CostOverflow));
    }

    #[test]
    fn sequential_loops_add() {
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 0);
        let h1 = g.add_node("h1", 1);
        let b1 = g.add_node("b1", 2);
        let h2 = g.add_node("h2", 1);
        let b2 = g.add_node("b2", 3);
        let exit = g.add_node("exit", 0);
        g.add_edge(entry, h1).unwrap();
        g.add_edge(h1, b1).unwrap();
        g.add_edge(b1, h1).unwrap();
        g.add_edge(h1, h2).unwrap();
        g.add_edge(h2, b2).unwrap();
        g.add_edge(b2, h2).unwrap();
        g.add_edge(h2, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(h1, 10).unwrap();
        g.set_loop_bound(h2, 20).unwrap();
        // loop1: 10·(1+2)+1 = 31 ; loop2: 20·(1+3)+1 = 81 ; total 112.
        assert_eq!(g.wcet().unwrap(), 112);
    }

    #[test]
    fn dot_export_lists_live_nodes_and_edges() {
        let (g, _, _) = diamond();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph cfg {"));
        assert!(dot.ends_with("}\n"));
        // 6 nodes and 6 edges.
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert!(dot.contains("label=\"then [10]\""));
        assert!(dot.contains("fillcolor=lightgrey"));
        // Loop bounds are annotated.
        let mut g = Cfg::new();
        let entry = g.add_node("entry", 0);
        let header = g.add_node("spin", 3);
        let exit = g.add_node("exit", 0);
        g.add_edge(entry, header).unwrap();
        g.add_edge(header, header).unwrap();
        g.add_edge(header, exit).unwrap();
        g.set_entry(entry).unwrap();
        g.set_exit(exit).unwrap();
        g.set_loop_bound(header, 7).unwrap();
        assert!(g.to_dot().contains("bound 7"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn chain_wcet_is_sum(costs in proptest::collection::vec(0u64..1_000, 1..50)) {
                let mut g = Cfg::new();
                let nodes: Vec<NodeId> =
                    costs.iter().map(|&c| g.add_node("n", c)).collect();
                for w in nodes.windows(2) {
                    g.add_edge(w[0], w[1]).unwrap();
                }
                g.set_entry(nodes[0]).unwrap();
                g.set_exit(*nodes.last().unwrap()).unwrap();
                prop_assert_eq!(g.wcet().unwrap(), costs.iter().sum::<u64>());
            }

            #[test]
            fn diamond_wcet_is_max_branch(t in 0u64..1_000, e in 0u64..1_000) {
                let mut g = Cfg::new();
                let entry = g.add_node("entry", 1);
                let then_n = g.add_node("t", t);
                let else_n = g.add_node("e", e);
                let exit = g.add_node("exit", 1);
                g.add_edge(entry, then_n).unwrap();
                g.add_edge(entry, else_n).unwrap();
                g.add_edge(then_n, exit).unwrap();
                g.add_edge(else_n, exit).unwrap();
                g.set_entry(entry).unwrap();
                g.set_exit(exit).unwrap();
                prop_assert_eq!(g.wcet().unwrap(), 2 + t.max(e));
            }

            #[test]
            fn loop_wcet_is_affine_in_bound(
                bound in 0u64..10_000,
                header_cost in 0u64..100,
                body_cost in 0u64..100,
            ) {
                let mut g = Cfg::new();
                let entry = g.add_node("entry", 0);
                let header = g.add_node("h", header_cost);
                let body = g.add_node("b", body_cost);
                let exit = g.add_node("exit", 0);
                g.add_edge(entry, header).unwrap();
                g.add_edge(header, body).unwrap();
                g.add_edge(body, header).unwrap();
                g.add_edge(header, exit).unwrap();
                g.set_entry(entry).unwrap();
                g.set_exit(exit).unwrap();
                g.set_loop_bound(header, bound).unwrap();
                let expect = (bound + 1) * header_cost + bound * body_cost;
                prop_assert_eq!(g.wcet().unwrap(), expect);
            }
        }
    }
}
