//! Property tests for the workspace seed contract.
//!
//! `derive_set_seed(base, point, set)` is the one function every driver —
//! the in-process batch pipelines, the `mc-exp` campaign runner, the bench
//! binaries — must agree on for results to be reproducible and mergeable.
//! These properties pin the contract: determinism, sensitivity to every
//! argument, and collision-freedom over realistic campaign grids.

use std::collections::HashSet;

use chebymc_core::pipeline::derive_set_seed;
use mc_fault::{assert_prop, FaultRng, PropConfig};

#[test]
fn derived_seeds_are_deterministic_and_argument_sensitive() {
    assert_prop(
        &PropConfig::named("seed-contract-sensitivity").cases(300),
        |rng| (rng.next_u64(), rng.below(1 << 16), rng.below(1 << 16)),
        |&(base, point, set)| {
            let (point, set) = (point as usize, set as usize);
            let seed = derive_set_seed(base, point, set);
            if seed != derive_set_seed(base, point, set) {
                return Err("derive_set_seed is not a pure function".into());
            }
            // Flipping any single argument must change the output — a
            // stuck argument would silently reuse task sets across points
            // or replicas.
            if derive_set_seed(base.wrapping_add(1), point, set) == seed {
                return Err("insensitive to the base seed".into());
            }
            if derive_set_seed(base, point + 1, set) == seed {
                return Err("insensitive to the point index".into());
            }
            if derive_set_seed(base, point, set + 1) == seed {
                return Err("insensitive to the set index".into());
            }
            Ok(())
        },
    );
}

#[test]
fn derived_seeds_are_collision_free_over_campaign_grids() {
    assert_prop(
        &PropConfig::named("seed-contract-grid-injectivity").cases(60),
        |rng| {
            (
                rng.next_u64(),
                rng.range_u64(1, 32) as usize,
                rng.range_u64(1, 32) as usize,
            )
        },
        |&(base, points, sets)| {
            let mut rng = FaultRng::new(base);
            let mut seen = HashSet::new();
            for point in 0..points {
                for set in 0..sets {
                    let seed = derive_set_seed(base, point, set);
                    if !seen.insert(seed) {
                        return Err(format!(
                            "collision at (point {point}, set {set}) on a \
                             {points}×{sets} grid"
                        ));
                    }
                }
            }
            // Two unrelated base seeds must not share a grid either.
            let other_base = rng.next_u64();
            if other_base != base {
                let overlap = (0..points.min(4))
                    .flat_map(|p| (0..sets.min(4)).map(move |s| (p, s)))
                    .filter(|&(p, s)| seen.contains(&derive_set_seed(other_base, p, s)))
                    .count();
                if overlap > 0 {
                    return Err(format!(
                        "{overlap} seed(s) shared between base {base:#x} and \
                         {other_base:#x}"
                    ));
                }
            }
            Ok(())
        },
    );
}

/// The campaign runner's `unit_seed` must remain a thin wrapper over
/// `derive_set_seed` — drift here would make `mc-exp` stores incomparable
/// with in-process batch results for the same campaign seed.
#[test]
fn exp_unit_seed_agrees_with_the_core_contract() {
    assert_prop(
        &PropConfig::named("seed-contract-exp-agreement").cases(200),
        |rng| (rng.next_u64(), rng.below(64), rng.below(64)),
        |&(base, point, replica)| {
            let (point, replica) = (point as usize, replica as usize);
            let expected = derive_set_seed(base, point, replica);
            let got = mc_exp::unit_seed(base, point, replica);
            if got != expected {
                return Err(format!(
                    "unit_seed diverged: {got:#x} vs derive_set_seed {expected:#x}"
                ));
            }
            Ok(())
        },
    );
}
