//! Design-time metrics for an assigned task set.
//!
//! After a WCET-assignment policy has set every HC task's `C_LO`, this
//! module computes the quantities the paper evaluates: the per-task implied
//! Chebyshev factor and overrun-probability bound, the system mode-switch
//! probability (Eq. 10), the admissible LC utilisation (Eqs. 11–12), the
//! Eq. 13 objective, and EDF-VD schedulability of the set as it stands
//! (Eq. 8).

use crate::CoreError;
use mc_sched::analysis::edf_vd;
use mc_stats::chebyshev;
use mc_task::{TaskId, TaskSet};
use serde::{Deserialize, Serialize};

/// Per-HC-task design outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskDesign {
    /// The task.
    pub id: TaskId,
    /// Assigned optimistic WCET in nanoseconds.
    pub c_lo: f64,
    /// The implied Chebyshev factor `n = (C_LO − ACET)/σ` (negative when
    /// the budget sits below the ACET; infinite when σ = 0 and
    /// `C_LO ≥ ACET`).
    pub factor: f64,
    /// Distribution-free bound on the task's overrun probability:
    /// `1/(1+n²)` for `n ≥ 0`, `1` for `n < 0` (the bound is vacuous), `0`
    /// for a constant-time task whose budget covers the constant.
    pub overrun_bound: f64,
}

/// System-level design metrics (the axes of the paper's Figs. 2–5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignMetrics {
    /// `U_HC^LO` under the assigned optimistic WCETs.
    pub u_hc_lo: f64,
    /// `U_HC^HI`.
    pub u_hc_hi: f64,
    /// `U_LC^LO` of the LC tasks actually present.
    pub u_lc_lo: f64,
    /// Mode-switch probability bound (Eq. 10).
    pub p_ms: f64,
    /// Maximum admissible LC utilisation (Eqs. 11–12).
    pub max_u_lc_lo: f64,
    /// The Eq. 13 objective `(1 − P_MS) · max(U_LC^LO)`.
    pub objective: f64,
    /// Whether Eq. 8 holds for the set as assigned (its *actual* LC load).
    pub schedulable: bool,
    /// Per-task breakdown.
    pub per_task: Vec<TaskDesign>,
}

/// The implied factor and overrun bound for one assignment.
fn task_design(id: TaskId, c_lo: f64, acet: f64, sigma: f64) -> TaskDesign {
    let (factor, overrun_bound) = if sigma == 0.0 {
        if c_lo >= acet {
            (f64::INFINITY, 0.0)
        } else {
            (f64::NEG_INFINITY, 1.0)
        }
    } else {
        let n = (c_lo - acet) / sigma;
        let bound = if n >= 0.0 {
            chebyshev::one_sided_bound(n)
        } else {
            1.0
        };
        (n, bound)
    };
    TaskDesign {
        id,
        c_lo,
        factor,
        overrun_bound,
    }
}

/// Computes the design metrics of an assigned task set.
///
/// # Errors
///
/// Returns [`CoreError::MissingProfile`] when an HC task lacks an
/// execution profile (the implied factor is undefined without one).
///
/// # Example
///
/// ```
/// use chebymc_core::metrics::design_metrics;
/// use mc_task::time::Duration;
/// use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ts = TaskSet::from_tasks(vec![McTask::builder(TaskId::new(0))
///     .criticality(Criticality::Hi)
///     .period(Duration::from_millis(100))
///     .c_lo(Duration::from_millis(5)) // ACET + 2σ
///     .c_hi(Duration::from_millis(40))
///     .profile(ExecutionProfile::new(3.0e6, 1.0e6, 40.0e6)?)
///     .build()?])?;
/// let m = design_metrics(&ts)?;
/// assert!((m.per_task[0].factor - 2.0).abs() < 1e-9);
/// assert!((m.p_ms - 0.2).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn design_metrics(ts: &TaskSet) -> Result<DesignMetrics, CoreError> {
    let mut per_task = Vec::new();
    let mut no_switch = 1.0;
    for t in ts.hc_tasks() {
        let p = t
            .profile()
            .ok_or(CoreError::MissingProfile { id: t.id() })?;
        let design = task_design(t.id(), t.c_lo().as_nanos() as f64, p.acet(), p.sigma());
        no_switch *= 1.0 - design.overrun_bound;
        per_task.push(design);
    }
    let u_hc_lo = ts.u_hc_lo();
    let u_hc_hi = ts.u_hc_hi();
    let u_lc_lo = ts.u_lc_lo();
    let p_ms = 1.0 - no_switch;
    let max_u_lc_lo = edf_vd::max_u_lc_lo(u_hc_lo, u_hc_hi);
    Ok(DesignMetrics {
        u_hc_lo,
        u_hc_hi,
        u_lc_lo,
        p_ms,
        max_u_lc_lo,
        objective: (1.0 - p_ms) * max_u_lc_lo,
        schedulable: edf_vd::conditions_hold(u_hc_lo, u_hc_hi, u_lc_lo),
        per_task,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, ExecutionProfile, McTask};

    fn hc_with_budget(id: u32, c_lo_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(40))
            .profile(ExecutionProfile::new(3.0e6, 1.0e6, 40.0e6).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn implied_factor_matches_assignment() {
        // C_LO = 5 ms = ACET(3 ms) + 2σ(1 ms).
        let ts = TaskSet::from_tasks(vec![hc_with_budget(0, 5)]).unwrap();
        let m = design_metrics(&ts).unwrap();
        assert_eq!(m.per_task.len(), 1);
        assert!((m.per_task[0].factor - 2.0).abs() < 1e-9);
        assert!((m.per_task[0].overrun_bound - 0.2).abs() < 1e-9);
        assert!((m.p_ms - 0.2).abs() < 1e-9);
    }

    #[test]
    fn budget_below_acet_has_vacuous_bound() {
        // C_LO = 2 ms < ACET = 3 ms → bound 1, P_MS = 1, objective 0.
        let ts = TaskSet::from_tasks(vec![hc_with_budget(0, 2)]).unwrap();
        let m = design_metrics(&ts).unwrap();
        assert!(m.per_task[0].factor < 0.0);
        assert_eq!(m.per_task[0].overrun_bound, 1.0);
        assert_eq!(m.p_ms, 1.0);
        assert_eq!(m.objective, 0.0);
    }

    #[test]
    fn constant_time_task_never_overruns() {
        let t = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(5))
            .c_hi(Duration::from_millis(40))
            .profile(ExecutionProfile::new(3.0e6, 0.0, 40.0e6).unwrap())
            .build()
            .unwrap();
        let ts = TaskSet::from_tasks(vec![t]).unwrap();
        let m = design_metrics(&ts).unwrap();
        assert_eq!(m.per_task[0].overrun_bound, 0.0);
        assert_eq!(m.p_ms, 0.0);
    }

    #[test]
    fn multiple_tasks_compose_eq10() {
        // Two tasks at n = 2 each: P_MS = 1 − 0.8² = 0.36.
        let ts = TaskSet::from_tasks(vec![hc_with_budget(0, 5), hc_with_budget(1, 5)]).unwrap();
        let m = design_metrics(&ts).unwrap();
        assert!((m.p_ms - 0.36).abs() < 1e-9);
        assert!((m.u_hc_lo - 0.1).abs() < 1e-9);
        assert!((m.u_hc_hi - 0.8).abs() < 1e-9);
        // max U_LC^LO = min(0.9, 0.2/(0.2+0.1)) = 2/3.
        assert!((m.max_u_lc_lo - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.objective - 0.64 * 2.0 / 3.0).abs() < 1e-9);
        assert!(m.schedulable); // no LC tasks present.
    }

    #[test]
    fn missing_profile_is_reported() {
        let t = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(5))
            .c_hi(Duration::from_millis(40))
            .build()
            .unwrap();
        let ts = TaskSet::from_tasks(vec![t]).unwrap();
        assert!(matches!(
            design_metrics(&ts).unwrap_err(),
            CoreError::MissingProfile { .. }
        ));
    }

    #[test]
    fn lc_only_set_is_trivial() {
        let t = McTask::builder(TaskId::new(0))
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(50))
            .build()
            .unwrap();
        let ts = TaskSet::from_tasks(vec![t]).unwrap();
        let m = design_metrics(&ts).unwrap();
        assert_eq!(m.p_ms, 0.0);
        assert_eq!(m.max_u_lc_lo, 1.0);
        assert_eq!(m.objective, 1.0);
        assert!(m.schedulable);
    }
}
