//! `chebymc-core` — the primary contribution of *"Improving the Timing
//! Behaviour of Mixed-Criticality Systems Using Chebyshev's Theorem"*
//! (DATE 2021), as a library.
//!
//! The paper's scheme chooses each high-criticality task's *optimistic*
//! WCET as `C_LO = ACET + n·σ` and bounds the probability of overrunning it
//! — and hence of a system mode switch — by the one-sided Chebyshev
//! inequality `1/(1+n²)`, independent of the execution-time distribution.
//! The per-task factors `nᵢ` are optimised (GA) to maximise
//! `(1 − P_MS) · max(U_LC^LO)` under EDF-VD schedulability.
//!
//! * [`scheme`] — [`scheme::ChebyshevScheme`], the end-to-end entry point.
//! * [`policy`] — [`policy::WcetPolicy`]: the Chebyshev family plus the
//!   λ-fraction baselines the paper compares against.
//! * [`metrics`] — design metrics: Eq. 10 (`P_MS`), Eqs. 11–12
//!   (`max U_LC^LO`), Eq. 13 (objective), Eq. 8 (schedulability).
//! * [`pipeline`] — batch evaluation over synthetic task sets (Figs. 3–6).
//!
//! # Example
//!
//! ```
//! use chebymc_core::scheme::ChebyshevScheme;
//! use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut ts = generate_mixed_taskset(0.7, &GeneratorConfig::default(), &mut rng)?;
//! let report = ChebyshevScheme::new().design(&mut ts)?;
//! println!(
//!     "P_MS = {:.3}, max U_LC^LO = {:.3}",
//!     report.metrics.p_ms, report.metrics.max_u_lc_lo
//! );
//! assert!(report.metrics.schedulable);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod multi;
pub mod pipeline;
pub mod policy;
pub mod scheme;

use mc_task::TaskId;
use std::error::Error;
use std::fmt;

pub use metrics::{design_metrics, DesignMetrics};
pub use policy::WcetPolicy;
pub use scheme::{ChebyshevScheme, DesignReport};

/// Errors produced by the core scheme.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An HC task lacks the execution profile the scheme consumes.
    MissingProfile {
        /// The offending task.
        id: TaskId,
    },
    /// A policy parameter is out of range.
    InvalidPolicy {
        /// What was violated.
        reason: &'static str,
    },
    /// A task-model error.
    Task(mc_task::TaskError),
    /// An optimiser error.
    Opt(mc_opt::OptError),
    /// A scheduling/simulation error.
    Sched(mc_sched::SchedError),
    /// An input failed static analysis; the report carries every finding,
    /// not just the first.
    Lint(mc_lint::LintReport),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::MissingProfile { id } => {
                write!(f, "HC task {id} has no execution profile")
            }
            CoreError::InvalidPolicy { reason } => write!(f, "invalid policy: {reason}"),
            CoreError::Task(e) => write!(f, "task error: {e}"),
            CoreError::Opt(e) => write!(f, "optimiser error: {e}"),
            CoreError::Sched(e) => write!(f, "scheduling error: {e}"),
            CoreError::Lint(report) => {
                let first = report
                    .iter()
                    .find(|d| d.severity == mc_lint::Severity::Error);
                match first {
                    Some(d) => write!(
                        f,
                        "lint failed with {} error(s), first: {d}",
                        report.count(mc_lint::Severity::Error),
                    ),
                    None => write!(f, "lint failed"),
                }
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Task(e) => Some(e),
            CoreError::Opt(e) => Some(e),
            CoreError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mc_task::TaskError> for CoreError {
    fn from(e: mc_task::TaskError) -> Self {
        CoreError::Task(e)
    }
}

impl From<mc_opt::OptError> for CoreError {
    fn from(e: mc_opt::OptError) -> Self {
        CoreError::Opt(e)
    }
}

impl From<mc_sched::SchedError> for CoreError {
    fn from(e: mc_sched::SchedError) -> Self {
        CoreError::Sched(e)
    }
}

impl From<mc_lint::LintReport> for CoreError {
    fn from(report: mc_lint::LintReport) -> Self {
        CoreError::Lint(report)
    }
}

/// Fails with [`CoreError::Lint`] when the report contains errors;
/// warnings and infos pass through silently.
///
/// # Errors
///
/// Returns the full report so callers can render every finding.
pub fn fail_on_lint_errors(report: mc_lint::LintReport) -> Result<(), CoreError> {
    if report.has_errors() {
        Err(CoreError::Lint(report))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        assert!(CoreError::MissingProfile { id: TaskId::new(5) }
            .to_string()
            .contains("τ5"));
        assert!(CoreError::InvalidPolicy { reason: "nope" }
            .to_string()
            .contains("nope"));
    }

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = mc_task::TaskError::DuplicateTaskId { id: TaskId::new(0) }.into();
        assert!(Error::source(&e).is_some());
        let e: CoreError = mc_opt::OptError::EmptyChromosome.into();
        assert!(Error::source(&e).is_some());
        let e: CoreError = mc_sched::SchedError::EmptyTaskSet.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn lint_errors_surface_the_first_finding() {
        let mut report = mc_lint::LintReport::new();
        report.push(mc_lint::Diagnostic::new(
            mc_lint::Code::T001,
            "task τ0",
            "C_LO exceeds C_HI",
        ));
        let e: CoreError = report.clone().into();
        assert!(e.to_string().contains("T001"), "{e}");
        assert!(fail_on_lint_errors(report).is_err());
        assert!(fail_on_lint_errors(mc_lint::LintReport::new()).is_ok());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
