//! The paper's end-to-end scheme.
//!
//! [`ChebyshevScheme`] packages the full §IV flow: extract each HC task's
//! `(ACET, σ, WCET_pes)`, solve for per-task Chebyshev factors with the GA
//! (Eq. 13 objective under Eqs. 8–9), write the optimistic WCETs back, and
//! report the resulting design metrics.

use crate::metrics::{design_metrics, DesignMetrics};
use crate::CoreError;
use mc_opt::{GaConfig, ProblemConfig, WcetProblem};
use mc_task::TaskSet;
use serde::{Deserialize, Serialize};

/// The Chebyshev WCET-assignment scheme (the paper's contribution).
///
/// # Example
///
/// ```
/// use chebymc_core::scheme::ChebyshevScheme;
/// use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut ts = generate_mixed_taskset(0.6, &GeneratorConfig::default(), &mut rng)?;
/// let report = ChebyshevScheme::new().design(&mut ts)?;
/// assert!(report.metrics.schedulable);
/// assert!(report.metrics.p_ms < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChebyshevScheme {
    /// GA hyper-parameters (paper §V defaults). `ga.threads` controls the
    /// fitness-evaluation parallelism of a standalone design; batch
    /// pipelines override it with their per-set budget (see
    /// [`crate::pipeline::BatchConfig::threads`]).
    pub ga: GaConfig,
    /// Factor search-space configuration.
    pub problem: ProblemConfig,
}

/// The outcome of designing one task set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignReport {
    /// The solved per-HC-task Chebyshev factors (problem order = HC task
    /// order in the set).
    pub factors: Vec<f64>,
    /// Metrics of the assigned design.
    pub metrics: DesignMetrics,
}

impl ChebyshevScheme {
    /// A scheme with the paper's default GA configuration.
    pub fn new() -> Self {
        ChebyshevScheme::default()
    }

    /// A scheme with an explicit GA seed (otherwise identical defaults).
    pub fn with_seed(seed: u64) -> Self {
        ChebyshevScheme {
            ga: GaConfig {
                seed,
                ..GaConfig::default()
            },
            problem: ProblemConfig::default(),
        }
    }

    /// Designs the task set in place: solves for factors, assigns
    /// optimistic WCETs, and computes the design metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Lint`] when the task set or the GA/problem
    /// configuration fails static analysis (every finding reported at
    /// once), [`CoreError::MissingProfile`] when an HC task lacks an
    /// execution profile, and propagates optimiser errors.
    pub fn design(&self, ts: &mut TaskSet) -> Result<DesignReport, CoreError> {
        let mut lint = mc_lint::lint_ga_config(&self.ga);
        lint.merge(mc_lint::lint_problem_config(&self.problem));
        lint.merge(mc_lint::lint_taskset(ts));
        crate::fail_on_lint_errors(lint)?;
        let problem = WcetProblem::from_taskset(ts, self.problem).map_err(CoreError::Opt)?;
        let solution = problem.solve_ga(&self.ga).map_err(CoreError::Opt)?;
        problem
            .apply(ts, &solution.factors)
            .map_err(CoreError::Opt)?;
        let metrics = design_metrics(ts)?;
        Ok(DesignReport {
            factors: solution.factors,
            metrics,
        })
    }

    /// Designs with one uniform factor instead of the GA (Figs. 2–3 mode).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChebyshevScheme::design`].
    pub fn design_uniform(&self, ts: &mut TaskSet, n: f64) -> Result<DesignReport, CoreError> {
        crate::policy::WcetPolicy::ChebyshevUniform { n }.assign(ts)?;
        let metrics = design_metrics(ts)?;
        let factors = metrics.per_task.iter().map(|t| t.factor).collect();
        Ok(DesignReport { factors, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, ExecutionProfile, McTask, TaskId};

    fn sample_set() -> TaskSet {
        let mk = |id: u32, acet_ms: f64, sigma_ms: f64, c_hi_ms: u64, p_ms: u64| {
            McTask::builder(TaskId::new(id))
                .criticality(Criticality::Hi)
                .period(Duration::from_millis(p_ms))
                .c_lo(Duration::from_millis(c_hi_ms))
                .c_hi(Duration::from_millis(c_hi_ms))
                .profile(
                    ExecutionProfile::new(acet_ms * 1e6, sigma_ms * 1e6, c_hi_ms as f64 * 1e6)
                        .unwrap(),
                )
                .build()
                .unwrap()
        };
        TaskSet::from_tasks(vec![
            mk(0, 3.0, 1.0, 40, 100),
            mk(1, 8.0, 2.0, 45, 150),
            McTask::builder(TaskId::new(2))
                .period(Duration::from_millis(300))
                .c_lo(Duration::from_millis(30))
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn design_improves_on_pessimistic_default() {
        let mut ts = sample_set();
        let before = crate::metrics::design_metrics(&ts).unwrap();
        let report = ChebyshevScheme::with_seed(3).design(&mut ts).unwrap();
        // Pessimistic C_LO = C_HI gives u_hc_lo = u_hc_hi; the scheme must
        // free up LC room.
        assert!(report.metrics.max_u_lc_lo > before.max_u_lc_lo);
        assert!(report.metrics.u_hc_lo < before.u_hc_lo);
        assert!(report.metrics.schedulable);
        assert_eq!(report.factors.len(), 2);
        assert!(report.factors.iter().all(|&n| n >= 0.0));
    }

    #[test]
    fn design_is_deterministic_per_seed() {
        let mut a = sample_set();
        let mut b = sample_set();
        let ra = ChebyshevScheme::with_seed(9).design(&mut a).unwrap();
        let rb = ChebyshevScheme::with_seed(9).design(&mut b).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_design_reports_the_applied_factor() {
        let mut ts = sample_set();
        let report = ChebyshevScheme::new().design_uniform(&mut ts, 4.0).unwrap();
        for &f in &report.factors {
            assert!((f - 4.0).abs() < 1e-6, "factor {f}");
        }
        // Two tasks at n = 4: P_MS = 1 − (16/17)² ≈ 0.1142.
        assert!((report.metrics.p_ms - (1.0 - (16.0 / 17.0f64).powi(2))).abs() < 1e-9);
    }

    #[test]
    fn ga_design_is_at_least_as_good_as_good_uniform_choices() {
        let mut ga_ts = sample_set();
        let ga = ChebyshevScheme::with_seed(1).design(&mut ga_ts).unwrap();
        for n in [1.0, 5.0, 10.0, 18.0, 30.0] {
            let mut uts = sample_set();
            let uni = ChebyshevScheme::new().design_uniform(&mut uts, n).unwrap();
            assert!(
                ga.metrics.objective >= uni.metrics.objective - 1e-3,
                "uniform n = {n}: {} beats GA {}",
                uni.metrics.objective,
                ga.metrics.objective
            );
        }
    }
}
