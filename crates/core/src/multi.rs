//! The Chebyshev scheme generalised to `L` criticality levels — the
//! paper's stated future work (§VI).
//!
//! Budgets below a task's own level are set per *mode*: a factor vector
//! `n₀ ≤ n₁ ≤ … ≤ n_{L−2}` gives every surviving task the budget
//! `C(k) = ACET + n_k·σ` in mode `k` (clamped into `[ACET, WCET_pes]`), so
//! lower modes are more optimistic and budgets are non-decreasing across
//! modes by construction. Theorem 1 then bounds, per mode `k`, the
//! probability that some alive task overruns `C(k)` — i.e. the probability
//! of escalating out of mode `k`.
//!
//! Schedulability uses the pairwise reduction of
//! [`mc_sched::analysis::multi`]; the optimisation objective generalises
//! Eq. 13: maximise `(1 − P₀) · max(U_L0)` — rare escalation out of the
//! fully-functional mode and maximal admissible lowest-criticality
//! utilisation — subject to every pair passing Eq. 8 (death penalty).

use crate::CoreError;
use mc_opt::ga::{optimize, GaConfig, GeneBounds};
use mc_sched::analysis::edf_vd;
use mc_sched::analysis::multi::{analyze, MultiAnalysis};
use mc_stats::chebyshev;
use mc_task::multi::MultiTaskSet;
use mc_task::time::Duration;
use serde::{Deserialize, Serialize};

/// Design metrics of an assigned multi-level system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiMetrics {
    /// Per mode `k`: the Chebyshev bound on the probability of escalating
    /// out of mode `k` (Eq. 10 over the tasks alive in that mode).
    pub escalation_bounds: Vec<f64>,
    /// Chained bound on ever reaching the top mode (the product of the
    /// per-step bounds; indicative, not tight).
    pub p_reach_top: f64,
    /// Admissible level-0 utilisation from the (0, 1) reduction
    /// (Eqs. 11–12).
    pub max_u_lowest: f64,
    /// The generalised Eq. 13 objective `(1 − P₀) · max(U_L0)`.
    pub objective: f64,
    /// The pairwise schedulability analysis.
    pub analysis: MultiAnalysis,
}

/// The multi-level Chebyshev scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiScheme {
    /// GA hyper-parameters for the per-mode factor search. `ga.threads`
    /// parallelises the fitness evaluation; results are bit-identical for
    /// any thread count.
    pub ga: GaConfig,
    /// Upper cap on any factor.
    pub factor_cap: f64,
}

impl Default for MultiScheme {
    fn default() -> Self {
        MultiScheme {
            ga: GaConfig::default(),
            factor_cap: 50.0,
        }
    }
}

/// The outcome of a multi-level design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDesignReport {
    /// The solved per-mode factors `n₀ … n_{L−2}` (non-decreasing).
    pub factors: Vec<f64>,
    /// Metrics of the assigned system.
    pub metrics: MultiMetrics,
}

impl MultiScheme {
    /// A scheme with defaults and the given GA seed.
    pub fn with_seed(seed: u64) -> Self {
        MultiScheme {
            ga: GaConfig {
                seed,
                ..GaConfig::default()
            },
            ..MultiScheme::default()
        }
    }

    /// Assigns every task's lower budgets from the per-mode `factors`
    /// (`factors.len() == levels − 1`). Factors are first made
    /// non-decreasing by a running maximum so the budget vectors are valid
    /// for any input.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPolicy`] for a wrong factor count or
    /// negative/non-finite factors, and [`CoreError::MissingProfile`] when
    /// a task with level ≥ 1 has no profile.
    pub fn assign(&self, ts: &mut MultiTaskSet, factors: &[f64]) -> Result<(), CoreError> {
        if factors.len() != ts.levels() - 1 {
            return Err(CoreError::InvalidPolicy {
                reason: "need exactly levels-1 per-mode factors",
            });
        }
        if factors.iter().any(|n| !n.is_finite() || *n < 0.0) {
            return Err(CoreError::InvalidPolicy {
                reason: "factors must be finite and non-negative",
            });
        }
        let mut monotone = factors.to_vec();
        for i in 1..monotone.len() {
            monotone[i] = monotone[i].max(monotone[i - 1]);
        }
        // Collect assignments first so validation failures leave `ts`
        // untouched.
        let mut assignments: Vec<(usize, Vec<Duration>)> = Vec::new();
        for (idx, task) in ts.iter().enumerate() {
            if task.level() == 0 {
                continue;
            }
            let profile = task
                .profile()
                .ok_or(CoreError::MissingProfile { id: task.id() })?;
            let top = *task.budgets().last().expect("non-empty budgets");
            let mut lower = Vec::with_capacity(task.level());
            for &n in monotone.iter().take(task.level()) {
                let level_ns = profile.level(profile.clamp_factor(n));
                let c = Duration::try_from_nanos_f64_ceil(level_ns)
                    .unwrap_or(top)
                    .clamp(Duration::from_nanos(1), top);
                lower.push(c);
            }
            assignments.push((idx, lower));
        }
        for (idx, lower) in assignments {
            let task = ts.iter_mut().nth(idx).expect("index from enumeration");
            task.set_lower_budgets(&lower).map_err(CoreError::Task)?;
        }
        Ok(())
    }

    /// Computes the design metrics of an assigned system.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MissingProfile`] when a task with level ≥ 1
    /// has no profile.
    pub fn metrics(ts: &MultiTaskSet) -> Result<MultiMetrics, CoreError> {
        let levels = ts.levels();
        let mut escalation_bounds = Vec::with_capacity(levels - 1);
        for k in 0..levels - 1 {
            let mut no_escalation = 1.0;
            for task in ts.iter().filter(|t| t.level() > k) {
                let profile = task
                    .profile()
                    .ok_or(CoreError::MissingProfile { id: task.id() })?;
                let c_k = task
                    .budget(k)
                    .expect("level > k implies a mode-k budget")
                    .as_nanos() as f64;
                let p = if profile.sigma() == 0.0 {
                    if c_k >= profile.acet() {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    let n = (c_k - profile.acet()) / profile.sigma();
                    if n >= 0.0 {
                        chebyshev::one_sided_bound(n)
                    } else {
                        1.0
                    }
                };
                no_escalation *= 1.0 - p;
            }
            escalation_bounds.push(1.0 - no_escalation);
        }
        let p_reach_top = escalation_bounds.iter().product();
        let analysis = analyze(ts);
        let (u_hc_lo, u_hc_hi, _) = ts.reduce_to_dual(0).map_err(CoreError::Task)?;
        let max_u_lowest = edf_vd::max_u_lc_lo(u_hc_lo, u_hc_hi);
        let p0 = escalation_bounds.first().copied().unwrap_or(0.0);
        let objective = if analysis.schedulable {
            (1.0 - p0) * max_u_lowest
        } else {
            0.0
        };
        Ok(MultiMetrics {
            escalation_bounds,
            p_reach_top,
            max_u_lowest,
            objective,
            analysis,
        })
    }

    /// Solves for the per-mode factors with the GA, assigns them, and
    /// reports the metrics.
    ///
    /// # Errors
    ///
    /// Propagates assignment/metrics errors and GA configuration errors.
    pub fn design(&self, ts: &mut MultiTaskSet) -> Result<MultiDesignReport, CoreError> {
        let genes = ts.levels() - 1;
        let bounds = vec![GeneBounds::new(0.0, self.factor_cap).map_err(CoreError::Opt)?; genes];
        let fitness = |factors: &[f64]| -> f64 {
            let mut candidate = ts.clone();
            match self.assign(&mut candidate, factors) {
                Ok(()) => match Self::metrics(&candidate) {
                    Ok(m) => m.objective,
                    Err(_) => 0.0,
                },
                Err(_) => 0.0,
            }
        };
        let result = optimize(&bounds, fitness, &self.ga).map_err(CoreError::Opt)?;
        // Re-apply the winning (monotonised) factors.
        let mut monotone = result.best.clone();
        for i in 1..monotone.len() {
            monotone[i] = monotone[i].max(monotone[i - 1]);
        }
        self.assign(ts, &monotone)?;
        let metrics = Self::metrics(ts)?;
        Ok(MultiDesignReport {
            factors: monotone,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::multi::MultiTask;
    use mc_task::task::TaskId;
    use mc_task::ExecutionProfile;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// Builds a profiled task: ACET/σ in ms, top budget = wcet ms.
    fn profiled(
        id: u32,
        level: usize,
        acet_ms: f64,
        sigma_ms: f64,
        wcet_ms: u64,
        p_ms: u64,
    ) -> MultiTask {
        let budgets: Vec<Duration> = (0..=level).map(|_| ms(wcet_ms)).collect();
        MultiTask::new(
            TaskId::new(id),
            "",
            level,
            budgets,
            ms(p_ms),
            Some(
                ExecutionProfile::new(acet_ms * 1e6, sigma_ms * 1e6, wcet_ms as f64 * 1e6).unwrap(),
            ),
        )
        .unwrap()
    }

    fn lc0(id: u32, c_ms: u64, p_ms: u64) -> MultiTask {
        MultiTask::new(TaskId::new(id), "", 0, vec![ms(c_ms)], ms(p_ms), None).unwrap()
    }

    fn tri_level() -> MultiTaskSet {
        let mut ts = MultiTaskSet::new(3).unwrap();
        ts.push(profiled(0, 2, 3.0, 1.0, 40, 100)).unwrap();
        ts.push(profiled(1, 1, 5.0, 2.0, 30, 100)).unwrap();
        ts.push(lc0(2, 20, 100)).unwrap();
        ts
    }

    #[test]
    fn assign_sets_acet_plus_n_sigma_per_mode() {
        let mut ts = tri_level();
        MultiScheme::default().assign(&mut ts, &[2.0, 5.0]).unwrap();
        let top = ts.iter().find(|t| t.level() == 2).unwrap();
        // Mode 0: 3 + 2·1 = 5 ms; mode 1: 3 + 5·1 = 8 ms; mode 2 fixed 40 ms.
        assert_eq!(top.budgets(), &[ms(5), ms(8), ms(40)]);
        let mid = ts.iter().find(|t| t.level() == 1).unwrap();
        // Mode 0: 5 + 2·2 = 9 ms; top fixed 30 ms.
        assert_eq!(mid.budgets(), &[ms(9), ms(30)]);
    }

    #[test]
    fn assign_monotonises_factors() {
        let mut ts = tri_level();
        // Decreasing input factors are lifted to a running max (5, 5).
        MultiScheme::default().assign(&mut ts, &[5.0, 2.0]).unwrap();
        let top = ts.iter().find(|t| t.level() == 2).unwrap();
        assert_eq!(top.budgets()[0], top.budgets()[1]);
    }

    #[test]
    fn assign_validates_inputs() {
        let mut ts = tri_level();
        let s = MultiScheme::default();
        assert!(s.assign(&mut ts, &[1.0]).is_err());
        assert!(s.assign(&mut ts, &[1.0, -2.0]).is_err());
        assert!(s.assign(&mut ts, &[f64::NAN, 1.0]).is_err());

        // Missing profile on a level ≥ 1 task.
        let mut bare = MultiTaskSet::new(2).unwrap();
        bare.push(
            MultiTask::new(TaskId::new(0), "", 1, vec![ms(5), ms(10)], ms(100), None).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            s.assign(&mut bare, &[1.0]),
            Err(CoreError::MissingProfile { .. })
        ));
    }

    #[test]
    fn escalation_bounds_match_hand_computation() {
        let mut ts = tri_level();
        MultiScheme::default().assign(&mut ts, &[2.0, 3.0]).unwrap();
        let m = MultiScheme::metrics(&ts).unwrap();
        // Mode 0: both profiled tasks alive at n = 2 → 1 − 0.8² = 0.36.
        assert!((m.escalation_bounds[0] - 0.36).abs() < 1e-9);
        // Mode 1: only the level-2 task alive at n = 3 → 0.1.
        assert!((m.escalation_bounds[1] - 0.1).abs() < 1e-9);
        assert!((m.p_reach_top - 0.036).abs() < 1e-9);
        assert!(m.analysis.schedulable);
        assert!(m.objective > 0.0);
    }

    #[test]
    fn higher_factors_lower_escalation_bounds() {
        let mut low = tri_level();
        MultiScheme::default()
            .assign(&mut low, &[1.0, 2.0])
            .unwrap();
        let mut high = tri_level();
        MultiScheme::default()
            .assign(&mut high, &[4.0, 8.0])
            .unwrap();
        let ml = MultiScheme::metrics(&low).unwrap();
        let mh = MultiScheme::metrics(&high).unwrap();
        for (a, b) in mh.escalation_bounds.iter().zip(&ml.escalation_bounds) {
            assert!(a <= b);
        }
        assert!(mh.max_u_lowest <= ml.max_u_lowest + 1e-12);
    }

    #[test]
    fn two_level_design_matches_dual_scheme_shape() {
        // On L = 2 the multi scheme optimises the same Eq. 13 landscape as
        // the dual scheme; its objective must land in the same ballpark as
        // a good uniform dual design.
        let mut ts = MultiTaskSet::new(2).unwrap();
        ts.push(profiled(0, 1, 3.0, 1.0, 40, 100)).unwrap();
        ts.push(profiled(1, 1, 8.0, 2.0, 45, 150)).unwrap();
        ts.push(lc0(2, 30, 300)).unwrap();
        let report = MultiScheme::with_seed(1).design(&mut ts).unwrap();
        assert_eq!(report.factors.len(), 1);
        assert!(report.metrics.analysis.schedulable);
        assert!(
            report.metrics.objective > 0.5,
            "objective {}",
            report.metrics.objective
        );
    }

    #[test]
    fn ga_design_beats_extreme_factor_choices() {
        let base = tri_level();
        let report = MultiScheme::with_seed(7).design(&mut base.clone()).unwrap();
        for factors in [[0.5, 0.5], [40.0, 40.0]] {
            let mut alt = base.clone();
            MultiScheme::default().assign(&mut alt, &factors).unwrap();
            let m = MultiScheme::metrics(&alt).unwrap();
            assert!(
                report.metrics.objective >= m.objective - 1e-3,
                "factors {factors:?}: {} beats GA {}",
                m.objective,
                report.metrics.objective
            );
        }
        // Factors come out non-decreasing.
        assert!(report.factors[0] <= report.factors[1] + 1e-12);
    }

    #[test]
    fn unschedulable_system_gets_zero_objective() {
        let mut ts = MultiTaskSet::new(2).unwrap();
        ts.push(profiled(0, 1, 3.0, 1.0, 90, 100)).unwrap();
        ts.push(profiled(1, 1, 3.0, 1.0, 90, 100)).unwrap(); // U_HI = 1.8
        MultiScheme::default().assign(&mut ts, &[2.0]).unwrap();
        let m = MultiScheme::metrics(&ts).unwrap();
        assert!(!m.analysis.schedulable);
        assert_eq!(m.objective, 0.0);
    }
}
