//! Batch evaluation pipelines behind the paper's Figs. 3–6.
//!
//! Each figure averages a metric over many synthetic task sets per
//! utilisation point (1000 in the paper). The pipelines here generate the
//! sets (seeded and reproducible), apply a [`WcetPolicy`], and aggregate
//! design metrics or schedulability verdicts.

use crate::metrics::design_metrics;
use crate::policy::WcetPolicy;
use crate::CoreError;
use mc_sched::analysis::{edf_vd, liu};
use mc_sched::policy::{PolicySpec, SchedulingPolicy};
use mc_sched::sim::{simulate, SimConfig};
use mc_task::automotive::{generate_automotive_taskset, AutomotiveConfig};
use mc_task::generate::{
    generate_hc_taskset, generate_lo_bounded_taskset, generate_mixed_taskset, GeneratorConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How many task sets to average per point, and how to generate them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Task sets per utilisation point (the paper uses 1000).
    pub task_sets: usize,
    /// Base seed; the i-th set of the j-th point derives its own seed.
    pub seed: u64,
    /// Synthetic-workload parameters.
    pub generator: GeneratorConfig,
    /// Total thread budget for the batch (`0` = all available cores),
    /// governing *both* parallelism layers: the per-set fan-out and each
    /// set's inner GA evaluation share this one budget, so nesting never
    /// oversubscribes. Results are bit-identical for any thread count —
    /// every set draws from its own derived seed, and the GA keeps its
    /// RNG on a single serial stream.
    #[serde(default)]
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            task_sets: 100,
            seed: 0,
            generator: GeneratorConfig::default(),
            threads: 0,
        }
    }
}

impl BatchConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.task_sets == 0 {
            return Err(CoreError::InvalidPolicy {
                reason: "batch needs at least one task set",
            });
        }
        // The lint pass reports every bad generator range at once, where
        // `GeneratorConfig::validate` stops at the first.
        crate::fail_on_lint_errors(mc_lint::lint_generator_config(&self.generator))
    }

    fn set_seed(&self, point: usize, set: usize) -> u64 {
        derive_set_seed(self.seed, point, set)
    }

    /// Builds the batch layer's worker pool and the per-set inner thread
    /// count. The `threads` knob is a single budget governing *both*
    /// parallelism layers: it is split across the per-set fan-out first
    /// (the wider, better-balanced axis), and whatever is left over goes
    /// to each set's inner GA evaluation — so batch × GA can never
    /// oversubscribe the machine. A pipeline creates the pool once and
    /// reuses it across all its utilisation points.
    fn make_pool(&self) -> (mc_par::WorkerPool, usize) {
        let (outer, inner) = mc_par::ThreadBudget::explicit(self.threads).split(self.task_sets);
        (mc_par::WorkerPool::new(outer), inner.get())
    }
}

/// Derives the seed of the `set`-th task set at the `point`-th axis point
/// from a batch/campaign base seed. SplitMix-style mixing keeps the
/// streams independent across points and sets. This is the seed contract
/// shared by the batch pipelines here and by `mc-exp` campaign runners:
/// any process that re-derives `(point, set)` gets bit-identical task
/// sets, which is what makes sharded and resumed runs reproducible.
#[must_use]
pub fn derive_set_seed(base_seed: u64, point: usize, set: usize) -> u64 {
    let mut z = base_seed.wrapping_add(
        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(1 + point as u64 * 65_537 + set as u64),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Design metrics of one generated-and-designed task set — the per-unit
/// quantity the Figs. 3–5 pipelines average, exposed so external drivers
/// (the `mc-exp` campaign runner) can evaluate single sets and aggregate
/// on their own without diverging from the in-process batch path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetEvaluation {
    /// Mode-switch probability bound (Eq. 10).
    pub p_ms: f64,
    /// `max(U_LC^LO)` (Eqs. 11–12).
    pub max_u_lc_lo: f64,
    /// Eq. 13 objective.
    pub objective: f64,
}

/// Generates one HC-only task set at utilisation `u` from `seed`, applies
/// `policy` (re-seeded to the same `seed`, inner parallelism pinned to
/// `inner_threads`), and returns its design metrics.
///
/// [`evaluate_policy_over_utilization`] is exactly a mean over calls of
/// this function with `seed = derive_set_seed(batch.seed, point, set)`,
/// so external drivers that follow the same seed contract reproduce the
/// batch numbers bit-for-bit.
///
/// # Errors
///
/// Propagates generation, assignment, and metric errors.
pub fn evaluate_policy_one_set(
    u: f64,
    policy: &WcetPolicy,
    generator: &GeneratorConfig,
    seed: u64,
    inner_threads: usize,
) -> Result<SetEvaluation, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = {
        let _span = mc_obs::span("pipeline.generate");
        generate_hc_taskset(u, generator, &mut rng).map_err(CoreError::Task)?
    };
    {
        let _span = mc_obs::span("pipeline.assign");
        reseed(policy, seed, inner_threads).assign(&mut ts)?;
    }
    let _span = mc_obs::span("pipeline.metrics");
    let m = design_metrics(&ts)?;
    Ok(SetEvaluation {
        p_ms: m.p_ms,
        max_u_lc_lo: m.max_u_lc_lo,
        objective: m.objective,
    })
}

/// Evaluates `f(set_index)` for every set in the batch on `pool`. Order
/// and values are independent of the thread count; the first error (by
/// set index) wins.
fn map_sets<R, F>(pool: &mc_par::WorkerPool, count: usize, f: F) -> Result<Vec<R>, CoreError>
where
    R: Send,
    F: Fn(usize) -> Result<R, CoreError> + Sync,
{
    let mut slots: Vec<Option<Result<R, CoreError>>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    pool.fill(&mut slots, |i| Some(f(i)));
    slots
        .into_iter()
        .map(|r| r.expect("fill writes every slot"))
        .collect()
}

/// Fail-fast static analysis of a policy's embedded configuration, so a
/// misconfigured GA surfaces before the batch starts rather than once per
/// generated task set.
fn lint_policy(policy: &WcetPolicy) -> Result<(), CoreError> {
    if let WcetPolicy::ChebyshevGa { ga, problem } = policy {
        let mut lint = mc_lint::lint_ga_config(ga);
        lint.merge(mc_lint::lint_problem_config(problem));
        crate::fail_on_lint_errors(lint)?;
    }
    Ok(())
}

/// Re-seeds a policy's internal randomness so every task set in a batch
/// gets an independent draw, and pins the policy's inner parallelism to
/// the batch's per-set thread budget (see [`BatchConfig::make_pool`]).
fn reseed(policy: &WcetPolicy, seed: u64, inner_threads: usize) -> WcetPolicy {
    match policy {
        WcetPolicy::LambdaRange { lambda_min, .. } => WcetPolicy::LambdaRange {
            lambda_min: *lambda_min,
            seed,
        },
        WcetPolicy::ChebyshevGa { ga, problem } => WcetPolicy::ChebyshevGa {
            ga: mc_opt::GaConfig {
                seed,
                threads: inner_threads,
                ..*ga
            },
            problem: *problem,
        },
        other => other.clone(),
    }
}

/// Aggregated design metrics at one utilisation point (a Fig. 3/4/5 data
/// point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// The `U_HC^HI` target of the generated sets.
    pub u_hc_hi: f64,
    /// Mean mode-switch probability (Eq. 10) over the batch.
    pub mean_p_ms: f64,
    /// Mean `max(U_LC^LO)` (Eqs. 11–12) over the batch.
    pub mean_max_u_lc_lo: f64,
    /// Mean Eq. 13 objective over the batch.
    pub mean_objective: f64,
}

/// Evaluates `policy` over HC-only task sets at each `U_HC^HI` in
/// `u_values` — the engine behind Figs. 3–5.
///
/// # Errors
///
/// Propagates generation and assignment errors; returns
/// [`CoreError::InvalidPolicy`] for an empty batch or empty `u_values`.
pub fn evaluate_policy_over_utilization(
    u_values: &[f64],
    policy: &WcetPolicy,
    batch: &BatchConfig,
) -> Result<Vec<PolicyPoint>, CoreError> {
    batch.validate()?;
    lint_policy(policy)?;
    if u_values.is_empty() {
        return Err(CoreError::InvalidPolicy {
            reason: "at least one utilisation point is required",
        });
    }
    let (pool, inner_threads) = batch.make_pool();
    let mut out = Vec::with_capacity(u_values.len());
    for (pi, &u) in u_values.iter().enumerate() {
        let _point_span = mc_obs::span("pipeline.point");
        let per_set = map_sets(&pool, batch.task_sets, |si| {
            evaluate_policy_one_set(
                u,
                policy,
                &batch.generator,
                batch.set_seed(pi, si),
                inner_threads,
            )
        })?;
        let n = batch.task_sets as f64;
        out.push(PolicyPoint {
            u_hc_hi: u,
            mean_p_ms: per_set.iter().map(|r| r.p_ms).sum::<f64>() / n,
            mean_max_u_lc_lo: per_set.iter().map(|r| r.max_u_lc_lo).sum::<f64>() / n,
            mean_objective: per_set.iter().map(|r| r.objective).sum::<f64>() / n,
        });
    }
    Ok(out)
}

/// The scheduling approach whose acceptance is measured in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulingApproach {
    /// Baruah et al. RTNS'12: EDF-VD, all LC tasks dropped in HI mode
    /// (paper Eq. 8).
    BaruahDropAll,
    /// Liu et al. RTSS'16: EDF-VD with LC tasks degraded to the given
    /// fraction of their budget in HI mode (the paper uses 0.5).
    LiuDegrade {
        /// Retained LC budget fraction in HI mode.
        fraction: f64,
    },
}

impl SchedulingApproach {
    /// Whether `ts` (with `C_LO` already assigned) passes this approach's
    /// schedulability test.
    pub fn schedulable(&self, ts: &mc_task::TaskSet) -> bool {
        match self {
            SchedulingApproach::BaruahDropAll => edf_vd::analyze(ts).schedulable,
            SchedulingApproach::LiuDegrade { fraction } => liu::analyze(ts, *fraction).schedulable,
        }
    }
}

/// One acceptance-ratio data point (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePoint {
    /// The generated bound utilisation `U_HC^HI + U_LC^LO`.
    pub u_bound: f64,
    /// Fraction of task sets deemed schedulable.
    pub ratio: f64,
}

/// Measures the acceptance ratio of `policy` + `approach` over mixed task
/// sets at each bound utilisation — the engine behind Fig. 6.
///
/// # Errors
///
/// Same conditions as [`evaluate_policy_over_utilization`].
pub fn acceptance_ratio(
    u_bounds: &[f64],
    policy: &WcetPolicy,
    approach: SchedulingApproach,
    batch: &BatchConfig,
) -> Result<Vec<AcceptancePoint>, CoreError> {
    batch.validate()?;
    lint_policy(policy)?;
    if u_bounds.is_empty() {
        return Err(CoreError::InvalidPolicy {
            reason: "at least one utilisation point is required",
        });
    }
    if let SchedulingApproach::LiuDegrade { fraction } = approach {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(CoreError::InvalidPolicy {
                reason: "degradation fraction must be in [0, 1]",
            });
        }
    }
    let (pool, inner_threads) = batch.make_pool();
    let mut out = Vec::with_capacity(u_bounds.len());
    for (pi, &u) in u_bounds.iter().enumerate() {
        let _point_span = mc_obs::span("pipeline.point");
        let verdicts = map_sets(&pool, batch.task_sets, |si| {
            let seed = batch.set_seed(pi, si);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ts = {
                let _span = mc_obs::span("pipeline.generate");
                generate_mixed_taskset(u, &batch.generator, &mut rng).map_err(CoreError::Task)?
            };
            {
                let _span = mc_obs::span("pipeline.assign");
                reseed(policy, seed, inner_threads).assign(&mut ts)?;
            }
            let _span = mc_obs::span("pipeline.sched_test");
            Ok(approach.schedulable(&ts))
        })?;
        let accepted = verdicts.iter().filter(|&&ok| ok).count();
        out.push(AcceptancePoint {
            u_bound: u,
            ratio: accepted as f64 / batch.task_sets as f64,
        });
    }
    Ok(out)
}

/// The Fig. 6 experiment proper: task sets whose **LO-mode** utilisation
/// reaches `u_bound`, with HC tasks budgeted the λ-baseline way
/// (`C_LO = λᵢ·C_HI`, `λᵢ ∈ lambda_range`). With `scheme = None` the sets
/// are tested as generated (the published approaches); with
/// `scheme = Some(policy)` the policy re-derives every `C_LO` first (the
/// "+ our scheme" variants).
///
/// # Errors
///
/// Same conditions as [`acceptance_ratio`], plus generator validation of
/// `lambda_range`.
pub fn acceptance_ratio_lo_bounded(
    u_bounds: &[f64],
    scheme: Option<&WcetPolicy>,
    approach: SchedulingApproach,
    lambda_range: (f64, f64),
    batch: &BatchConfig,
) -> Result<Vec<AcceptancePoint>, CoreError> {
    batch.validate()?;
    if let Some(policy) = scheme {
        lint_policy(policy)?;
    }
    if u_bounds.is_empty() {
        return Err(CoreError::InvalidPolicy {
            reason: "at least one utilisation point is required",
        });
    }
    let (pool, inner_threads) = batch.make_pool();
    let mut out = Vec::with_capacity(u_bounds.len());
    for (pi, &u) in u_bounds.iter().enumerate() {
        let _point_span = mc_obs::span("pipeline.point");
        let verdicts = map_sets(&pool, batch.task_sets, |si| {
            let seed = batch.set_seed(pi, si);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ts = {
                let _span = mc_obs::span("pipeline.generate");
                generate_lo_bounded_taskset(u, lambda_range, &batch.generator, &mut rng)
                    .map_err(CoreError::Task)?
            };
            if let Some(policy) = scheme {
                let _span = mc_obs::span("pipeline.assign");
                reseed(policy, seed, inner_threads).assign(&mut ts)?;
            }
            let _span = mc_obs::span("pipeline.sched_test");
            Ok(approach.schedulable(&ts))
        })?;
        let accepted = verdicts.iter().filter(|&&ok| ok).count();
        out.push(AcceptancePoint {
            u_bound: u,
            ratio: accepted as f64 / batch.task_sets as f64,
        });
    }
    Ok(out)
}

/// What one scheduling policy did with one designed task set: the
/// design-time verdict plus the runtime rates of a simulation under the
/// policy's certified behaviour — the per-unit row of the `policy_arena`
/// campaign's cross-policy comparison table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArenaEvaluation {
    /// `1.0` when the policy's admission test accepted the set, else `0.0`
    /// (kept numeric so campaign aggregation can average it into an
    /// acceptance ratio).
    pub schedulable: f64,
    /// LC service fraction the policy guarantees in HI mode (`θ*` for
    /// flexible policies, the fixed fraction otherwise, `0` for drop-all).
    pub service_level: f64,
    /// System-level mode switches per released HC job.
    pub switch_rate: f64,
    /// Task-level contained overruns per released HC job (non-zero only
    /// under combined switching).
    pub task_switch_rate: f64,
    /// LC quality of service: `1 − lc_loss_rate` over the run.
    pub lc_qos: f64,
    /// HC deadline misses per released HC job (non-zero only when an
    /// unschedulable set is simulated anyway).
    pub hc_miss_rate: f64,
}

/// Races `policy` against one already-designed task set: runs the
/// admission test, then simulates the set under the policy's certified
/// runtime behaviour (`base` supplies horizon/exec-model; the policy
/// overrides LC handling and mode switching; `seed` drives execution-time
/// sampling). Unschedulable sets are simulated too — the arena table shows
/// what *would* happen, and `hc_miss_rate` makes the failure visible.
///
/// # Errors
///
/// Returns [`CoreError::Sched`] for an empty task set or a diverging
/// simulation — campaign runners and `mc-serve` workers report these as
/// failed units instead of crashing.
pub fn evaluate_arena_set(
    ts: &mc_task::TaskSet,
    policy: &PolicySpec,
    base: &SimConfig,
    seed: u64,
) -> Result<ArenaEvaluation, CoreError> {
    let verdict = {
        let _span = mc_obs::span("pipeline.admit");
        policy.admit(ts)?
    };
    let cfg = SimConfig {
        seed,
        ..policy.sim_config(ts, base)
    };
    let _span = mc_obs::span("pipeline.simulate");
    let m = simulate(ts, &cfg)?;
    let per_hc = |n: u64| {
        if m.hc_released == 0 {
            0.0
        } else {
            n as f64 / m.hc_released as f64
        }
    };
    Ok(ArenaEvaluation {
        schedulable: if verdict.schedulable { 1.0 } else { 0.0 },
        service_level: verdict.service_level,
        switch_rate: m.switch_rate_per_hc_job(),
        task_switch_rate: per_hc(m.task_level_switches),
        lc_qos: 1.0 - m.lc_loss_rate(),
        hc_miss_rate: per_hc(m.hc_deadline_misses),
    })
}

/// Generates one mixed task set at bound utilisation `u` from `seed`,
/// applies the WCET-assignment `wcet` policy (re-seeded to `seed`, inner
/// parallelism pinned to one thread — arena units are already the
/// fan-out axis), and races `policy` on it via [`evaluate_arena_set`].
///
/// The `policy_arena` campaign calls this with
/// `seed = derive_set_seed(base, u_index, replica)` — note the seed does
/// **not** depend on the policy, so every policy in the arena sees
/// bit-identical task sets and the comparison is paired, not just
/// distributional.
///
/// # Errors
///
/// Propagates generation, assignment, admission, and simulation errors.
pub fn evaluate_arena_one_set(
    u: f64,
    wcet: &WcetPolicy,
    policy: &PolicySpec,
    generator: &GeneratorConfig,
    seed: u64,
    base: &SimConfig,
) -> Result<ArenaEvaluation, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = {
        let _span = mc_obs::span("pipeline.generate");
        generate_mixed_taskset(u, generator, &mut rng).map_err(CoreError::Task)?
    };
    {
        let _span = mc_obs::span("pipeline.assign");
        reseed(wcet, seed, 1).assign(&mut ts)?;
    }
    evaluate_arena_set(&ts, policy, base, seed)
}

/// The automotive counterpart of [`evaluate_arena_one_set`]: generates one
/// Bosch-calibrated task set at bound utilisation `u` from `seed`, applies
/// the WCET-assignment `wcet` policy on top of the generator's Weibull-fit
/// budgets, and races `policy` on it via [`evaluate_arena_set`].
///
/// The seed contract is identical to the synthetic arena: the `automotive`
/// campaign calls this with `seed = derive_set_seed(base, u_index,
/// replica)`, which never depends on the policy index, so every roster
/// entrant admits and simulates bit-identical task sets.
///
/// # Errors
///
/// Propagates generation, assignment, admission, and simulation errors.
pub fn evaluate_arena_automotive_one_set(
    u: f64,
    wcet: &WcetPolicy,
    policy: &PolicySpec,
    automotive: &AutomotiveConfig,
    seed: u64,
    base: &SimConfig,
) -> Result<ArenaEvaluation, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts = {
        let _span = mc_obs::span("pipeline.generate");
        generate_automotive_taskset(u, automotive, &mut rng).map_err(CoreError::Task)?
    };
    {
        let _span = mc_obs::span("pipeline.assign");
        reseed(wcet, seed, 1).assign(&mut ts)?;
    }
    evaluate_arena_set(&ts, policy, base, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_opt::{GaConfig, ProblemConfig};

    fn small_batch() -> BatchConfig {
        BatchConfig {
            task_sets: 20,
            seed: 1,
            generator: GeneratorConfig::default(),
            threads: 0,
        }
    }

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let policy = WcetPolicy::ChebyshevUniform { n: 5.0 };
        let us = [0.5, 0.8];
        let mut single = small_batch();
        single.threads = 1;
        let mut many = small_batch();
        many.threads = 7; // deliberately uneven vs. 20 sets
        let a = evaluate_policy_over_utilization(&us, &policy, &single).unwrap();
        let b = evaluate_policy_over_utilization(&us, &policy, &many).unwrap();
        assert_eq!(a, b);
        let ra =
            acceptance_ratio(&us, &policy, SchedulingApproach::BaruahDropAll, &single).unwrap();
        let rb = acceptance_ratio(&us, &policy, SchedulingApproach::BaruahDropAll, &many).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    fn ga_policy_results_are_identical_for_any_thread_count() {
        // The nested case: the batch budget splits across the per-set
        // fan-out and the GA's inner evaluation. Whatever the split,
        // every set's GA must follow the same serial RNG stream.
        let us = [0.6];
        let runs: Vec<_> = [1usize, 2, 0]
            .iter()
            .map(|&threads| {
                let batch = BatchConfig {
                    threads,
                    task_sets: 6,
                    ..small_batch()
                };
                evaluate_policy_over_utilization(&us, &fast_ga_policy(), &batch).unwrap()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    fn fast_ga_policy() -> WcetPolicy {
        WcetPolicy::ChebyshevGa {
            ga: GaConfig {
                population_size: 24,
                generations: 20,
                ..GaConfig::default()
            },
            problem: ProblemConfig::default(),
        }
    }

    #[test]
    fn one_set_evaluation_reconstructs_the_batch_mean() {
        // The seed contract external drivers (mc-exp) rely on: averaging
        // `evaluate_policy_one_set` over `derive_set_seed(seed, pi, si)`
        // reproduces `evaluate_policy_over_utilization` bit-for-bit.
        let batch = small_batch();
        let policy = WcetPolicy::ChebyshevUniform { n: 4.0 };
        let us = [0.5, 0.8];
        let expected = evaluate_policy_over_utilization(&us, &policy, &batch).unwrap();
        for (pi, &u) in us.iter().enumerate() {
            let per_set: Vec<SetEvaluation> = (0..batch.task_sets)
                .map(|si| {
                    evaluate_policy_one_set(
                        u,
                        &policy,
                        &batch.generator,
                        derive_set_seed(batch.seed, pi, si),
                        1,
                    )
                    .unwrap()
                })
                .collect();
            let n = batch.task_sets as f64;
            let mean = per_set.iter().map(|r| r.objective).sum::<f64>() / n;
            assert_eq!(mean.to_bits(), expected[pi].mean_objective.to_bits());
            let mean_p = per_set.iter().map(|r| r.p_ms).sum::<f64>() / n;
            assert_eq!(mean_p.to_bits(), expected[pi].mean_p_ms.to_bits());
        }
    }

    #[test]
    fn derived_seeds_are_spread_out() {
        let mut seen = std::collections::HashSet::new();
        for point in 0..8 {
            for set in 0..64 {
                assert!(seen.insert(derive_set_seed(7, point, set)));
            }
        }
    }

    #[test]
    fn policy_sweep_p_ms_grows_with_utilization() {
        // Fig. 3a: more HC tasks → higher P_MS at fixed n.
        let points = evaluate_policy_over_utilization(
            &[0.3, 0.6, 0.9],
            &WcetPolicy::ChebyshevUniform { n: 10.0 },
            &small_batch(),
        )
        .unwrap();
        assert!(points[0].mean_p_ms < points[2].mean_p_ms);
        // Fig. 3b: max U_LC^LO falls with utilisation.
        assert!(points[0].mean_max_u_lc_lo > points[2].mean_max_u_lc_lo);
    }

    #[test]
    fn higher_n_lowers_p_ms_at_fixed_utilization() {
        let batch = small_batch();
        let low_n = evaluate_policy_over_utilization(
            &[0.6],
            &WcetPolicy::ChebyshevUniform { n: 2.0 },
            &batch,
        )
        .unwrap();
        let high_n = evaluate_policy_over_utilization(
            &[0.6],
            &WcetPolicy::ChebyshevUniform { n: 20.0 },
            &batch,
        )
        .unwrap();
        assert!(high_n[0].mean_p_ms < low_n[0].mean_p_ms);
        assert!(high_n[0].mean_max_u_lc_lo <= low_n[0].mean_max_u_lc_lo + 1e-9);
    }

    #[test]
    fn ga_policy_beats_lambda_baselines_on_objective() {
        // The Fig. 5 headline, in miniature.
        let batch = small_batch();
        let us = [0.5, 0.8];
        let ga = evaluate_policy_over_utilization(&us, &fast_ga_policy(), &batch).unwrap();
        for baseline in crate::policy::paper_lambda_baselines() {
            let base = evaluate_policy_over_utilization(&us, &baseline, &batch).unwrap();
            for (g, b) in ga.iter().zip(&base) {
                assert!(
                    g.mean_objective >= b.mean_objective,
                    "GA {} vs {} {} at U = {}",
                    g.mean_objective,
                    baseline.name(),
                    b.mean_objective,
                    g.u_hc_hi
                );
            }
        }
    }

    #[test]
    fn acceptance_ratio_is_monotone_decreasing_in_u() {
        let points = acceptance_ratio(
            &[0.4, 0.7, 0.95],
            &WcetPolicy::ChebyshevUniform { n: 5.0 },
            SchedulingApproach::BaruahDropAll,
            &small_batch(),
        )
        .unwrap();
        assert!(points[0].ratio >= points[1].ratio);
        assert!(points[1].ratio >= points[2].ratio);
        assert_eq!(points[0].ratio, 1.0, "low utilisation accepts everything");
    }

    #[test]
    fn scheme_accepts_more_than_lambda_baseline() {
        // Fig. 6's headline: at high U_bound the Chebyshev scheme keeps a
        // higher acceptance ratio than the λ ∈ [1/4, 1] baseline.
        let batch = small_batch();
        let us = [0.85];
        let ours = acceptance_ratio(
            &us,
            &WcetPolicy::ChebyshevUniform { n: 3.0 },
            SchedulingApproach::BaruahDropAll,
            &batch,
        )
        .unwrap();
        let baseline = acceptance_ratio(
            &us,
            &WcetPolicy::LambdaRange {
                lambda_min: 0.25,
                seed: 0,
            },
            SchedulingApproach::BaruahDropAll,
            &batch,
        )
        .unwrap();
        assert!(
            ours[0].ratio >= baseline[0].ratio,
            "ours {} vs baseline {}",
            ours[0].ratio,
            baseline[0].ratio
        );
    }

    #[test]
    fn fig6_pipeline_shows_scheme_advantage_at_high_bounds() {
        // The paper's Fig. 6 shape: at a high LO-mode bound, the λ-designed
        // sets fail (hidden HI demand C_LO/λ) while the scheme-redesigned
        // ones keep passing.
        let batch = small_batch();
        let baseline = acceptance_ratio_lo_bounded(
            &[0.6, 0.95],
            None,
            SchedulingApproach::BaruahDropAll,
            (0.25, 1.0),
            &batch,
        )
        .unwrap();
        let with_scheme = acceptance_ratio_lo_bounded(
            &[0.6, 0.95],
            Some(&WcetPolicy::ChebyshevUniform { n: 3.0 }),
            SchedulingApproach::BaruahDropAll,
            (0.25, 1.0),
            &batch,
        )
        .unwrap();
        // Low bound: everything passes either way.
        assert_eq!(baseline[0].ratio, 1.0);
        assert_eq!(with_scheme[0].ratio, 1.0);
        // High bound: the scheme strictly improves acceptance.
        assert!(
            with_scheme[1].ratio > baseline[1].ratio,
            "scheme {} vs baseline {}",
            with_scheme[1].ratio,
            baseline[1].ratio
        );
    }

    #[test]
    fn liu_approach_validates_fraction() {
        let r = acceptance_ratio(
            &[0.5],
            &WcetPolicy::Acet,
            SchedulingApproach::LiuDegrade { fraction: 1.5 },
            &small_batch(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn batches_are_reproducible() {
        let batch = small_batch();
        let policy = WcetPolicy::LambdaRange {
            lambda_min: 0.125,
            seed: 0,
        };
        let a =
            acceptance_ratio(&[0.7], &policy, SchedulingApproach::BaruahDropAll, &batch).unwrap();
        let b =
            acceptance_ratio(&[0.7], &policy, SchedulingApproach::BaruahDropAll, &batch).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn misconfigured_ga_policy_fails_fast_with_a_lint_report() {
        let bad = WcetPolicy::ChebyshevGa {
            ga: GaConfig {
                generations: 0,
                tournament_size: 0,
                ..GaConfig::default()
            },
            problem: ProblemConfig::default(),
        };
        let err = evaluate_policy_over_utilization(&[0.5], &bad, &small_batch()).unwrap_err();
        match err {
            CoreError::Lint(report) => {
                // Both violations in one report, not just the first.
                assert_eq!(report.count(mc_lint::Severity::Error), 2);
            }
            other => panic!("expected CoreError::Lint, got {other:?}"),
        }
        assert!(acceptance_ratio(
            &[0.5],
            &bad,
            SchedulingApproach::BaruahDropAll,
            &small_batch()
        )
        .is_err());
        assert!(acceptance_ratio_lo_bounded(
            &[0.5],
            Some(&bad),
            SchedulingApproach::BaruahDropAll,
            (0.25, 1.0),
            &small_batch()
        )
        .is_err());
    }

    #[test]
    fn bad_generator_config_reports_every_violation() {
        let batch = BatchConfig {
            generator: GeneratorConfig {
                period_ms: (0, 10),
                p_high: 2.0,
                ..GeneratorConfig::default()
            },
            ..small_batch()
        };
        let err = evaluate_policy_over_utilization(&[0.5], &WcetPolicy::Acet, &batch).unwrap_err();
        match err {
            CoreError::Lint(report) => {
                assert_eq!(report.count(mc_lint::Severity::Error), 2)
            }
            other => panic!("expected CoreError::Lint, got {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let batch = small_batch();
        assert!(evaluate_policy_over_utilization(&[], &WcetPolicy::Acet, &batch).is_err());
        assert!(acceptance_ratio(
            &[],
            &WcetPolicy::Acet,
            SchedulingApproach::BaruahDropAll,
            &batch
        )
        .is_err());
        let bad_batch = BatchConfig {
            task_sets: 0,
            ..batch
        };
        assert!(evaluate_policy_over_utilization(&[0.5], &WcetPolicy::Acet, &bad_batch).is_err());
    }

    fn arena_sim_base() -> SimConfig {
        SimConfig::new(mc_task::time::Duration::from_secs(2))
    }

    #[test]
    fn arena_empty_set_surfaces_as_a_structured_sched_error() {
        // The mc-serve worker path relies on this being an Err, not a
        // panic: a bad unit fails, the campaign continues.
        let err = evaluate_arena_set(
            &mc_task::TaskSet::new(),
            &PolicySpec::EdfVdDropAll,
            &arena_sim_base(),
            7,
        )
        .unwrap_err();
        assert_eq!(err, CoreError::Sched(mc_sched::SchedError::EmptyTaskSet));
    }

    #[test]
    fn arena_evaluation_is_reproducible_and_covers_the_roster() {
        let gen = GeneratorConfig::default();
        let wcet = WcetPolicy::ChebyshevUniform { n: 3.0 };
        for policy in PolicySpec::arena_roster() {
            let a =
                evaluate_arena_one_set(0.7, &wcet, &policy, &gen, 99, &arena_sim_base()).unwrap();
            let b =
                evaluate_arena_one_set(0.7, &wcet, &policy, &gen, 99, &arena_sim_base()).unwrap();
            assert_eq!(a, b, "{} not reproducible", policy.name());
            assert!((0.0..=1.0).contains(&a.lc_qos), "{}", policy.name());
            assert!((0.0..=1.0).contains(&a.schedulable));
        }
    }

    #[test]
    fn arena_policies_see_identical_task_sets_at_one_seed() {
        // The paired-comparison contract: the set a policy is judged on
        // depends only on (u, wcet, generator, seed) — never the policy —
        // so the service-level column is the only legitimate source of
        // cross-policy QoS differences on an admitted, switch-free run.
        let gen = GeneratorConfig::default();
        let wcet = WcetPolicy::ChebyshevUniform { n: 3.0 };
        let seed = derive_set_seed(5, 2, 11);
        let drop = evaluate_arena_one_set(
            0.5,
            &wcet,
            &PolicySpec::EdfVdDropAll,
            &gen,
            seed,
            &arena_sim_base(),
        )
        .unwrap();
        let degrade = evaluate_arena_one_set(
            0.5,
            &wcet,
            &PolicySpec::LiuDegrade { fraction: 0.5 },
            &gen,
            seed,
            &arena_sim_base(),
        )
        .unwrap();
        // Same sets, same sampled execution times ⇒ same switch behaviour.
        assert_eq!(drop.switch_rate.to_bits(), degrade.switch_rate.to_bits());
    }

    #[test]
    fn automotive_arena_is_paired_and_reproducible() {
        // The automotive campaign inherits the synthetic arena's seed
        // contract: the generated set depends only on (u, wcet, config,
        // seed), so roster entrants race on bit-identical workloads.
        let cfg = AutomotiveConfig {
            runnables: 120,
            ..AutomotiveConfig::default()
        };
        let wcet = WcetPolicy::ChebyshevUniform { n: 3.0 };
        let seed = derive_set_seed(23, 1, 4);
        let base = SimConfig::new(mc_task::time::Duration::from_secs(1));
        let drop = evaluate_arena_automotive_one_set(
            0.6,
            &wcet,
            &PolicySpec::EdfVdDropAll,
            &cfg,
            seed,
            &base,
        )
        .unwrap();
        let again = evaluate_arena_automotive_one_set(
            0.6,
            &wcet,
            &PolicySpec::EdfVdDropAll,
            &cfg,
            seed,
            &base,
        )
        .unwrap();
        assert_eq!(drop, again, "automotive arena unit not reproducible");
        // The one-set evaluator is exactly the generate → assign →
        // evaluate composition, so any policy fed the same seed races on
        // the bit-identical task set the manual pipeline produces.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ts = generate_automotive_taskset(0.6, &cfg, &mut rng).unwrap();
        reseed(&wcet, seed, 1).assign(&mut ts).unwrap();
        let manual = evaluate_arena_set(&ts, &PolicySpec::EdfVdDropAll, &base, seed).unwrap();
        assert_eq!(drop, manual, "one-set wrapper diverged from composition");
        assert!((0.0..=1.0).contains(&drop.lc_qos));
        // An invalid config surfaces as a structured Task error, not a panic.
        let bad = AutomotiveConfig {
            runnables: 3,
            ..AutomotiveConfig::default()
        };
        let err = evaluate_arena_automotive_one_set(
            0.6,
            &wcet,
            &PolicySpec::EdfVdDropAll,
            &bad,
            seed,
            &base,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Task(_)), "{err:?}");
    }
}
