//! Optimistic-WCET assignment policies.
//!
//! A [`WcetPolicy`] decides each HC task's `C_LO`. The paper's contribution
//! is the Chebyshev family (uniform `n` or GA-optimised per-task `nᵢ`); the
//! baselines are the λ-fraction family used by the state of the art it
//! compares against (`C_LO = λ · WCET_pes`, with λ either fixed — Gu, Guo,
//! Liu — or drawn per task from `[λ_min, 1]` — Baruah's experimental setup).

use crate::CoreError;
use mc_opt::{GaConfig, ProblemConfig, WcetProblem};
use mc_task::time::Duration;
use mc_task::TaskSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A policy for choosing optimistic WCETs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WcetPolicy {
    /// `C_LO = ACET` (`n = 0`): the motivational strawman that switches
    /// mode on roughly half of all jobs.
    Acet,
    /// `C_LO = ACET + n·σ` with one shared factor (the paper's Fig. 2/3
    /// setting).
    ChebyshevUniform {
        /// The shared Chebyshev factor.
        n: f64,
    },
    /// Per-task factors solved by the genetic algorithm (the paper's full
    /// scheme).
    ChebyshevGa {
        /// GA hyper-parameters.
        ga: GaConfig,
        /// Search-space configuration.
        problem: ProblemConfig,
    },
    /// `C_LO = λ · WCET_pes` with one shared fraction.
    LambdaFraction {
        /// The shared fraction λ ∈ (0, 1].
        lambda: f64,
    },
    /// `C_LO = λᵢ · WCET_pes` with per-task λᵢ drawn uniformly from
    /// `[lambda_min, 1]` — Baruah's experimental setup (`λ ∈ [1/4, 1]`,
    /// `[1/8, 1]`, …). Deterministic per seed.
    LambdaRange {
        /// Lower end of the fraction range, in (0, 1].
        lambda_min: f64,
        /// Draw seed.
        seed: u64,
    },
}

impl WcetPolicy {
    /// A short, stable name for tables and reports.
    pub fn name(&self) -> String {
        match self {
            WcetPolicy::Acet => "acet".into(),
            WcetPolicy::ChebyshevUniform { n } => format!("chebyshev-n{n}"),
            WcetPolicy::ChebyshevGa { .. } => "chebyshev-ga".into(),
            WcetPolicy::LambdaFraction { lambda } => format!("lambda-{lambda:.4}"),
            WcetPolicy::LambdaRange { lambda_min, .. } => {
                format!("lambda-range-[{lambda_min:.4},1]")
            }
        }
    }

    fn validate(&self) -> Result<(), CoreError> {
        let err = |reason| Err(CoreError::InvalidPolicy { reason });
        match self {
            WcetPolicy::Acet | WcetPolicy::ChebyshevGa { .. } => Ok(()),
            WcetPolicy::ChebyshevUniform { n } => {
                if !n.is_finite() || *n < 0.0 {
                    return err("chebyshev factor must be finite and non-negative");
                }
                Ok(())
            }
            WcetPolicy::LambdaFraction { lambda } => {
                if !lambda.is_finite() || *lambda <= 0.0 || *lambda > 1.0 {
                    return err("lambda must be in (0, 1]");
                }
                Ok(())
            }
            WcetPolicy::LambdaRange { lambda_min, .. } => {
                if !lambda_min.is_finite() || *lambda_min <= 0.0 || *lambda_min > 1.0 {
                    return err("lambda_min must be in (0, 1]");
                }
                Ok(())
            }
        }
    }

    /// Assigns every HC task's `C_LO` in place.
    ///
    /// All Chebyshev budgets are clamped into `[ACET, WCET_pes]` (Eq. 9);
    /// λ budgets are clamped into `[1 ns, WCET_pes]`. Rounding is upward
    /// (conservative).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPolicy`] for out-of-range parameters,
    /// [`CoreError::MissingProfile`] when a Chebyshev policy meets an HC
    /// task without a profile, and propagates optimiser errors for
    /// [`WcetPolicy::ChebyshevGa`].
    pub fn assign(&self, ts: &mut TaskSet) -> Result<(), CoreError> {
        self.validate()?;
        match self {
            WcetPolicy::Acet => assign_chebyshev_uniform(ts, 0.0),
            WcetPolicy::ChebyshevUniform { n } => assign_chebyshev_uniform(ts, *n),
            WcetPolicy::ChebyshevGa { ga, problem } => {
                let p = WcetProblem::from_taskset(ts, *problem).map_err(CoreError::Opt)?;
                let sol = p.solve_ga(ga).map_err(CoreError::Opt)?;
                p.apply(ts, &sol.factors).map_err(CoreError::Opt)
            }
            WcetPolicy::LambdaFraction { lambda } => {
                let ids: Vec<_> = ts.hc_tasks().map(|t| t.id()).collect();
                for id in ids {
                    let task = ts.get_mut(id).expect("id from iteration");
                    let c_lo = lambda_budget(task.c_hi(), *lambda);
                    task.set_c_lo(c_lo).map_err(CoreError::Task)?;
                }
                Ok(())
            }
            WcetPolicy::LambdaRange { lambda_min, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let ids: Vec<_> = ts.hc_tasks().map(|t| t.id()).collect();
                for id in ids {
                    let lambda = if *lambda_min >= 1.0 {
                        1.0
                    } else {
                        rng.random_range(*lambda_min..=1.0)
                    };
                    let task = ts.get_mut(id).expect("id from iteration");
                    let c_lo = lambda_budget(task.c_hi(), lambda);
                    task.set_c_lo(c_lo).map_err(CoreError::Task)?;
                }
                Ok(())
            }
        }
    }
}

fn assign_chebyshev_uniform(ts: &mut TaskSet, n: f64) -> Result<(), CoreError> {
    let ids: Vec<_> = ts.hc_tasks().map(|t| t.id()).collect();
    for id in ids {
        let task = ts.get_mut(id).expect("id from iteration");
        let profile = *task.profile().ok_or(CoreError::MissingProfile { id })?;
        let level = profile.level(profile.clamp_factor(n));
        let c_lo = Duration::try_from_nanos_f64_ceil(level)
            .unwrap_or(task.c_hi())
            .clamp(Duration::from_nanos(1), task.c_hi());
        task.set_c_lo(c_lo).map_err(CoreError::Task)?;
    }
    Ok(())
}

fn lambda_budget(c_hi: Duration, lambda: f64) -> Duration {
    c_hi.mul_f64(lambda).clamp(Duration::from_nanos(1), c_hi)
}

/// The λ values the paper's Fig. 4 compares against (from its refs.
/// \[1\], \[4\], \[12\]).
pub fn paper_lambda_baselines() -> Vec<WcetPolicy> {
    vec![
        WcetPolicy::LambdaRange {
            lambda_min: 1.0 / 4.0,
            seed: 0,
        },
        WcetPolicy::LambdaRange {
            lambda_min: 1.0 / 8.0,
            seed: 0,
        },
        WcetPolicy::LambdaRange {
            lambda_min: 1.0 / 32.0,
            seed: 0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::design_metrics;
    use mc_task::{Criticality, ExecutionProfile, McTask, TaskId};

    fn sample_set() -> TaskSet {
        let mk = |id: u32, acet_ms: f64, sigma_ms: f64, c_hi_ms: u64, p_ms: u64| {
            McTask::builder(TaskId::new(id))
                .criticality(Criticality::Hi)
                .period(Duration::from_millis(p_ms))
                .c_lo(Duration::from_millis(c_hi_ms))
                .c_hi(Duration::from_millis(c_hi_ms))
                .profile(
                    ExecutionProfile::new(acet_ms * 1e6, sigma_ms * 1e6, c_hi_ms as f64 * 1e6)
                        .unwrap(),
                )
                .build()
                .unwrap()
        };
        TaskSet::from_tasks(vec![
            mk(0, 3.0, 1.0, 40, 100),
            mk(1, 5.0, 0.5, 30, 200),
            McTask::builder(TaskId::new(2))
                .period(Duration::from_millis(100))
                .c_lo(Duration::from_millis(10))
                .build()
                .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn acet_policy_sets_budget_to_acet() {
        let mut ts = sample_set();
        WcetPolicy::Acet.assign(&mut ts).unwrap();
        assert_eq!(
            ts.get(TaskId::new(0)).unwrap().c_lo(),
            Duration::from_millis(3)
        );
        assert_eq!(
            ts.get(TaskId::new(1)).unwrap().c_lo(),
            Duration::from_millis(5)
        );
        let m = design_metrics(&ts).unwrap();
        assert_eq!(m.p_ms, 1.0, "n = 0 bound is vacuous");
    }

    #[test]
    fn chebyshev_uniform_sets_acet_plus_n_sigma() {
        let mut ts = sample_set();
        WcetPolicy::ChebyshevUniform { n: 3.0 }
            .assign(&mut ts)
            .unwrap();
        assert_eq!(
            ts.get(TaskId::new(0)).unwrap().c_lo(),
            Duration::from_millis(6) // 3 + 3·1
        );
        assert_eq!(
            ts.get(TaskId::new(1)).unwrap().c_lo(),
            Duration::from_micros(6_500) // 5 + 3·0.5
        );
        let m = design_metrics(&ts).unwrap();
        // Two tasks at n = 3: P_MS = 1 − 0.9² = 0.19.
        assert!((m.p_ms - 0.19).abs() < 1e-9);
    }

    #[test]
    fn chebyshev_uniform_clamps_at_wcet_pes() {
        let mut ts = sample_set();
        WcetPolicy::ChebyshevUniform { n: 1e6 }
            .assign(&mut ts)
            .unwrap();
        for t in ts.hc_tasks() {
            assert_eq!(t.c_lo(), t.c_hi());
        }
    }

    #[test]
    fn lambda_fraction_scales_c_hi() {
        let mut ts = sample_set();
        WcetPolicy::LambdaFraction { lambda: 0.25 }
            .assign(&mut ts)
            .unwrap();
        assert_eq!(
            ts.get(TaskId::new(0)).unwrap().c_lo(),
            Duration::from_millis(10)
        );
        assert_eq!(
            ts.get(TaskId::new(1)).unwrap().c_lo(),
            Duration::from_micros(7_500)
        );
    }

    #[test]
    fn lambda_range_draws_within_range_and_is_deterministic() {
        let mut a = sample_set();
        let mut b = sample_set();
        let policy = WcetPolicy::LambdaRange {
            lambda_min: 0.25,
            seed: 7,
        };
        policy.assign(&mut a).unwrap();
        policy.assign(&mut b).unwrap();
        assert_eq!(a, b);
        for t in a.hc_tasks() {
            let lambda = t.c_lo().as_nanos() as f64 / t.c_hi().as_nanos() as f64;
            assert!((0.25..=1.0 + 1e-9).contains(&lambda), "lambda {lambda}");
        }
        let mut c = sample_set();
        WcetPolicy::LambdaRange {
            lambda_min: 0.25,
            seed: 8,
        }
        .assign(&mut c)
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn ga_policy_produces_schedulable_high_objective_design() {
        let mut ts = sample_set();
        WcetPolicy::ChebyshevGa {
            ga: GaConfig::default(),
            problem: ProblemConfig::default(),
        }
        .assign(&mut ts)
        .unwrap();
        let m = design_metrics(&ts).unwrap();
        assert!(m.schedulable);
        assert!(m.objective > 0.3, "objective {}", m.objective);
        assert!(m.p_ms < 0.5, "p_ms {}", m.p_ms);
    }

    #[test]
    fn policies_validate_parameters() {
        let mut ts = sample_set();
        assert!(WcetPolicy::ChebyshevUniform { n: -1.0 }
            .assign(&mut ts)
            .is_err());
        assert!(WcetPolicy::LambdaFraction { lambda: 0.0 }
            .assign(&mut ts)
            .is_err());
        assert!(WcetPolicy::LambdaFraction { lambda: 1.5 }
            .assign(&mut ts)
            .is_err());
        assert!(WcetPolicy::LambdaRange {
            lambda_min: 0.0,
            seed: 0
        }
        .assign(&mut ts)
        .is_err());
    }

    #[test]
    fn chebyshev_requires_profiles_but_lambda_does_not() {
        let bare = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(40))
            .c_hi(Duration::from_millis(40))
            .build()
            .unwrap();
        let mut ts = TaskSet::from_tasks(vec![bare]).unwrap();
        assert!(matches!(
            WcetPolicy::ChebyshevUniform { n: 1.0 }.assign(&mut ts),
            Err(CoreError::MissingProfile { .. })
        ));
        WcetPolicy::LambdaFraction { lambda: 0.5 }
            .assign(&mut ts)
            .unwrap();
        assert_eq!(
            ts.get(TaskId::new(0)).unwrap().c_lo(),
            Duration::from_millis(20)
        );
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(WcetPolicy::Acet.name(), "acet");
        assert_eq!(
            WcetPolicy::ChebyshevUniform { n: 5.0 }.name(),
            "chebyshev-n5"
        );
        assert_eq!(
            WcetPolicy::LambdaFraction { lambda: 0.25 }.name(),
            "lambda-0.2500"
        );
        assert!(WcetPolicy::LambdaRange {
            lambda_min: 0.125,
            seed: 0
        }
        .name()
        .contains("0.1250"));
    }

    #[test]
    fn paper_baselines_cover_three_ranges() {
        let baselines = paper_lambda_baselines();
        assert_eq!(baselines.len(), 3);
        for b in &baselines {
            let mut ts = sample_set();
            b.assign(&mut ts).unwrap();
        }
    }
}
