//! Criticality levels.
//!
//! The paper targets dual-criticality systems (`ζᵢ ∈ {LC, HC}`) but grounds
//! them in the DO-178B avionics standard's five design-assurance levels
//! (A–E). [`Criticality`] is the dual-criticality type used throughout the
//! workspace; [`Do178bLevel`] provides the standard's levels and a
//! conventional mapping onto the dual model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dual-criticality level of a task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Criticality {
    /// Low criticality (LC): may be degraded or dropped in HI mode.
    #[default]
    Lo,
    /// High criticality (HC): must always meet its deadline.
    Hi,
}

impl Criticality {
    /// True for high-criticality tasks.
    pub const fn is_high(self) -> bool {
        matches!(self, Criticality::Hi)
    }

    /// True for low-criticality tasks.
    pub const fn is_low(self) -> bool {
        matches!(self, Criticality::Lo)
    }

    /// Both levels, lowest first.
    pub const ALL: [Criticality; 2] = [Criticality::Lo, Criticality::Hi];
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criticality::Lo => write!(f, "LC"),
            Criticality::Hi => write!(f, "HC"),
        }
    }
}

/// DO-178B design assurance levels, from catastrophic (A) to no effect (E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Do178bLevel {
    /// Catastrophic failure condition.
    A,
    /// Hazardous/severe-major failure condition.
    B,
    /// Major failure condition.
    C,
    /// Minor failure condition.
    D,
    /// No effect on operational capability.
    E,
}

impl Do178bLevel {
    /// All five levels, most critical first.
    pub const ALL: [Do178bLevel; 5] = [
        Do178bLevel::A,
        Do178bLevel::B,
        Do178bLevel::C,
        Do178bLevel::D,
        Do178bLevel::E,
    ];

    /// Conventional collapse onto the dual-criticality model used by the
    /// paper: levels A and B (whose failure is catastrophic or hazardous)
    /// become [`Criticality::Hi`]; C, D and E become [`Criticality::Lo`].
    pub const fn to_criticality(self) -> Criticality {
        match self {
            Do178bLevel::A | Do178bLevel::B => Criticality::Hi,
            Do178bLevel::C | Do178bLevel::D | Do178bLevel::E => Criticality::Lo,
        }
    }
}

impl fmt::Display for Do178bLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Do178bLevel::A => 'A',
            Do178bLevel::B => 'B',
            Do178bLevel::C => 'C',
            Do178bLevel::D => 'D',
            Do178bLevel::E => 'E',
        };
        write!(f, "DAL-{c}")
    }
}

impl From<Do178bLevel> for Criticality {
    fn from(level: Do178bLevel) -> Criticality {
        level.to_criticality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_exclusive() {
        assert!(Criticality::Hi.is_high());
        assert!(!Criticality::Hi.is_low());
        assert!(Criticality::Lo.is_low());
        assert!(!Criticality::Lo.is_high());
    }

    #[test]
    fn ordering_puts_low_first() {
        assert!(Criticality::Lo < Criticality::Hi);
        assert_eq!(Criticality::ALL[0], Criticality::Lo);
    }

    #[test]
    fn default_is_low() {
        assert_eq!(Criticality::default(), Criticality::Lo);
    }

    #[test]
    fn display_matches_paper_terminology() {
        assert_eq!(Criticality::Lo.to_string(), "LC");
        assert_eq!(Criticality::Hi.to_string(), "HC");
        assert_eq!(Do178bLevel::A.to_string(), "DAL-A");
    }

    #[test]
    fn do178b_mapping_splits_at_b_c_boundary() {
        assert_eq!(Do178bLevel::A.to_criticality(), Criticality::Hi);
        assert_eq!(Do178bLevel::B.to_criticality(), Criticality::Hi);
        assert_eq!(Do178bLevel::C.to_criticality(), Criticality::Lo);
        assert_eq!(Do178bLevel::D.to_criticality(), Criticality::Lo);
        assert_eq!(Do178bLevel::E.to_criticality(), Criticality::Lo);
    }

    #[test]
    fn from_impl_matches_method() {
        for level in Do178bLevel::ALL {
            assert_eq!(Criticality::from(level), level.to_criticality());
        }
    }

    #[test]
    fn do178b_levels_order_most_critical_first() {
        for pair in Do178bLevel::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
