//! Mixed-criticality task model for the `chebymc` workspace.
//!
//! Implements §III of *"Improving the Timing Behaviour of Mixed-Criticality
//! Systems Using Chebyshev's Theorem"* (DATE 2021): dual-criticality periodic
//! tasks `τᵢ = (ζᵢ, Cᵢ_LO, Cᵢ_HI, Pᵢ, Dᵢ)` with implicit deadlines, plus the
//! synthetic task-set generator from §V.
//!
//! * [`time`] — integer-nanosecond [`time::Duration`] / [`time::Instant`]
//!   newtypes (no float drift in simulation).
//! * [`criticality`] — dual levels plus the DO-178B A–E scale.
//! * [`task`] — the validated [`task::McTask`] type and its builder.
//! * [`profile`] — per-task `(ACET, σ, WCET_pes)` measurements.
//! * [`taskset`] — collections with the paper's `U_l^k` aggregates.
//! * [`generate`] — the §V synthetic workload generator and UUniFast.
//! * [`automotive`] — the Bosch-calibrated automotive workload family
//!   (period/share bins, factor matrices, fitted Weibull execution times).
//!
//! # Example
//!
//! ```
//! use mc_task::generate::{generate_mixed_taskset, GeneratorConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), mc_task::TaskError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let ts = generate_mixed_taskset(0.7, &GeneratorConfig::default(), &mut rng)?;
//! assert!(((ts.u_hc_hi() + ts.u_lc_lo()) - 0.7).abs() < 5e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod automotive;
pub mod criticality;
pub mod generate;
pub mod multi;
pub mod profile;
pub mod task;
pub mod taskset;
pub mod time;
pub mod workload;

use std::error::Error;
use std::fmt;

pub use criticality::Criticality;
pub use profile::{ExecutionProfile, WeibullFit};
pub use task::{McTask, TaskId};
pub use taskset::TaskSet;

/// Errors produced while constructing or generating tasks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaskError {
    /// A required builder field was never set.
    MissingField {
        /// The task being built.
        id: TaskId,
        /// The missing field's name.
        field: &'static str,
    },
    /// WCET values violate `0 < c_lo ≤ c_hi ≤ deadline`.
    InvalidWcet {
        /// The offending task.
        id: TaskId,
        /// What was violated.
        reason: &'static str,
    },
    /// Period/deadline values violate `0 < deadline ≤ period`.
    InvalidTiming {
        /// The offending task.
        id: TaskId,
        /// What was violated.
        reason: &'static str,
    },
    /// An execution profile violates `0 < acet ≤ wcet_pes`, `σ ≥ 0`, or its
    /// attachment rules.
    InvalidProfile {
        /// What was violated.
        reason: &'static str,
    },
    /// Low-criticality tasks have a single, fixed WCET.
    LcBudgetIsFixed {
        /// The offending task.
        id: TaskId,
    },
    /// Two tasks in a set share an identifier.
    DuplicateTaskId {
        /// The duplicated identifier.
        id: TaskId,
    },
    /// The synthetic generator was configured inconsistently.
    InvalidGeneratorConfig {
        /// What was violated.
        reason: &'static str,
    },
    /// A bounded discard-and-redraw loop exhausted its retry budget
    /// without producing a feasible draw.
    RetriesExhausted {
        /// The draw that kept getting discarded.
        what: &'static str,
        /// The retry budget that was exhausted.
        retries: usize,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::MissingField { id, field } => {
                write!(f, "task {id} is missing required field `{field}`")
            }
            TaskError::InvalidWcet { id, reason } => {
                write!(f, "task {id} has invalid WCETs: {reason}")
            }
            TaskError::InvalidTiming { id, reason } => {
                write!(f, "task {id} has invalid timing parameters: {reason}")
            }
            TaskError::InvalidProfile { reason } => {
                write!(f, "invalid execution profile: {reason}")
            }
            TaskError::LcBudgetIsFixed { id } => {
                write!(f, "task {id} is low-criticality; its budget is fixed")
            }
            TaskError::DuplicateTaskId { id } => {
                write!(f, "task id {id} already exists in the set")
            }
            TaskError::InvalidGeneratorConfig { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
            TaskError::RetriesExhausted { what, retries } => {
                write!(f, "no feasible {what} after {retries} retries")
            }
        }
    }
}

impl Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TaskError::MissingField {
            id: TaskId::new(3),
            field: "period",
        };
        assert!(e.to_string().contains("τ3"));
        assert!(e.to_string().contains("period"));
        let e = TaskError::DuplicateTaskId { id: TaskId::new(1) };
        assert!(e.to_string().contains("already exists"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TaskError>();
    }
}
