//! Multi-level criticality task model (the paper's future-work extension).
//!
//! The paper treats dual-criticality systems but notes (§I, §VI) that the
//! scheme "could be used for MC systems with several criticality levels".
//! This module provides the Vestal-style generalisation: `L` system modes,
//! each task `τᵢ` has a criticality level `ℓᵢ ∈ 0..L` (higher is more
//! critical, e.g. DO-178B E…A collapse onto 0…4) and a non-decreasing
//! budget vector `Cᵢ(0) ≤ Cᵢ(1) ≤ … ≤ Cᵢ(ℓᵢ)`.
//!
//! Operationally: the system starts in mode 0; in mode `k` every task with
//! `ℓᵢ < k` is dropped and every remaining task runs with budget `Cᵢ(k)`;
//! when a task exhausts `Cᵢ(k)` without finishing, the system escalates to
//! mode `k+1`.

use crate::profile::ExecutionProfile;
use crate::task::TaskId;
use crate::time::Duration;
use crate::TaskError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A periodic task in an `L`-level system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTask {
    id: TaskId,
    name: String,
    level: usize,
    budgets: Vec<Duration>,
    period: Duration,
    profile: Option<ExecutionProfile>,
}

impl MultiTask {
    /// Creates a task with criticality `level` and budgets
    /// `budgets[0..=level]` (one per mode it survives in).
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidWcet`] unless there are exactly
    /// `level + 1` budgets, they are non-zero, non-decreasing, and fit in
    /// the period; [`TaskError::InvalidTiming`] for a zero period; and
    /// [`TaskError::InvalidProfile`] when an attached profile disagrees
    /// with the top budget.
    pub fn new(
        id: TaskId,
        name: impl Into<String>,
        level: usize,
        budgets: Vec<Duration>,
        period: Duration,
        profile: Option<ExecutionProfile>,
    ) -> Result<Self, TaskError> {
        if period.is_zero() {
            return Err(TaskError::InvalidTiming {
                id,
                reason: "period must be non-zero",
            });
        }
        if budgets.len() != level + 1 {
            return Err(TaskError::InvalidWcet {
                id,
                reason: "a level-l task needs exactly l+1 budgets",
            });
        }
        for pair in budgets.windows(2) {
            if pair[0] > pair[1] {
                return Err(TaskError::InvalidWcet {
                    id,
                    reason: "budgets must be non-decreasing across modes",
                });
            }
        }
        if budgets[0].is_zero() {
            return Err(TaskError::InvalidWcet {
                id,
                reason: "budgets must be non-zero",
            });
        }
        if *budgets.last().expect("non-empty by construction") > period {
            return Err(TaskError::InvalidWcet {
                id,
                reason: "the top budget must fit in the period",
            });
        }
        if let Some(p) = &profile {
            let top = budgets.last().expect("non-empty").as_nanos() as f64;
            if (p.wcet_pes() - top).abs() > 1.0 {
                return Err(TaskError::InvalidProfile {
                    reason: "profile wcet_pes must match the top budget",
                });
            }
        }
        Ok(MultiTask {
            id,
            name: name.into(),
            level,
            budgets,
            period,
            profile,
        })
    }

    /// Task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Criticality level (0 = lowest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The budget used in mode `mode`, or `None` when the task is dropped
    /// there (`mode > level`).
    pub fn budget(&self, mode: usize) -> Option<Duration> {
        self.budgets.get(mode).copied()
    }

    /// All budgets, mode 0 first.
    pub fn budgets(&self) -> &[Duration] {
        &self.budgets
    }

    /// Period (= implicit deadline).
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Execution profile, when attached.
    pub fn profile(&self) -> Option<&ExecutionProfile> {
        self.profile.as_ref()
    }

    /// Utilisation in mode `mode` (`0` when dropped there).
    pub fn utilization(&self, mode: usize) -> f64 {
        match self.budget(mode) {
            Some(c) => c.ratio(self.period),
            None => 0.0,
        }
    }

    /// Replaces the budgets below the task's own level (the knob the
    /// multi-level scheme turns); the top budget is fixed.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidWcet`] when the count or ordering is
    /// wrong.
    pub fn set_lower_budgets(&mut self, lower: &[Duration]) -> Result<(), TaskError> {
        if lower.len() != self.level {
            return Err(TaskError::InvalidWcet {
                id: self.id,
                reason: "need exactly `level` lower budgets",
            });
        }
        let mut budgets = lower.to_vec();
        budgets.push(*self.budgets.last().expect("non-empty"));
        for pair in budgets.windows(2) {
            if pair[0] > pair[1] {
                return Err(TaskError::InvalidWcet {
                    id: self.id,
                    reason: "budgets must be non-decreasing across modes",
                });
            }
        }
        if budgets[0].is_zero() {
            return Err(TaskError::InvalidWcet {
                id: self.id,
                reason: "budgets must be non-zero",
            });
        }
        self.budgets = budgets;
        Ok(())
    }
}

impl fmt::Display for MultiTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [L{}] C=(", self.id, self.level)?;
        for (i, b) in self.budgets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ") P={}", self.period)
    }
}

/// A set of multi-level tasks sharing one `L`-level platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiTaskSet {
    levels: usize,
    tasks: Vec<MultiTask>,
}

impl MultiTaskSet {
    /// Creates an empty set for a platform with `levels` criticality
    /// levels.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when `levels < 2`
    /// (one level is a plain real-time system).
    pub fn new(levels: usize) -> Result<Self, TaskError> {
        if levels < 2 {
            return Err(TaskError::InvalidGeneratorConfig {
                reason: "a mixed-criticality platform needs at least 2 levels",
            });
        }
        Ok(MultiTaskSet {
            levels,
            tasks: Vec::new(),
        })
    }

    /// Number of platform levels `L`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Adds a task.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DuplicateTaskId`] for a duplicate id and
    /// [`TaskError::InvalidWcet`] when the task's level is outside the
    /// platform.
    pub fn push(&mut self, task: MultiTask) -> Result<(), TaskError> {
        if task.level >= self.levels {
            return Err(TaskError::InvalidWcet {
                id: task.id,
                reason: "task level exceeds the platform's levels",
            });
        }
        if self.tasks.iter().any(|t| t.id == task.id) {
            return Err(TaskError::DuplicateTaskId { id: task.id });
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the set has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, MultiTask> {
        self.tasks.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, MultiTask> {
        self.tasks.iter_mut()
    }

    /// Total utilisation, in mode `mode`, of tasks whose criticality level
    /// is exactly `level` (0 for tasks dropped in that mode).
    pub fn utilization_of_level(&self, level: usize, mode: usize) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.level == level)
            .map(|t| t.utilization(mode))
            .sum()
    }

    /// Total utilisation, in mode `mode`, of tasks with level ≥ `min_level`.
    pub fn utilization_at_least(&self, min_level: usize, mode: usize) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.level >= min_level)
            .map(|t| t.utilization(mode))
            .sum()
    }

    /// Collapses the set onto the dual-criticality model around the mode
    /// pair `(k, k+1)`: tasks of level `k` become LC (budget `C(k)`), tasks
    /// of level `> k` become HC with `C_LO = C(k)` and `C_HI = C(k+1)`.
    /// Tasks below level `k` are already dropped. Returns
    /// `(u_hc_lo, u_hc_hi, u_lc_lo)` — the inputs to the paper's Eq. 8.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when
    /// `k + 1 ≥ levels`.
    pub fn reduce_to_dual(&self, k: usize) -> Result<(f64, f64, f64), TaskError> {
        if k + 1 >= self.levels {
            return Err(TaskError::InvalidGeneratorConfig {
                reason: "mode pair exceeds the platform's levels",
            });
        }
        let u_lc_lo = self.utilization_of_level(k, k);
        let u_hc_lo = self.utilization_at_least(k + 1, k);
        let u_hc_hi = self.utilization_at_least(k + 1, k + 1);
        Ok((u_hc_lo, u_hc_hi, u_lc_lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn task(id: u32, level: usize, budgets_ms: &[u64], period_ms: u64) -> MultiTask {
        MultiTask::new(
            TaskId::new(id),
            format!("t{id}"),
            level,
            budgets_ms.iter().map(|&b| ms(b)).collect(),
            ms(period_ms),
            None,
        )
        .unwrap()
    }

    /// A 3-level system used across tests.
    fn tri_level_set() -> MultiTaskSet {
        let mut ts = MultiTaskSet::new(3).unwrap();
        ts.push(task(0, 2, &[5, 10, 40], 100)).unwrap(); // top criticality
        ts.push(task(1, 1, &[10, 20], 100)).unwrap(); // middle
        ts.push(task(2, 0, &[20], 100)).unwrap(); // lowest
        ts
    }

    #[test]
    fn construction_validates_budget_vector() {
        // Wrong count.
        assert!(MultiTask::new(TaskId::new(0), "", 2, vec![ms(1), ms(2)], ms(10), None).is_err());
        // Decreasing budgets.
        assert!(MultiTask::new(TaskId::new(0), "", 1, vec![ms(5), ms(3)], ms(10), None).is_err());
        // Zero first budget.
        assert!(MultiTask::new(
            TaskId::new(0),
            "",
            1,
            vec![Duration::ZERO, ms(3)],
            ms(10),
            None
        )
        .is_err());
        // Top budget beyond the period.
        assert!(MultiTask::new(TaskId::new(0), "", 1, vec![ms(5), ms(15)], ms(10), None).is_err());
        // Zero period.
        assert!(MultiTask::new(TaskId::new(0), "", 0, vec![ms(1)], Duration::ZERO, None).is_err());
        // Valid.
        let t = task(0, 1, &[2, 8], 10);
        assert_eq!(t.level(), 1);
        assert_eq!(t.budget(0), Some(ms(2)));
        assert_eq!(t.budget(1), Some(ms(8)));
        assert_eq!(t.budget(2), None);
    }

    #[test]
    fn utilization_per_mode_drops_below_level() {
        let t = task(0, 1, &[10, 20], 100);
        assert!((t.utilization(0) - 0.1).abs() < 1e-12);
        assert!((t.utilization(1) - 0.2).abs() < 1e-12);
        assert_eq!(t.utilization(2), 0.0);
    }

    #[test]
    fn set_lower_budgets_respects_ordering() {
        let mut t = task(0, 2, &[5, 10, 40], 100);
        t.set_lower_budgets(&[ms(3), ms(12)]).unwrap();
        assert_eq!(t.budgets(), &[ms(3), ms(12), ms(40)]);
        // Exceeding the fixed top budget is rejected.
        assert!(t.set_lower_budgets(&[ms(3), ms(50)]).is_err());
        // Wrong count.
        assert!(t.set_lower_budgets(&[ms(3)]).is_err());
        // Decreasing.
        assert!(t.set_lower_budgets(&[ms(12), ms(3)]).is_err());
        // Zero.
        assert!(t.set_lower_budgets(&[Duration::ZERO, ms(12)]).is_err());
    }

    #[test]
    fn platform_validates_levels_and_ids() {
        assert!(MultiTaskSet::new(1).is_err());
        let mut ts = MultiTaskSet::new(2).unwrap();
        ts.push(task(0, 1, &[1, 2], 10)).unwrap();
        // Duplicate id.
        assert!(ts.push(task(0, 0, &[1], 10)).is_err());
        // Level out of range.
        assert!(ts.push(task(1, 2, &[1, 2, 3], 10)).is_err());
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn aggregate_utilizations() {
        let ts = tri_level_set();
        assert!((ts.utilization_of_level(0, 0) - 0.2).abs() < 1e-12);
        assert!((ts.utilization_of_level(1, 0) - 0.1).abs() < 1e-12);
        assert!((ts.utilization_of_level(2, 0) - 0.05).abs() < 1e-12);
        // In mode 1 the level-0 task is dropped.
        assert_eq!(ts.utilization_of_level(0, 1), 0.0);
        assert!((ts.utilization_at_least(1, 0) - 0.15).abs() < 1e-12);
        assert!((ts.utilization_at_least(1, 1) - 0.3).abs() < 1e-12);
        assert!((ts.utilization_at_least(2, 2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dual_reduction_matches_hand_computation() {
        let ts = tri_level_set();
        // Pair (0, 1): LC = level-0 task (u = 0.2);
        // HC = levels 1,2 with C(0) (0.1 + 0.05) and C(1) (0.2 + 0.1).
        let (u_hc_lo, u_hc_hi, u_lc_lo) = ts.reduce_to_dual(0).unwrap();
        assert!((u_lc_lo - 0.2).abs() < 1e-12);
        assert!((u_hc_lo - 0.15).abs() < 1e-12);
        assert!((u_hc_hi - 0.3).abs() < 1e-12);
        // Pair (1, 2): LC = level-1 task at C(1) = 0.2; HC = level-2 task
        // with C(1) = 0.1 and C(2) = 0.4.
        let (u_hc_lo, u_hc_hi, u_lc_lo) = ts.reduce_to_dual(1).unwrap();
        assert!((u_lc_lo - 0.2).abs() < 1e-12);
        assert!((u_hc_lo - 0.1).abs() < 1e-12);
        assert!((u_hc_hi - 0.4).abs() < 1e-12);
        // No pair (2, 3) on a 3-level platform.
        assert!(ts.reduce_to_dual(2).is_err());
    }

    #[test]
    fn display_shows_levels_and_budgets() {
        let t = task(3, 1, &[2, 8], 10);
        let s = t.to_string();
        assert!(s.contains("τ3"));
        assert!(s.contains("L1"));
        assert!(s.contains("2ms"));
    }
}
