//! Measured execution-time profiles.
//!
//! The paper's scheme consumes, for each high-criticality task, the empirical
//! mean execution time (ACET, Eq. 3), the population standard deviation
//! (Eq. 4) and the statically-analysed pessimistic WCET. An
//! [`ExecutionProfile`] bundles exactly those three numbers, all in
//! nanoseconds (the workspace convention is a 1 GHz platform, so one cycle
//! equals one nanosecond).

use crate::TaskError;
use mc_stats::summary::Summary;
use serde::{Deserialize, Serialize};

/// The execution-time statistics of a task, in nanoseconds.
///
/// # Example
///
/// ```
/// use mc_task::profile::ExecutionProfile;
///
/// # fn main() -> Result<(), mc_task::TaskError> {
/// let p = ExecutionProfile::new(1_000.0, 100.0, 5_000.0)?;
/// // Optimistic WCET candidate at n = 3 (paper Eq. 6):
/// assert_eq!(p.level(3.0), 1_300.0);
/// // Largest n that still respects C_LO ≤ WCET_pes (paper Eq. 9):
/// assert_eq!(p.max_factor(), 40.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionProfile {
    acet: f64,
    sigma: f64,
    wcet_pes: f64,
    /// Fitted three-parameter Weibull execution-time law, when the profile
    /// came from a calibrated (BCET, ACET, WCET) triple rather than raw
    /// measurements. `None` (serialized as `null`) for the paper's Table I
    /// profiles; `serde(default)` keeps pre-automotive JSON loading.
    #[serde(default)]
    weibull: Option<WeibullFit>,
}

/// Parameters of a fitted three-parameter (shifted) Weibull execution-time
/// distribution, in nanoseconds: `X = location + scale · W(shape)`.
///
/// Carried by [`ExecutionProfile`] for the automotive workload family so
/// the simulator's profile-driven execution model can draw from the
/// heavy-tailed fitted law instead of a normal approximation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullFit {
    /// Location (the task's BCET) in nanoseconds; `≥ 0`.
    pub location: f64,
    /// Weibull shape parameter `k > 0` (`k < 1` is heavy-tailed).
    pub shape: f64,
    /// Weibull scale parameter `λ > 0`, in nanoseconds.
    pub scale: f64,
}

impl WeibullFit {
    fn validate(&self) -> Result<(), TaskError> {
        let finite = self.location.is_finite() && self.shape.is_finite() && self.scale.is_finite();
        if !finite || self.location < 0.0 || self.shape <= 0.0 || self.scale <= 0.0 {
            return Err(TaskError::InvalidProfile {
                reason: "weibull fit requires location >= 0, shape > 0, scale > 0, all finite",
            });
        }
        Ok(())
    }

    /// Inverse CDF: the execution time at cumulative probability `p`,
    /// `location + scale · (−ln(1−p))^{1/shape}` — the zero-dependency
    /// sampling transform used by the simulator (`p` uniform in `(0, 1)`).
    pub fn quantile(&self, p: f64) -> f64 {
        self.location + self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }
}

impl ExecutionProfile {
    /// Creates a profile from an average-case execution time `acet`, a
    /// standard deviation `sigma` and a pessimistic WCET `wcet_pes`.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidProfile`] unless
    /// `0 < acet ≤ wcet_pes`, `sigma ≥ 0`, and all values are finite.
    pub fn new(acet: f64, sigma: f64, wcet_pes: f64) -> Result<Self, TaskError> {
        if !acet.is_finite() || !sigma.is_finite() || !wcet_pes.is_finite() {
            return Err(TaskError::InvalidProfile {
                reason: "profile values must be finite",
            });
        }
        if acet <= 0.0 {
            return Err(TaskError::InvalidProfile {
                reason: "acet must be strictly positive",
            });
        }
        if sigma < 0.0 {
            return Err(TaskError::InvalidProfile {
                reason: "sigma must be non-negative",
            });
        }
        if wcet_pes < acet {
            return Err(TaskError::InvalidProfile {
                reason: "wcet_pes must be at least acet",
            });
        }
        Ok(ExecutionProfile {
            acet,
            sigma,
            wcet_pes,
            weibull: None,
        })
    }

    /// Attaches a fitted Weibull execution-time law to the profile. The
    /// fit's location (BCET) must not exceed the ACET, and the fit is
    /// otherwise validated for positivity/finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidProfile`] for non-finite or
    /// non-positive parameters, or `location > acet`.
    pub fn with_weibull(mut self, fit: WeibullFit) -> Result<Self, TaskError> {
        fit.validate()?;
        if fit.location > self.acet {
            return Err(TaskError::InvalidProfile {
                reason: "weibull location (BCET) must not exceed acet",
            });
        }
        self.weibull = Some(fit);
        Ok(self)
    }

    /// The fitted Weibull execution-time law, if the profile carries one.
    pub fn weibull(&self) -> Option<&WeibullFit> {
        self.weibull.as_ref()
    }

    /// Builds a profile from a measured [`Summary`] and a pessimistic WCET
    /// obtained from static analysis.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutionProfile::new`].
    pub fn from_summary(summary: &Summary, wcet_pes: f64) -> Result<Self, TaskError> {
        ExecutionProfile::new(summary.mean(), summary.std_dev(), wcet_pes)
    }

    /// Average-case execution time in nanoseconds.
    pub fn acet(&self) -> f64 {
        self.acet
    }

    /// Population standard deviation of the execution time in nanoseconds.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Pessimistic (HI-mode) WCET in nanoseconds.
    pub fn wcet_pes(&self) -> f64 {
        self.wcet_pes
    }

    /// The candidate optimistic WCET `ACET + n·σ` (paper Eq. 6).
    pub fn level(&self, n: f64) -> f64 {
        self.acet + n * self.sigma
    }

    /// The largest Chebyshev factor `n` that keeps the optimistic WCET at or
    /// below the pessimistic one (paper Eq. 9): `(WCET_pes − ACET)/σ`.
    ///
    /// Returns `f64::INFINITY` when `sigma` is zero (a constant-time task
    /// never violates Eq. 9).
    pub fn max_factor(&self) -> f64 {
        if self.sigma == 0.0 {
            f64::INFINITY
        } else {
            (self.wcet_pes - self.acet) / self.sigma
        }
    }

    /// Ratio of pessimistic WCET to ACET — the "gap" the paper's motivation
    /// section highlights (8.1× to 59× for qsort).
    pub fn wcet_ratio(&self) -> f64 {
        self.wcet_pes / self.acet
    }

    /// Clamps a candidate factor into `[0, max_factor]` so that Eq. 9 holds.
    pub fn clamp_factor(&self, n: f64) -> f64 {
        n.clamp(0.0, self.max_factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_domain() {
        assert!(ExecutionProfile::new(0.0, 1.0, 10.0).is_err());
        assert!(ExecutionProfile::new(-1.0, 1.0, 10.0).is_err());
        assert!(ExecutionProfile::new(5.0, -0.1, 10.0).is_err());
        assert!(ExecutionProfile::new(5.0, 1.0, 4.0).is_err());
        assert!(ExecutionProfile::new(f64::NAN, 1.0, 10.0).is_err());
        assert!(ExecutionProfile::new(5.0, 1.0, f64::INFINITY).is_err());
        assert!(ExecutionProfile::new(5.0, 0.0, 5.0).is_ok());
    }

    #[test]
    fn level_matches_eq6() {
        let p = ExecutionProfile::new(100.0, 10.0, 500.0).unwrap();
        assert_eq!(p.level(0.0), 100.0);
        assert_eq!(p.level(2.5), 125.0);
    }

    #[test]
    fn max_factor_saturates_eq9() {
        let p = ExecutionProfile::new(100.0, 10.0, 500.0).unwrap();
        assert_eq!(p.max_factor(), 40.0);
        // At the max factor the level equals the pessimistic WCET.
        assert!((p.level(p.max_factor()) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sigma_gives_infinite_max_factor() {
        let p = ExecutionProfile::new(100.0, 0.0, 500.0).unwrap();
        assert_eq!(p.max_factor(), f64::INFINITY);
        assert_eq!(p.level(1e9), 100.0);
    }

    #[test]
    fn clamp_factor_respects_bounds() {
        let p = ExecutionProfile::new(100.0, 10.0, 200.0).unwrap();
        assert_eq!(p.clamp_factor(-5.0), 0.0);
        assert_eq!(p.clamp_factor(3.0), 3.0);
        assert_eq!(p.clamp_factor(100.0), 10.0);
    }

    #[test]
    fn from_summary_uses_population_sigma() {
        let s = mc_stats::summary::Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
            .unwrap();
        let p = ExecutionProfile::from_summary(&s, 20.0).unwrap();
        assert_eq!(p.acet(), 5.0);
        assert_eq!(p.sigma(), 2.0);
        assert_eq!(p.wcet_pes(), 20.0);
    }

    #[test]
    fn weibull_fit_attachment_validates_and_round_trips() {
        let p = ExecutionProfile::new(1_000.0, 300.0, 30_000.0).unwrap();
        assert!(p.weibull().is_none());
        // Pre-automotive JSON has no `weibull` key; `serde(default)` must
        // keep it loading, and a fresh round trip must be stable.
        let legacy = r#"{"acet":1000.0,"sigma":300.0,"wcet_pes":30000.0}"#;
        let back: ExecutionProfile = serde_json::from_str(legacy).unwrap();
        assert_eq!(back, p);
        let round: ExecutionProfile =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(round, p);

        let fit = WeibullFit {
            location: 190.0,
            shape: 0.7,
            scale: 2_000.0,
        };
        let pw = p.with_weibull(fit).unwrap();
        assert_eq!(pw.weibull(), Some(&fit));
        let json = serde_json::to_string(&pw).unwrap();
        let back: ExecutionProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pw);

        let bad = [
            WeibullFit {
                location: -1.0,
                ..fit
            },
            WeibullFit { shape: 0.0, ..fit },
            WeibullFit {
                scale: f64::NAN,
                ..fit
            },
            WeibullFit {
                location: 2_000.0,
                ..fit
            }, // above ACET
        ];
        for b in bad {
            assert!(p.with_weibull(b).is_err(), "{b:?} should be rejected");
        }
    }

    #[test]
    fn weibull_quantile_is_monotone_and_anchored() {
        let fit = WeibullFit {
            location: 100.0,
            shape: 2.0,
            scale: 50.0,
        };
        assert!((fit.quantile(0.0) - 100.0).abs() < 1e-12);
        // Median of a k=2 Weibull: location + scale * ln(2)^(1/2).
        let med = 100.0 + 50.0 * std::f64::consts::LN_2.sqrt();
        assert!((fit.quantile(0.5) - med).abs() < 1e-9);
        let mut last = f64::NEG_INFINITY;
        for i in 0..100 {
            let q = fit.quantile(i as f64 / 100.0);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn wcet_ratio_reports_the_gap() {
        let p = ExecutionProfile::new(230.0, 39.0, 1900.0).unwrap(); // qsort-10 (Table I)
        assert!((p.wcet_ratio() - 8.26).abs() < 0.01);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn level_is_monotone_in_n(
                acet in 1.0..1e6f64,
                sigma in 0.0..1e5f64,
                n1 in 0.0..100.0f64,
                dn in 0.0..100.0f64,
            ) {
                let p = ExecutionProfile::new(acet, sigma, acet * 100.0 + 1e7).unwrap();
                prop_assert!(p.level(n1 + dn) >= p.level(n1));
            }

            #[test]
            fn clamped_level_never_exceeds_wcet_pes(
                acet in 1.0..1e6f64,
                sigma in 0.001..1e5f64,
                gap in 0.0..1e6f64,
                n in -10.0..1e4f64,
            ) {
                let p = ExecutionProfile::new(acet, sigma, acet + gap).unwrap();
                let level = p.level(p.clamp_factor(n));
                prop_assert!(level <= p.wcet_pes() + 1e-6);
                prop_assert!(level >= p.acet() - 1e-9);
            }
        }
    }
}
