//! The mixed-criticality task type.
//!
//! A task is the paper's tuple `τᵢ = (ζᵢ, Cᵢ_LO, Cᵢ_HI, Pᵢ, Dᵢ)` with
//! implicit deadlines (`D = P`, §III). High-criticality tasks additionally
//! carry an [`ExecutionProfile`] so that WCET-assignment policies can derive
//! `C_LO` from `(ACET, σ)`.

use crate::criticality::Criticality;
use crate::profile::ExecutionProfile;
use crate::time::Duration;
use crate::TaskError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque task identifier, unique within a [`crate::taskset::TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(u32);

impl TaskId {
    /// Creates an identifier from a raw index.
    pub const fn new(raw: u32) -> Self {
        TaskId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(raw: u32) -> Self {
        TaskId(raw)
    }
}

/// A periodic mixed-criticality task.
///
/// Invariants enforced at construction:
///
/// * `period > 0`, `deadline > 0`, `deadline ≤ period` (implicit deadlines
///   default to `deadline == period`);
/// * `0 < c_lo ≤ c_hi` for high-criticality tasks;
/// * `c_hi == c_lo` for low-criticality tasks (an LC task has a single WCET;
///   what it receives in HI mode is a *scheduler policy*, not a task
///   attribute);
/// * when a profile is attached, `c_hi` matches the profile's pessimistic
///   WCET within rounding.
///
/// # Example
///
/// ```
/// use mc_task::task::{McTask, TaskId};
/// use mc_task::time::Duration;
/// use mc_task::criticality::Criticality;
///
/// # fn main() -> Result<(), mc_task::TaskError> {
/// let task = McTask::builder(TaskId::new(0))
///     .criticality(Criticality::Hi)
///     .period(Duration::from_millis(100))
///     .c_lo(Duration::from_millis(10))
///     .c_hi(Duration::from_millis(40))
///     .build()?;
/// assert!((task.u_lo() - 0.1).abs() < 1e-12);
/// assert!((task.u_hi() - 0.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McTask {
    id: TaskId,
    name: String,
    criticality: Criticality,
    c_lo: Duration,
    c_hi: Duration,
    period: Duration,
    deadline: Duration,
    profile: Option<ExecutionProfile>,
}

impl McTask {
    /// Starts building a task with the given identifier.
    pub fn builder(id: TaskId) -> McTaskBuilder {
        McTaskBuilder::new(id)
    }

    /// Task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Human-readable name (empty when not set).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Criticality level ζ.
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// True for high-criticality tasks.
    pub fn is_high(&self) -> bool {
        self.criticality.is_high()
    }

    /// Optimistic (LO-mode) WCET `C_LO`.
    pub fn c_lo(&self) -> Duration {
        self.c_lo
    }

    /// Pessimistic (HI-mode) WCET `C_HI`.
    pub fn c_hi(&self) -> Duration {
        self.c_hi
    }

    /// WCET at the given system mode.
    pub fn wcet(&self, mode: Criticality) -> Duration {
        match mode {
            Criticality::Lo => self.c_lo,
            Criticality::Hi => self.c_hi,
        }
    }

    /// Period `P` (minimum inter-release separation).
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Relative deadline `D` (equals the period for implicit deadlines).
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// True when `D == P`, the model the paper analyses.
    pub fn has_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// Measured execution profile, if attached.
    pub fn profile(&self) -> Option<&ExecutionProfile> {
        self.profile.as_ref()
    }

    /// LO-mode utilisation `C_LO / P`.
    pub fn u_lo(&self) -> f64 {
        self.c_lo.ratio(self.period)
    }

    /// HI-mode utilisation `C_HI / P`.
    pub fn u_hi(&self) -> f64 {
        self.c_hi.ratio(self.period)
    }

    /// Utilisation at the given mode (`uᵢˡ = Cᵢˡ / Pᵢ`, §III).
    pub fn utilization(&self, mode: Criticality) -> f64 {
        match mode {
            Criticality::Lo => self.u_lo(),
            Criticality::Hi => self.u_hi(),
        }
    }

    /// Replaces the optimistic WCET — the knob that WCET-assignment
    /// policies turn.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidWcet`] when `c_lo` is zero or exceeds
    /// `c_hi`, and [`TaskError::LcBudgetIsFixed`] for low-criticality tasks
    /// (whose single WCET is set at construction).
    pub fn set_c_lo(&mut self, c_lo: Duration) -> Result<(), TaskError> {
        if self.criticality.is_low() {
            return Err(TaskError::LcBudgetIsFixed { id: self.id });
        }
        if c_lo.is_zero() || c_lo > self.c_hi {
            return Err(TaskError::InvalidWcet {
                id: self.id,
                reason: "c_lo must satisfy 0 < c_lo <= c_hi",
            });
        }
        self.c_lo = c_lo;
        Ok(())
    }
}

impl fmt::Display for McTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] C_LO={} C_HI={} P={}",
            self.id, self.criticality, self.c_lo, self.c_hi, self.period
        )
    }
}

/// Builder for [`McTask`] (see [`McTask::builder`]).
#[derive(Debug, Clone)]
pub struct McTaskBuilder {
    id: TaskId,
    name: String,
    criticality: Criticality,
    c_lo: Option<Duration>,
    c_hi: Option<Duration>,
    period: Option<Duration>,
    deadline: Option<Duration>,
    profile: Option<ExecutionProfile>,
}

impl McTaskBuilder {
    /// Starts a builder for the task `id`.
    pub fn new(id: TaskId) -> Self {
        McTaskBuilder {
            id,
            name: String::new(),
            criticality: Criticality::Lo,
            c_lo: None,
            c_hi: None,
            period: None,
            deadline: None,
            profile: None,
        }
    }

    /// Sets the human-readable name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the criticality level (defaults to [`Criticality::Lo`]).
    pub fn criticality(mut self, criticality: Criticality) -> Self {
        self.criticality = criticality;
        self
    }

    /// Sets the optimistic WCET.
    pub fn c_lo(mut self, c_lo: Duration) -> Self {
        self.c_lo = Some(c_lo);
        self
    }

    /// Sets the pessimistic WCET. For low-criticality tasks this is ignored
    /// in favour of `c_lo`.
    pub fn c_hi(mut self, c_hi: Duration) -> Self {
        self.c_hi = Some(c_hi);
        self
    }

    /// Sets the period.
    pub fn period(mut self, period: Duration) -> Self {
        self.period = Some(period);
        self
    }

    /// Sets an explicit relative deadline (defaults to the period).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a measured execution profile (HC tasks only).
    pub fn profile(mut self, profile: ExecutionProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Finalises the task.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::MissingField`] when a WCET or the period was
    /// never set, and [`TaskError::InvalidWcet`] /
    /// [`TaskError::InvalidTiming`] / [`TaskError::InvalidProfile`] when the
    /// invariants documented on [`McTask`] are violated.
    pub fn build(self) -> Result<McTask, TaskError> {
        let period = self.period.ok_or(TaskError::MissingField {
            id: self.id,
            field: "period",
        })?;
        let c_lo = self.c_lo.ok_or(TaskError::MissingField {
            id: self.id,
            field: "c_lo",
        })?;
        let c_hi = match self.criticality {
            // An LC task has a single WCET.
            Criticality::Lo => c_lo,
            Criticality::Hi => self.c_hi.ok_or(TaskError::MissingField {
                id: self.id,
                field: "c_hi",
            })?,
        };
        let deadline = self.deadline.unwrap_or(period);

        if period.is_zero() {
            return Err(TaskError::InvalidTiming {
                id: self.id,
                reason: "period must be non-zero",
            });
        }
        if deadline.is_zero() || deadline > period {
            return Err(TaskError::InvalidTiming {
                id: self.id,
                reason: "deadline must satisfy 0 < deadline <= period",
            });
        }
        if c_lo.is_zero() {
            return Err(TaskError::InvalidWcet {
                id: self.id,
                reason: "c_lo must be non-zero",
            });
        }
        if c_lo > c_hi {
            return Err(TaskError::InvalidWcet {
                id: self.id,
                reason: "c_lo must not exceed c_hi",
            });
        }
        if c_hi > deadline {
            return Err(TaskError::InvalidWcet {
                id: self.id,
                reason: "c_hi must not exceed the deadline",
            });
        }
        if let Some(profile) = &self.profile {
            if self.criticality.is_low() {
                return Err(TaskError::InvalidProfile {
                    reason: "execution profiles attach to HC tasks only",
                });
            }
            // The profile's pessimistic WCET and the task's C_HI must agree
            // (within the 1 ns rounding of the Duration conversion).
            let c_hi_ns = c_hi.as_nanos() as f64;
            if (profile.wcet_pes() - c_hi_ns).abs() > 1.0 {
                return Err(TaskError::InvalidProfile {
                    reason: "profile wcet_pes must match the task's c_hi",
                });
            }
        }
        Ok(McTask {
            id: self.id,
            name: self.name,
            criticality: self.criticality,
            c_lo,
            c_hi,
            period,
            deadline,
            profile: self.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hc_task() -> McTask {
        McTask::builder(TaskId::new(1))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .name("sensor-fusion")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_fields() {
        let t = hc_task();
        assert_eq!(t.id(), TaskId::new(1));
        assert_eq!(t.name(), "sensor-fusion");
        assert!(t.is_high());
        assert_eq!(t.c_lo(), Duration::from_millis(10));
        assert_eq!(t.c_hi(), Duration::from_millis(40));
        assert_eq!(t.period(), Duration::from_millis(100));
        assert_eq!(t.deadline(), Duration::from_millis(100));
        assert!(t.has_implicit_deadline());
    }

    #[test]
    fn utilizations_per_mode() {
        let t = hc_task();
        assert!((t.u_lo() - 0.1).abs() < 1e-12);
        assert!((t.u_hi() - 0.4).abs() < 1e-12);
        assert_eq!(t.utilization(Criticality::Lo), t.u_lo());
        assert_eq!(t.utilization(Criticality::Hi), t.u_hi());
        assert_eq!(t.wcet(Criticality::Lo), t.c_lo());
        assert_eq!(t.wcet(Criticality::Hi), t.c_hi());
    }

    #[test]
    fn lc_task_has_single_wcet() {
        let t = McTask::builder(TaskId::new(2))
            .period(Duration::from_millis(50))
            .c_lo(Duration::from_millis(5))
            // c_hi is ignored for LC tasks even if provided.
            .c_hi(Duration::from_millis(49))
            .build()
            .unwrap();
        assert_eq!(t.c_hi(), t.c_lo());
        assert!(t.criticality().is_low());
    }

    #[test]
    fn missing_fields_are_reported() {
        let e = McTask::builder(TaskId::new(3)).build().unwrap_err();
        assert!(matches!(
            e,
            TaskError::MissingField {
                field: "period",
                ..
            }
        ));
        let e = McTask::builder(TaskId::new(3))
            .period(Duration::from_millis(10))
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::MissingField { field: "c_lo", .. }));
        let e = McTask::builder(TaskId::new(3))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(10))
            .c_lo(Duration::from_millis(1))
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::MissingField { field: "c_hi", .. }));
    }

    #[test]
    fn invalid_wcet_orderings_are_rejected() {
        let e = McTask::builder(TaskId::new(4))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(50))
            .c_hi(Duration::from_millis(10))
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::InvalidWcet { .. }));

        // c_hi beyond the deadline can never be schedulable.
        let e = McTask::builder(TaskId::new(4))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(150))
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::InvalidWcet { .. }));
    }

    #[test]
    fn zero_period_and_bad_deadline_are_rejected() {
        let e = McTask::builder(TaskId::new(5))
            .period(Duration::ZERO)
            .c_lo(Duration::from_millis(1))
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::InvalidTiming { .. }));

        let e = McTask::builder(TaskId::new(5))
            .period(Duration::from_millis(10))
            .deadline(Duration::from_millis(20))
            .c_lo(Duration::from_millis(1))
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::InvalidTiming { .. }));
    }

    #[test]
    fn set_c_lo_enforces_invariants() {
        let mut t = hc_task();
        t.set_c_lo(Duration::from_millis(20)).unwrap();
        assert_eq!(t.c_lo(), Duration::from_millis(20));
        assert!(t.set_c_lo(Duration::ZERO).is_err());
        assert!(t.set_c_lo(Duration::from_millis(41)).is_err());
        // Setting equal to c_hi is allowed (the fully pessimistic choice).
        t.set_c_lo(Duration::from_millis(40)).unwrap();
    }

    #[test]
    fn set_c_lo_rejected_for_lc_tasks() {
        let mut t = McTask::builder(TaskId::new(6))
            .period(Duration::from_millis(50))
            .c_lo(Duration::from_millis(5))
            .build()
            .unwrap();
        assert!(matches!(
            t.set_c_lo(Duration::from_millis(4)),
            Err(TaskError::LcBudgetIsFixed { .. })
        ));
    }

    #[test]
    fn profile_must_match_c_hi() {
        let profile =
            crate::profile::ExecutionProfile::new(1_000_000.0, 100_000.0, 40_000_000.0).unwrap();
        let t = McTask::builder(TaskId::new(7))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .profile(profile)
            .build()
            .unwrap();
        assert!(t.profile().is_some());

        let mismatched =
            crate::profile::ExecutionProfile::new(1_000_000.0, 100_000.0, 99_000_000.0).unwrap();
        let e = McTask::builder(TaskId::new(7))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(40))
            .profile(mismatched)
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::InvalidProfile { .. }));
    }

    #[test]
    fn profile_on_lc_task_is_rejected() {
        let profile = crate::profile::ExecutionProfile::new(1.0, 0.0, 1.0).unwrap();
        let e = McTask::builder(TaskId::new(8))
            .period(Duration::from_millis(10))
            .c_lo(Duration::from_millis(1))
            .profile(profile)
            .build()
            .unwrap_err();
        assert!(matches!(e, TaskError::InvalidProfile { .. }));
    }

    #[test]
    fn display_is_compact_and_nonempty() {
        let t = hc_task();
        let s = t.to_string();
        assert!(s.contains("τ1"));
        assert!(s.contains("HC"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn valid_hc_tasks_have_ordered_utilizations(
                period_ms in 1u64..1_000,
                c_lo_frac in 0.01..1.0f64,
                c_hi_frac in 0.01..1.0f64,
            ) {
                let period = Duration::from_millis(period_ms);
                let c_hi = period.mul_f64(c_hi_frac.max(c_lo_frac));
                let c_lo = period.mul_f64(c_lo_frac.min(c_hi_frac));
                prop_assume!(!c_lo.is_zero());
                let t = McTask::builder(TaskId::new(0))
                    .criticality(Criticality::Hi)
                    .period(period)
                    .c_lo(c_lo)
                    .c_hi(c_hi)
                    .build()
                    .unwrap();
                prop_assert!(t.u_lo() <= t.u_hi() + 1e-12);
                prop_assert!(t.u_hi() <= 1.0 + 1e-12);
            }
        }
    }
}
