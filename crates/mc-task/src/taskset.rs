//! Collections of mixed-criticality tasks.
//!
//! A [`TaskSet`] owns the tasks of one system and exposes the aggregate
//! utilisations the paper's schedulability conditions are written in:
//! `U_HC^LO`, `U_HC^HI`, `U_LC^LO` (Eq. 7 and the terms of Eq. 8).

use crate::criticality::Criticality;
use crate::task::{McTask, TaskId};
use crate::TaskError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered collection of [`McTask`]s with unique identifiers.
///
/// # Example
///
/// ```
/// use mc_task::task::{McTask, TaskId};
/// use mc_task::taskset::TaskSet;
/// use mc_task::time::Duration;
/// use mc_task::criticality::Criticality;
///
/// # fn main() -> Result<(), mc_task::TaskError> {
/// let mut ts = TaskSet::new();
/// ts.push(
///     McTask::builder(TaskId::new(0))
///         .criticality(Criticality::Hi)
///         .period(Duration::from_millis(100))
///         .c_lo(Duration::from_millis(10))
///         .c_hi(Duration::from_millis(30))
///         .build()?,
/// )?;
/// ts.push(
///     McTask::builder(TaskId::new(1))
///         .period(Duration::from_millis(200))
///         .c_lo(Duration::from_millis(20))
///         .build()?,
/// )?;
/// assert_eq!(ts.len(), 2);
/// assert!((ts.u_hc_hi() - 0.3).abs() < 1e-12);
/// assert!((ts.u_lc_lo() - 0.1).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<McTask>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Creates a task set from a vector of tasks.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DuplicateTaskId`] when two tasks share an id.
    pub fn from_tasks(tasks: Vec<McTask>) -> Result<Self, TaskError> {
        let mut set = TaskSet::new();
        for t in tasks {
            set.push(t)?;
        }
        Ok(set)
    }

    /// Adds a task.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DuplicateTaskId`] when the id already exists.
    pub fn push(&mut self, task: McTask) -> Result<(), TaskError> {
        if self.tasks.iter().any(|t| t.id() == task.id()) {
            return Err(TaskError::DuplicateTaskId { id: task.id() });
        }
        self.tasks.push(task);
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the set has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, McTask> {
        self.tasks.iter()
    }

    /// Mutable iteration (WCET-assignment policies use this to set `C_LO`).
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, McTask> {
        self.tasks.iter_mut()
    }

    /// The tasks as a slice.
    pub fn tasks(&self) -> &[McTask] {
        &self.tasks
    }

    /// Looks a task up by id.
    pub fn get(&self, id: TaskId) -> Option<&McTask> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut McTask> {
        self.tasks.iter_mut().find(|t| t.id() == id)
    }

    /// Iterates over high-criticality tasks only.
    pub fn hc_tasks(&self) -> impl Iterator<Item = &McTask> {
        self.tasks.iter().filter(|t| t.criticality().is_high())
    }

    /// Iterates over low-criticality tasks only.
    pub fn lc_tasks(&self) -> impl Iterator<Item = &McTask> {
        self.tasks.iter().filter(|t| t.criticality().is_low())
    }

    /// Mutable iteration over high-criticality tasks.
    pub fn hc_tasks_mut(&mut self) -> impl Iterator<Item = &mut McTask> {
        self.tasks.iter_mut().filter(|t| t.criticality().is_high())
    }

    /// Number of high-criticality tasks.
    pub fn hc_count(&self) -> usize {
        self.hc_tasks().count()
    }

    /// Number of low-criticality tasks.
    pub fn lc_count(&self) -> usize {
        self.lc_tasks().count()
    }

    /// Total utilisation of tasks at criticality `level` in mode `mode`
    /// — the paper's `U_l^k` notation.
    pub fn utilization(&self, level: Criticality, mode: Criticality) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.criticality() == level)
            .map(|t| t.utilization(mode))
            .sum()
    }

    /// `U_HC^LO`: HC tasks' utilisation under their optimistic WCETs (Eq. 7).
    pub fn u_hc_lo(&self) -> f64 {
        self.utilization(Criticality::Hi, Criticality::Lo)
    }

    /// `U_HC^HI`: HC tasks' utilisation under their pessimistic WCETs (Eq. 7).
    pub fn u_hc_hi(&self) -> f64 {
        self.utilization(Criticality::Hi, Criticality::Hi)
    }

    /// `U_LC^LO`: LC tasks' utilisation in LO mode.
    pub fn u_lc_lo(&self) -> f64 {
        self.utilization(Criticality::Lo, Criticality::Lo)
    }

    /// Total LO-mode utilisation `U_HC^LO + U_LC^LO`.
    pub fn u_total_lo(&self) -> f64 {
        self.u_hc_lo() + self.u_lc_lo()
    }

    /// The hyperperiod (least common multiple of all periods), or `None`
    /// for an empty set or on overflow. Simulations commonly run for one or
    /// a few hyperperiods.
    pub fn hyperperiod(&self) -> Option<crate::time::Duration> {
        let mut lcm: u64 = 1;
        if self.tasks.is_empty() {
            return None;
        }
        for t in &self.tasks {
            let p = t.period().as_nanos();
            lcm = lcm.checked_mul(p / gcd(lcm, p))?;
        }
        Some(crate::time::Duration::from_nanos(lcm))
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TaskSet: {} tasks ({} HC, {} LC), U_HC^LO={:.3} U_HC^HI={:.3} U_LC^LO={:.3}",
            self.len(),
            self.hc_count(),
            self.lc_count(),
            self.u_hc_lo(),
            self.u_hc_hi(),
            self.u_lc_lo()
        )?;
        for t in &self.tasks {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

impl TryFrom<Vec<McTask>> for TaskSet {
    type Error = TaskError;
    fn try_from(tasks: Vec<McTask>) -> Result<Self, TaskError> {
        TaskSet::from_tasks(tasks)
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a McTask;
    type IntoIter = std::slice::Iter<'a, McTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl IntoIterator for TaskSet {
    type Item = McTask;
    type IntoIter = std::vec::IntoIter<McTask>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn hc(id: u32, c_lo_ms: u64, c_hi_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_lo_ms))
            .c_hi(Duration::from_millis(c_hi_ms))
            .build()
            .unwrap()
    }

    fn lc(id: u32, c_ms: u64, p_ms: u64) -> McTask {
        McTask::builder(TaskId::new(id))
            .period(Duration::from_millis(p_ms))
            .c_lo(Duration::from_millis(c_ms))
            .build()
            .unwrap()
    }

    fn sample_set() -> TaskSet {
        TaskSet::from_tasks(vec![
            hc(0, 10, 40, 100), // u_lo 0.1, u_hi 0.4
            hc(1, 5, 20, 200),  // u_lo 0.025, u_hi 0.1
            lc(2, 30, 300),     // u 0.1
            lc(3, 10, 100),     // u 0.1
        ])
        .unwrap()
    }

    #[test]
    fn aggregate_utilizations_match_eq7() {
        let ts = sample_set();
        assert!((ts.u_hc_lo() - 0.125).abs() < 1e-12);
        assert!((ts.u_hc_hi() - 0.5).abs() < 1e-12);
        assert!((ts.u_lc_lo() - 0.2).abs() < 1e-12);
        assert!((ts.u_total_lo() - 0.325).abs() < 1e-12);
    }

    #[test]
    fn counts_and_views() {
        let ts = sample_set();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.hc_count(), 2);
        assert_eq!(ts.lc_count(), 2);
        assert!(ts.hc_tasks().all(|t| t.is_high()));
        assert!(ts.lc_tasks().all(|t| !t.is_high()));
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut ts = TaskSet::new();
        ts.push(lc(0, 1, 10)).unwrap();
        let e = ts.push(hc(0, 1, 2, 10)).unwrap_err();
        assert!(matches!(e, TaskError::DuplicateTaskId { .. }));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn lookup_by_id() {
        let mut ts = sample_set();
        assert_eq!(ts.get(TaskId::new(1)).unwrap().id(), TaskId::new(1));
        assert!(ts.get(TaskId::new(99)).is_none());
        ts.get_mut(TaskId::new(0))
            .unwrap()
            .set_c_lo(Duration::from_millis(20))
            .unwrap();
        assert_eq!(
            ts.get(TaskId::new(0)).unwrap().c_lo(),
            Duration::from_millis(20)
        );
    }

    #[test]
    fn empty_set_has_zero_utilizations() {
        let ts = TaskSet::new();
        assert!(ts.is_empty());
        assert_eq!(ts.u_hc_lo(), 0.0);
        assert_eq!(ts.u_hc_hi(), 0.0);
        assert_eq!(ts.u_lc_lo(), 0.0);
        assert!(ts.hyperperiod().is_none());
    }

    #[test]
    fn hyperperiod_is_lcm_of_periods() {
        let ts = sample_set(); // periods 100, 200, 300, 100 ms → lcm 600 ms
        assert_eq!(ts.hyperperiod().unwrap(), Duration::from_millis(600));
    }

    #[test]
    fn hyperperiod_overflow_is_none_not_panic() {
        // Coprime nanosecond periods near 2^40 blow past u64 when multiplied.
        let mk = |id: u32, p_ns: u64| {
            McTask::builder(TaskId::new(id))
                .period(Duration::from_nanos(p_ns))
                .c_lo(Duration::from_nanos(1))
                .build()
                .unwrap()
        };
        let ts = TaskSet::from_tasks(vec![
            mk(0, (1 << 40) + 1),
            mk(1, (1 << 40) + 3),
            mk(2, (1 << 40) + 7),
        ])
        .unwrap();
        assert_eq!(ts.hyperperiod(), None);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let ts = sample_set();
        let ids: Vec<u32> = ts.iter().map(|t| t.id().raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let ids2: Vec<u32> = (&ts).into_iter().map(|t| t.id().raw()).collect();
        assert_eq!(ids2, ids);
        let ids3: Vec<u32> = ts.clone().into_iter().map(|t| t.id().raw()).collect();
        assert_eq!(ids3, ids);
    }

    #[test]
    fn display_mentions_counts() {
        let s = sample_set().to_string();
        assert!(s.contains("4 tasks"));
        assert!(s.contains("2 HC"));
    }

    #[test]
    fn try_from_round_trips() {
        let tasks = vec![hc(0, 1, 2, 10), lc(1, 1, 10)];
        let ts = TaskSet::try_from(tasks.clone()).unwrap();
        assert_eq!(ts.tasks(), tasks.as_slice());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_task(id: u32) -> impl Strategy<Value = McTask> {
            (1u64..500, 1u64..100, 0u64..100, proptest::bool::ANY).prop_map(
                move |(p_ms, c_lo_pct, c_extra_pct, high)| {
                    let period = Duration::from_millis(p_ms);
                    let c_lo = period.mul_f64((c_lo_pct as f64 / 100.0).max(0.01) * 0.5);
                    let c_lo = if c_lo.is_zero() {
                        Duration::from_nanos(1)
                    } else {
                        c_lo
                    };
                    let c_hi_target = c_lo + period.mul_f64(c_extra_pct as f64 / 100.0 * 0.5);
                    let c_hi = c_hi_target.min(period);
                    let mut b = McTask::builder(TaskId::new(id)).period(period).c_lo(c_lo);
                    if high {
                        b = b.criticality(Criticality::Hi).c_hi(c_hi);
                    }
                    b.build().unwrap()
                },
            )
        }

        proptest! {
            #[test]
            fn utilizations_are_sums_over_views(
                tasks in proptest::collection::vec((0u32..1).prop_flat_map(|_| arb_task(0)), 1..20)
            ) {
                // Re-id to be unique.
                let tasks: Vec<McTask> = tasks
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let mut b = McTask::builder(TaskId::new(i as u32))
                            .criticality(t.criticality())
                            .period(t.period())
                            .c_lo(t.c_lo());
                        if t.is_high() {
                            b = b.c_hi(t.c_hi());
                        }
                        b.build().unwrap()
                    })
                    .collect();
                let ts = TaskSet::from_tasks(tasks).unwrap();
                let manual_hc_lo: f64 = ts.hc_tasks().map(|t| t.u_lo()).sum();
                let manual_lc_lo: f64 = ts.lc_tasks().map(|t| t.u_lo()).sum();
                prop_assert!((ts.u_hc_lo() - manual_hc_lo).abs() < 1e-12);
                prop_assert!((ts.u_lc_lo() - manual_lc_lo).abs() < 1e-12);
                prop_assert!(ts.u_hc_lo() <= ts.u_hc_hi() + 1e-12);
            }
        }
    }
}
