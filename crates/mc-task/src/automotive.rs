//! The automotive workload family, calibrated to the Bosch
//! "Real World Automotive Benchmarks For Free" data (WATERS 2015).
//!
//! The paper's §V generator mirrors small synthetic sets with uniform
//! periods; this module opens task sets with 10³–10⁴ runnables and
//! genuinely heavy-tailed execution times, where the Chebyshev/Cantelli
//! bound's distribution-independence is actually stressed:
//!
//! 1. **Periods** come from the published 9-bin period/share table
//!    ([`PERIOD_MS`], [`SHARE_PERCENT`]). The shares sum to 85 % — the
//!    missing 15 % are the engine-angle-synchronous runnables, which have
//!    no fixed period and are dropped, so counts are normalised over
//!    [`SHARE_TOTAL`]. Bin counts use largest-remainder apportionment
//!    ([`allocate_bin_counts`]), which is deterministic and exact.
//! 2. **Utilisation** is split per bin with UUniFast plus the standard
//!    discard rule ([`crate::generate::uunifast_capped`]): a draw with any
//!    share above the per-task cap is redrawn whole, with a bounded retry
//!    budget surfacing [`TaskError::RetriesExhausted`] instead of spinning.
//! 3. **BCET/ACET/WCET** per task come from the published factor matrices
//!    ([`BCET_FACTOR`], [`WCET_FACTOR`]): the task's budget WCET is
//!    `uᵢ · Pᵢ`, the ACET is `WCET / f_wcet`, and the BCET is
//!    `f_bcet · ACET`, with the factor pair redrawn while the triple's
//!    mean-position ratio `(ACET−BCET)/(WCET−BCET)` falls below
//!    [`WEIBULL_FEASIBLE_MEAN_RATIO`] (a corner like `f_bcet = 0.99` with
//!    `f_wcet = 30` admits no Weibull whose mean lands on the ACET).
//! 4. **Execution times** follow a per-task three-parameter Weibull fitted
//!    to the (BCET, ACET, WCET) triple (`mc_stats::Dist::weibull_from_triple`);
//!    the fitted parameters ride on the task's [`ExecutionProfile`] as a
//!    [`WeibullFit`] so the simulator's profile-driven execution model
//!    draws from the heavy-tailed law, and the profile's σ is the fitted
//!    distribution's analytic standard deviation, which is what the
//!    paper's `C_LO = ACET + n·σ` machinery consumes.
//!
//! **Seed contract** (relied on by the `automotive` campaign for
//! byte-identity across shards/threads/serve): for each bin in table
//! order, the generator consumes the UUniFast draws first, then per task
//! the factor pair (redrawn in place on discard) followed by the
//! criticality draw. Any change to this order is a breaking change to
//! recorded campaign stores.

use crate::criticality::Criticality;
use crate::generate::uunifast_capped;
use crate::profile::{ExecutionProfile, WeibullFit};
use crate::task::{McTask, TaskId};
use crate::taskset::TaskSet;
use crate::time::Duration;
use crate::TaskError;
use mc_stats::dist::Dist;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of fixed-period bins in the Bosch tables.
pub const BIN_COUNT: usize = 9;

/// Period of each bin, in milliseconds (Bosch Table III).
pub const PERIOD_MS: [u64; BIN_COUNT] = [1, 2, 5, 10, 20, 50, 100, 200, 1000];

/// Share of runnables per bin, in percent (Bosch Table III). Sums to
/// [`SHARE_TOTAL`], not 100: the angle-synchronous 15 % has no fixed
/// period and is excluded from the periodic model.
pub const SHARE_PERCENT: [f64; BIN_COUNT] = [3.0, 2.0, 2.0, 25.0, 25.0, 3.0, 20.0, 1.0, 4.0];

/// Total of [`SHARE_PERCENT`]; bin counts are normalised over this.
pub const SHARE_TOTAL: f64 = 85.0;

/// Per-bin average execution time statistics `(min, avg, max)` in
/// microseconds (Bosch Table IV). Reference calibration data: the
/// generator scales execution demand from the utilisation target instead,
/// but the lint pass checks these stay ordered and the docs cite them.
pub const ACET_US: [[f64; 3]; BIN_COUNT] = [
    [0.34, 5.00, 30.11],
    [0.32, 4.20, 40.69],
    [0.36, 11.04, 83.38],
    [0.21, 10.09, 309.87],
    [0.25, 8.74, 291.42],
    [0.29, 17.56, 92.98],
    [0.21, 10.53, 420.43],
    [0.22, 2.56, 21.95],
    [0.37, 0.43, 0.46],
];

/// Per-bin `BCET/ACET` factor bounds `(min, max)` (Bosch Table V); all
/// within `(0, 1)`.
pub const BCET_FACTOR: [[f64; 2]; BIN_COUNT] = [
    [0.19, 0.92],
    [0.12, 0.89],
    [0.17, 0.94],
    [0.05, 0.99],
    [0.11, 0.98],
    [0.32, 0.95],
    [0.09, 0.99],
    [0.45, 0.98],
    [0.68, 0.80],
];

/// Per-bin `WCET/ACET` factor bounds `(min, max)` (Bosch Table V); all
/// above 1.
pub const WCET_FACTOR: [[f64; 2]; BIN_COUNT] = [
    [1.30, 29.11],
    [1.54, 19.04],
    [1.13, 18.44],
    [1.06, 30.03],
    [1.06, 15.61],
    [1.13, 7.76],
    [1.02, 8.88],
    [1.03, 4.90],
    [1.84, 4.75],
];

/// Minimum admissible mean-position ratio `(ACET−BCET)/(WCET−BCET)` of a
/// generated triple. The Weibull fit is infeasible below ≈ 7.1e-4 (the
/// minimum of `Γ(1+x)·q⁻ˣ`); this floor sits well above it so fitted
/// shapes stay at `k ≳ 0.47` and the truncated distribution's moments
/// remain within the contract tolerances. Factor pairs whose ratio falls
/// below this are discarded and redrawn.
pub const WEIBULL_FEASIBLE_MEAN_RATIO: f64 = 0.02;

/// Configuration for the automotive generator, validated once via
/// [`AutomotiveConfig::checked`] in the style of
/// [`crate::generate::CheckedGeneratorConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutomotiveConfig {
    /// Number of runnables (tasks) in the set. The Bosch data targets
    /// 10³–10⁴; anything in `[50, 100_000]` is accepted so smoke tests
    /// can run reduced-scale sets.
    pub runnables: usize,
    /// Probability that a runnable is high-criticality.
    pub p_high: f64,
    /// Per-task utilisation cap for the UUniFast discard rule, in `(0, 1]`.
    pub utilization_cap: f64,
    /// Retry budget for the UUniFast discard loop.
    pub max_uunifast_retries: usize,
    /// Retry budget for the per-task factor-pair discard loop.
    pub max_factor_retries: usize,
}

impl Default for AutomotiveConfig {
    fn default() -> Self {
        AutomotiveConfig {
            runnables: 1000,
            p_high: 0.5,
            utilization_cap: 1.0,
            max_uunifast_retries: 1000,
            max_factor_retries: 1000,
        }
    }
}

impl AutomotiveConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when the runnable
    /// count is outside `[50, 100_000]`, `p_high` is outside `[0, 1]`,
    /// the utilisation cap is outside `(0, 1]`, or a retry budget is zero.
    pub fn validate(&self) -> Result<(), TaskError> {
        let err = |reason| Err(TaskError::InvalidGeneratorConfig { reason });
        if !(50..=100_000).contains(&self.runnables) {
            return err("automotive runnables must be in [50, 100000]");
        }
        if !self.p_high.is_finite() || !(0.0..=1.0).contains(&self.p_high) {
            return err("p_high must be in [0, 1]");
        }
        if !self.utilization_cap.is_finite()
            || self.utilization_cap <= 0.0
            || self.utilization_cap > 1.0
        {
            return err("utilization cap must be in (0, 1]");
        }
        if self.max_uunifast_retries == 0 || self.max_factor_retries == 0 {
            return err("retry budgets must be non-zero");
        }
        Ok(())
    }

    /// Validates once and returns a proof-of-validation wrapper.
    /// `mc-lint`'s `lint_automotive_config` reports the same violations
    /// (code `A005`) with full detail.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AutomotiveConfig::validate`].
    pub fn checked(&self) -> Result<CheckedAutomotiveConfig<'_>, TaskError> {
        self.validate()?;
        Ok(CheckedAutomotiveConfig(self))
    }
}

/// An [`AutomotiveConfig`] that has passed [`AutomotiveConfig::validate`]
/// exactly once.
#[derive(Debug, Clone, Copy)]
pub struct CheckedAutomotiveConfig<'a>(&'a AutomotiveConfig);

impl std::ops::Deref for CheckedAutomotiveConfig<'_> {
    type Target = AutomotiveConfig;

    fn deref(&self) -> &AutomotiveConfig {
        self.0
    }
}

/// Apportions `runnables` across the nine bins proportionally to
/// [`SHARE_PERCENT`] using the largest-remainder method (ties broken by
/// bin index), so counts are exact, deterministic, and sum to `runnables`.
pub fn allocate_bin_counts(runnables: usize) -> [usize; BIN_COUNT] {
    let mut counts = [0usize; BIN_COUNT];
    let mut remainders = [(0.0f64, 0usize); BIN_COUNT];
    let mut assigned = 0usize;
    for (b, share) in SHARE_PERCENT.iter().enumerate() {
        let exact = runnables as f64 * share / SHARE_TOTAL;
        let floor = exact.floor();
        // `floor` is exact and non-negative, so the cast is lossless.
        counts[b] = floor as usize;
        assigned += counts[b];
        remainders[b] = (exact - floor, b);
    }
    // Largest remainder first; equal remainders fall back to bin order.
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut leftover = runnables - assigned;
    for &(_, b) in remainders.iter().cycle() {
        if leftover == 0 {
            break;
        }
        counts[b] += 1;
        leftover -= 1;
    }
    counts
}

/// Generates one automotive task set whose *budget* utilisation —
/// `U_HC^HI + U_LC^LO`, the demand the schedulability conditions see —
/// equals `u_bound`, split across the period bins by share and within
/// each bin by UUniFast.
///
/// Each HC task carries an [`ExecutionProfile`] whose σ is the analytic
/// standard deviation of the fitted Weibull and whose [`WeibullFit`]
/// drives heavy-tailed simulation draws; `C_LO` starts pessimistically at
/// `C_HI` for the WCET-assignment policy to lower. LC tasks get their
/// budget as `C_LO`.
///
/// # Errors
///
/// Returns [`TaskError::InvalidGeneratorConfig`] for an invalid
/// configuration or `u_bound` outside `(0, 2]`, and
/// [`TaskError::RetriesExhausted`] when a bounded discard loop dries up.
pub fn generate_automotive_taskset<R: Rng + ?Sized>(
    u_bound: f64,
    cfg: &AutomotiveConfig,
    rng: &mut R,
) -> Result<TaskSet, TaskError> {
    let cfg = cfg.checked()?;
    if !u_bound.is_finite() || u_bound <= 0.0 || u_bound > 2.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "u_bound must be in (0, 2]",
        });
    }
    let counts = allocate_bin_counts(cfg.runnables);
    let mut ts = TaskSet::new();
    let mut next_id = 0u32;
    for (b, &n_b) in counts.iter().enumerate() {
        if n_b == 0 {
            continue;
        }
        let u_bin = u_bound * SHARE_PERCENT[b] / SHARE_TOTAL;
        let us = uunifast_capped(
            n_b,
            u_bin,
            cfg.utilization_cap,
            cfg.max_uunifast_retries,
            rng,
        )?;
        let period = Duration::from_millis(PERIOD_MS[b]);
        let period_ns = period.as_nanos() as f64;
        for u_i in us {
            let task = automotive_task(TaskId::new(next_id), b, u_i * period_ns, period, cfg, rng)?;
            ts.push(task).expect("ids are sequential and unique");
            next_id += 1;
        }
    }
    Ok(ts)
}

/// Builds one runnable of bin `b` with execution budget `budget_ns`.
fn automotive_task<R: Rng + ?Sized>(
    id: TaskId,
    b: usize,
    budget_ns: f64,
    period: Duration,
    cfg: CheckedAutomotiveConfig<'_>,
    rng: &mut R,
) -> Result<McTask, TaskError> {
    // Conservative (ceil) rounding of the budget, floored at one
    // nanosecond so vanishing UUniFast crumbs still yield a legal task.
    let c_hi = Duration::try_from_nanos_f64_ceil(budget_ns.max(1.0))
        .unwrap_or(period)
        .min(period)
        .max(Duration::from_nanos(1));
    let wcet_ns = c_hi.as_nanos() as f64;
    let [bf_min, bf_max] = BCET_FACTOR[b];
    let [wf_min, wf_max] = WCET_FACTOR[b];
    let mut chosen = None;
    for _ in 0..cfg.max_factor_retries {
        let wf = rng.random_range(wf_min..=wf_max);
        let bf = rng.random_range(bf_min..=bf_max);
        let acet = wcet_ns / wf;
        let bcet = bf * acet;
        let ratio = (acet - bcet) / (wcet_ns - bcet);
        if ratio >= WEIBULL_FEASIBLE_MEAN_RATIO {
            chosen = Some((acet, bcet));
            break;
        }
    }
    let Some((acet, bcet)) = chosen else {
        return Err(TaskError::RetriesExhausted {
            what: "Weibull-feasible BCET/WCET factor pair",
            retries: cfg.max_factor_retries,
        });
    };
    let high = rng.random::<f64>() < cfg.p_high;
    let builder = McTask::builder(id).period(period).c_lo(c_hi);
    if !high {
        return builder.build();
    }
    let fit =
        Dist::weibull_from_triple(bcet, acet, wcet_ns).map_err(|_| TaskError::InvalidProfile {
            reason: "accepted factor pair has no Weibull fit (ratio floor too low)",
        })?;
    let sigma = fit
        .variance()
        .unwrap_or(0.0)
        .sqrt()
        // σ is only consumed through ACET + n·σ ≤ WCET_pes; capping it at
        // the headroom keeps Eq. 9 satisfiable at n = 1 like the §V
        // generator does.
        .min(wcet_ns - acet);
    let params = match fit {
        Dist::Weibull3 {
            location,
            shape,
            scale,
        } => WeibullFit {
            location,
            shape,
            scale,
        },
        _ => unreachable!("weibull_from_triple returns Weibull3"),
    };
    let profile = ExecutionProfile::new(acet, sigma, wcet_ns)?.with_weibull(params)?;
    builder
        .criticality(Criticality::Hi)
        .c_hi(c_hi)
        .profile(profile)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn default_config_is_valid() {
        AutomotiveConfig::default().validate().unwrap();
    }

    #[test]
    fn config_validation_catches_bad_fields() {
        let base = AutomotiveConfig::default;
        let bad = [
            AutomotiveConfig {
                runnables: 10,
                ..base()
            },
            AutomotiveConfig {
                runnables: 200_000,
                ..base()
            },
            AutomotiveConfig {
                p_high: -0.1,
                ..base()
            },
            AutomotiveConfig {
                p_high: f64::NAN,
                ..base()
            },
            AutomotiveConfig {
                utilization_cap: 0.0,
                ..base()
            },
            AutomotiveConfig {
                utilization_cap: 1.5,
                ..base()
            },
            AutomotiveConfig {
                max_uunifast_retries: 0,
                ..base()
            },
            AutomotiveConfig {
                max_factor_retries: 0,
                ..base()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
            assert!(cfg.checked().is_err());
        }
    }

    #[test]
    fn calibration_tables_are_internally_consistent() {
        assert!((SHARE_PERCENT.iter().sum::<f64>() - SHARE_TOTAL).abs() < 1e-12);
        for b in 0..BIN_COUNT {
            if b > 0 {
                assert!(PERIOD_MS[b] > PERIOD_MS[b - 1], "bins must increase");
            }
            let [a_min, a_avg, a_max] = ACET_US[b];
            assert!(0.0 < a_min && a_min <= a_avg && a_avg <= a_max, "bin {b}");
            let [bf_min, bf_max] = BCET_FACTOR[b];
            assert!(0.0 < bf_min && bf_min <= bf_max && bf_max < 1.0, "bin {b}");
            let [wf_min, wf_max] = WCET_FACTOR[b];
            assert!(1.0 < wf_min && wf_min <= wf_max, "bin {b}");
        }
    }

    #[test]
    fn bin_counts_use_largest_remainder_exactly() {
        for runnables in [50usize, 123, 1000, 9999] {
            let counts = allocate_bin_counts(runnables);
            assert_eq!(counts.iter().sum::<usize>(), runnables);
            for (b, &c) in counts.iter().enumerate() {
                let exact = runnables as f64 * SHARE_PERCENT[b] / SHARE_TOTAL;
                assert!(
                    (c as f64 - exact).abs() <= 1.0,
                    "{runnables} runnables, bin {b}: {c} vs {exact}"
                );
            }
        }
        // The canonical 1000-runnable split is pinned: any change to the
        // share table or the apportionment shows up here first.
        assert_eq!(
            allocate_bin_counts(1000),
            [35, 24, 24, 294, 294, 35, 235, 12, 47]
        );
    }

    #[test]
    fn generated_sets_honour_the_calibration() {
        let cfg = AutomotiveConfig {
            runnables: 200,
            ..AutomotiveConfig::default()
        };
        let ts = generate_automotive_taskset(0.7, &cfg, &mut rng(5)).unwrap();
        assert_eq!(ts.len(), 200);
        let u = ts.u_hc_hi() + ts.u_lc_lo();
        // UUniFast sums exactly; only the per-task ceil rounding drifts.
        assert!((u - 0.7).abs() < 1e-3, "budget utilisation {u}");
        let counts = allocate_bin_counts(200);
        for task in &ts {
            let p_ms = task.period().as_millis_f64();
            let b = PERIOD_MS
                .iter()
                .position(|&p| (p as f64 - p_ms).abs() < 1e-9)
                .unwrap_or_else(|| panic!("period {p_ms} ms is not a bin"));
            assert!(counts[b] > 0);
            assert!(task.c_hi() <= task.period());
            if let Some(p) = task.profile() {
                let wcet = p.wcet_pes();
                let acet = p.acet();
                let fit = p.weibull().expect("automotive HC tasks carry the fit");
                let bcet = fit.location;
                // Factor-matrix membership (ceil rounding gives ≤ 1 ns of
                // slack on the WCET side).
                let wf = wcet / acet;
                assert!(
                    WCET_FACTOR[b][0] - 1e-6 <= wf && wf <= WCET_FACTOR[b][1] + 1e-6,
                    "bin {b}: wcet factor {wf}"
                );
                let bf = bcet / acet;
                assert!(
                    BCET_FACTOR[b][0] - 1e-6 <= bf && bf <= BCET_FACTOR[b][1] + 1e-6,
                    "bin {b}: bcet factor {bf}"
                );
                let ratio = (acet - bcet) / (wcet - bcet);
                assert!(ratio >= WEIBULL_FEASIBLE_MEAN_RATIO - 1e-9);
                assert!(p.sigma() >= 0.0);
                assert!(p.level(1.0) <= wcet + 1e-6, "Eq. 9 satisfiable at n = 1");
            } else {
                assert!(!task.is_high());
            }
        }
        assert!(ts.hc_count() > 0 && ts.lc_count() > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = AutomotiveConfig {
            runnables: 120,
            ..AutomotiveConfig::default()
        };
        let a = generate_automotive_taskset(0.6, &cfg, &mut rng(9)).unwrap();
        let b = generate_automotive_taskset(0.6, &cfg, &mut rng(9)).unwrap();
        assert_eq!(a, b);
        let c = generate_automotive_taskset(0.6, &cfg, &mut rng(10)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_inputs_surface_structured_errors() {
        let cfg = AutomotiveConfig::default();
        assert!(generate_automotive_taskset(0.0, &cfg, &mut rng(0)).is_err());
        assert!(generate_automotive_taskset(f64::NAN, &cfg, &mut rng(0)).is_err());
        assert!(generate_automotive_taskset(2.5, &cfg, &mut rng(0)).is_err());
        // An absurd per-task cap makes the per-bin UUniFast split
        // infeasible; the structured error propagates out.
        let tight = AutomotiveConfig {
            utilization_cap: 1e-6,
            ..AutomotiveConfig::default()
        };
        let err = generate_automotive_taskset(1.0, &tight, &mut rng(0)).unwrap_err();
        assert!(matches!(err, TaskError::InvalidGeneratorConfig { .. }));
    }

    #[test]
    fn scale_goes_to_ten_thousand_runnables() {
        let cfg = AutomotiveConfig {
            runnables: 10_000,
            ..AutomotiveConfig::default()
        };
        let ts = generate_automotive_taskset(0.9, &cfg, &mut rng(77)).unwrap();
        assert_eq!(ts.len(), 10_000);
        let u = ts.u_hc_hi() + ts.u_lc_lo();
        assert!((u - 0.9).abs() < 1e-3, "budget utilisation {u}");
    }
}
