//! Synthetic task-set generation.
//!
//! The paper's evaluation (§V) generates 1000 synthetic dual-criticality
//! task sets per utilisation point, "in line with previous works": tasks are
//! added at random until the target utilisation bound is reached, periods
//! are drawn uniformly from [100, 900] ms, and (for Fig. 6) a task is HC or
//! LC with equal probability. This module reproduces that generator and also
//! provides the classic UUniFast algorithm for fixed-cardinality sets.
//!
//! Each generated HC task carries an [`ExecutionProfile`] so that WCET
//! assignment policies can be applied afterwards; the task's `C_LO` is
//! initialised pessimistically to `C_HI` (the policy overrides it).

use crate::criticality::Criticality;
use crate::profile::ExecutionProfile;
use crate::task::{McTask, TaskId};
use crate::taskset::TaskSet;
use crate::time::Duration;
use crate::TaskError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic generator.
///
/// Defaults reproduce the paper's setup: periods in [100, 900] ms, equal
/// HC/LC probability, a per-task HI-mode utilisation in [0.02, 0.2], a
/// pessimistic-to-average WCET ratio in [5, 60] (Table I observes 8.1× to
/// 59×), and an execution-time coefficient of variation in [0.02, 0.3].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Period range in milliseconds, inclusive.
    pub period_ms: (u64, u64),
    /// Per-task utilisation range (HI-mode utilisation for HC tasks,
    /// LO-mode utilisation for LC tasks).
    pub task_utilization: (f64, f64),
    /// Range for `WCET_pes / ACET`.
    pub wcet_ratio: (f64, f64),
    /// Range for `σ / ACET` (coefficient of variation).
    pub coefficient_of_variation: (f64, f64),
    /// Probability that a generated task is high-criticality.
    pub p_high: f64,
    /// Hard cap on the number of tasks per set (guards against
    /// pathological configurations that never reach the target).
    pub max_tasks: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            period_ms: (100, 900),
            task_utilization: (0.02, 0.2),
            wcet_ratio: (5.0, 60.0),
            coefficient_of_variation: (0.02, 0.3),
            p_high: 0.5,
            max_tasks: 512,
        }
    }
}

impl GeneratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when any range is
    /// empty/inverted, the probability is outside [0, 1], utilisations are
    /// outside (0, 1], or the WCET ratio dips below 1.
    pub fn validate(&self) -> Result<(), TaskError> {
        let err = |reason| Err(TaskError::InvalidGeneratorConfig { reason });
        if self.period_ms.0 == 0 || self.period_ms.1 < self.period_ms.0 {
            return err("period range must be non-empty and start above zero");
        }
        let (ulo, uhi) = self.task_utilization;
        if !(ulo.is_finite() && uhi.is_finite()) || ulo <= 0.0 || uhi < ulo || uhi > 1.0 {
            return err("task utilization range must satisfy 0 < lo <= hi <= 1");
        }
        let (rlo, rhi) = self.wcet_ratio;
        if !(rlo.is_finite() && rhi.is_finite()) || rlo < 1.0 || rhi < rlo {
            return err("wcet ratio range must satisfy 1 <= lo <= hi");
        }
        let (clo, chi) = self.coefficient_of_variation;
        if !(clo.is_finite() && chi.is_finite()) || clo < 0.0 || chi < clo {
            return err("coefficient of variation range must satisfy 0 <= lo <= hi");
        }
        if !self.p_high.is_finite() || !(0.0..=1.0).contains(&self.p_high) {
            return err("p_high must be in [0, 1]");
        }
        if self.max_tasks == 0 {
            return err("max_tasks must be non-zero");
        }
        Ok(())
    }

    /// Validates once and returns a proof-of-validation wrapper, so the
    /// per-task generators don't re-run the checks for every task of a
    /// set. `mc-lint`'s `lint_generator_config` reports the same
    /// violations (code `S009`) with full detail.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeneratorConfig::validate`].
    pub fn checked(&self) -> Result<CheckedGeneratorConfig<'_>, TaskError> {
        self.validate()?;
        Ok(CheckedGeneratorConfig(self))
    }
}

/// A [`GeneratorConfig`] that has passed [`GeneratorConfig::validate`]
/// exactly once. Constructed via [`GeneratorConfig::checked`]; holding one
/// is proof the ranges are sane, so the generation loops skip
/// re-validation on every task.
#[derive(Debug, Clone, Copy)]
pub struct CheckedGeneratorConfig<'a>(&'a GeneratorConfig);

impl std::ops::Deref for CheckedGeneratorConfig<'_> {
    type Target = GeneratorConfig;

    fn deref(&self) -> &GeneratorConfig {
        self.0
    }
}

impl CheckedGeneratorConfig<'_> {
    // The sampling helpers live on the *checked* wrapper on purpose: an
    // unvalidated `GeneratorConfig` can hold inverted ranges (e.g.
    // `period_ms: (900, 100)`) or NaN bounds, and a sampler reachable from
    // it would have to coerce them silently. Here validation has already
    // guaranteed `lo <= hi` and finiteness, so the only special case left
    // is the degenerate point range.
    fn sample_period<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::from_millis(rng.random_range(self.period_ms.0..=self.period_ms.1))
    }

    fn sample_range<R: Rng + ?Sized>(&self, rng: &mut R, (lo, hi): (f64, f64)) -> f64 {
        if hi <= lo {
            lo
        } else {
            rng.random_range(lo..hi)
        }
    }
}

/// Generates one high-criticality task with HI-mode utilisation `u_hi`.
///
/// The pessimistic WCET is `u_hi · P`; the ACET is drawn via the WCET/ACET
/// ratio; σ via the coefficient of variation. `C_LO` starts at `C_HI` — the
/// caller's WCET-assignment policy is expected to lower it.
///
/// # Errors
///
/// Returns an error when `u_hi` is outside (0, 1] or the configuration is
/// invalid.
pub fn generate_hc_task<R: Rng + ?Sized>(
    id: TaskId,
    u_hi: f64,
    cfg: &GeneratorConfig,
    rng: &mut R,
) -> Result<McTask, TaskError> {
    hc_task_checked(id, u_hi, cfg.checked()?, rng)
}

fn hc_task_checked<R: Rng + ?Sized>(
    id: TaskId,
    u_hi: f64,
    cfg: CheckedGeneratorConfig<'_>,
    rng: &mut R,
) -> Result<McTask, TaskError> {
    if !u_hi.is_finite() || u_hi <= 0.0 || u_hi > 1.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "requested task utilization must be in (0, 1]",
        });
    }
    let period = cfg.sample_period(rng);
    let c_hi = period.mul_f64(u_hi).max(Duration::from_nanos(1));
    let wcet_pes = c_hi.as_nanos() as f64;
    let ratio = cfg.sample_range(rng, cfg.wcet_ratio);
    let acet = wcet_pes / ratio;
    let cv = cfg.sample_range(rng, cfg.coefficient_of_variation);
    // Keep σ small enough that ACET + σ stays below WCET_pes even for n = 1.
    let sigma = (cv * acet).min((wcet_pes - acet).max(0.0));
    let profile = ExecutionProfile::new(acet, sigma, wcet_pes)?;
    McTask::builder(id)
        .criticality(Criticality::Hi)
        .period(period)
        .c_lo(c_hi)
        .c_hi(c_hi)
        .profile(profile)
        .build()
}

/// Generates one low-criticality task with utilisation `u`.
///
/// # Errors
///
/// Returns an error when `u` is outside (0, 1] or the configuration is
/// invalid.
pub fn generate_lc_task<R: Rng + ?Sized>(
    id: TaskId,
    u: f64,
    cfg: &GeneratorConfig,
    rng: &mut R,
) -> Result<McTask, TaskError> {
    lc_task_checked(id, u, cfg.checked()?, rng)
}

fn lc_task_checked<R: Rng + ?Sized>(
    id: TaskId,
    u: f64,
    cfg: CheckedGeneratorConfig<'_>,
    rng: &mut R,
) -> Result<McTask, TaskError> {
    if !u.is_finite() || u <= 0.0 || u > 1.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "requested task utilization must be in (0, 1]",
        });
    }
    let period = cfg.sample_period(rng);
    let c = period.mul_f64(u).max(Duration::from_nanos(1));
    McTask::builder(id).period(period).c_lo(c).build()
}

/// Generates a task set containing only HC tasks whose total HI-mode
/// utilisation is `target_u_hi` (to within the final task's trim).
///
/// This is the generator behind the paper's Figs. 2–5, which sweep
/// `U_HC^HI` while LC demand is characterised analytically by
/// `max(U_LC^LO)`.
///
/// # Errors
///
/// Returns an error when the target is not in (0, 1], the configuration is
/// invalid, or the `max_tasks` cap is reached before the target.
pub fn generate_hc_taskset<R: Rng + ?Sized>(
    target_u_hi: f64,
    cfg: &GeneratorConfig,
    rng: &mut R,
) -> Result<TaskSet, TaskError> {
    let cfg = cfg.checked()?;
    if !target_u_hi.is_finite() || target_u_hi <= 0.0 || target_u_hi > 1.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "target utilization must be in (0, 1]",
        });
    }
    let mut ts = TaskSet::new();
    let mut remaining = target_u_hi;
    let mut next_id = 0u32;
    // Ignore crumbs below this threshold instead of creating micro-tasks.
    const CRUMB: f64 = 1e-4;
    while remaining > CRUMB {
        if ts.len() >= cfg.max_tasks {
            return Err(TaskError::InvalidGeneratorConfig {
                reason: "max_tasks reached before the utilization target",
            });
        }
        let mut u = cfg.sample_range(rng, cfg.task_utilization);
        if u > remaining {
            u = remaining;
        }
        let task = hc_task_checked(TaskId::new(next_id), u, cfg, rng)?;
        remaining -= task.u_hi();
        ts.push(task).expect("ids are sequential and unique");
        next_id += 1;
    }
    Ok(ts)
}

/// Generates a mixed task set per the paper's Fig. 6 setup: tasks are HC
/// with probability `cfg.p_high`, and tasks are added until the *bound
/// utilisation* — `U_HC^HI + U_LC^LO`, the two demands appearing in the
/// schedulability conditions — reaches `u_bound`.
///
/// # Errors
///
/// Same conditions as [`generate_hc_taskset`].
pub fn generate_mixed_taskset<R: Rng + ?Sized>(
    u_bound: f64,
    cfg: &GeneratorConfig,
    rng: &mut R,
) -> Result<TaskSet, TaskError> {
    let cfg = cfg.checked()?;
    if !u_bound.is_finite() || u_bound <= 0.0 || u_bound > 2.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "u_bound must be in (0, 2]",
        });
    }
    let mut ts = TaskSet::new();
    let mut remaining = u_bound;
    let mut next_id = 0u32;
    const CRUMB: f64 = 1e-4;
    while remaining > CRUMB {
        if ts.len() >= cfg.max_tasks {
            return Err(TaskError::InvalidGeneratorConfig {
                reason: "max_tasks reached before the utilization target",
            });
        }
        let mut u = cfg.sample_range(rng, cfg.task_utilization);
        if u > remaining {
            u = remaining;
        }
        let high = rng.random::<f64>() < cfg.p_high;
        let id = TaskId::new(next_id);
        let task = if high {
            hc_task_checked(id, u, cfg, rng)?
        } else {
            lc_task_checked(id, u, cfg, rng)?
        };
        remaining -= if high { task.u_hi() } else { task.u_lo() };
        ts.push(task).expect("ids are sequential and unique");
        next_id += 1;
    }
    Ok(ts)
}

/// Generates a mixed task set whose **LO-mode** utilisation reaches
/// `u_bound`, with HC tasks designed the way the λ-baseline papers design
/// them: a per-task fraction `λᵢ` is drawn uniformly from `lambda_range`
/// and the task's optimistic WCET is `C_LO = λᵢ · C_HI`.
///
/// This is the Fig. 6 generator: the *visible* LO-mode demand
/// (`Σ λᵢ·uᵢ^HI` over HC tasks plus `Σ uᵢ` over LC tasks) is what reaches
/// the bound, while the *hidden* HI-mode demand `uᵢ^HI = uᵢ^LO/λᵢ` is what
/// breaks EDF-VD schedulability as the bound grows — exactly the failure
/// mode the paper's scheme avoids by re-deriving `C_LO` from `(ACET, σ)`.
///
/// # Errors
///
/// Returns an error when `u_bound` is outside (0, 2], the λ range is not
/// within (0, 1] with `lo ≤ hi`, or generation hits the `max_tasks` cap.
pub fn generate_lo_bounded_taskset<R: Rng + ?Sized>(
    u_bound: f64,
    lambda_range: (f64, f64),
    cfg: &GeneratorConfig,
    rng: &mut R,
) -> Result<TaskSet, TaskError> {
    let cfg = cfg.checked()?;
    if !u_bound.is_finite() || u_bound <= 0.0 || u_bound > 2.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "u_bound must be in (0, 2]",
        });
    }
    let (l_lo, l_hi) = lambda_range;
    if !(l_lo.is_finite() && l_hi.is_finite()) || l_lo <= 0.0 || l_hi > 1.0 || l_lo > l_hi {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "lambda range must satisfy 0 < lo <= hi <= 1",
        });
    }
    let mut ts = TaskSet::new();
    let mut remaining = u_bound;
    let mut next_id = 0u32;
    const CRUMB: f64 = 1e-4;
    while remaining > CRUMB {
        if ts.len() >= cfg.max_tasks {
            return Err(TaskError::InvalidGeneratorConfig {
                reason: "max_tasks reached before the utilization target",
            });
        }
        let high = rng.random::<f64>() < cfg.p_high;
        let id = TaskId::new(next_id);
        if high {
            // Draw the HI-mode size and the λ fraction, then express the
            // task's *LO-mode* contribution λ·u_hi toward the bound.
            let lambda = if l_hi > l_lo {
                rng.random_range(l_lo..=l_hi)
            } else {
                l_lo
            };
            let mut u_hi = cfg.sample_range(rng, cfg.task_utilization);
            if lambda * u_hi > remaining {
                u_hi = remaining / lambda;
            }
            let mut task = hc_task_checked(id, u_hi.min(1.0), cfg, rng)?;
            let c_lo = task.c_hi().mul_f64(lambda).max(Duration::from_nanos(1));
            task.set_c_lo(c_lo)?;
            remaining -= task.u_lo();
            ts.push(task).expect("ids are sequential and unique");
        } else {
            let mut u = cfg.sample_range(rng, cfg.task_utilization);
            if u > remaining {
                u = remaining;
            }
            let task = lc_task_checked(id, u, cfg, rng)?;
            remaining -= task.u_lo();
            ts.push(task).expect("ids are sequential and unique");
        }
        next_id += 1;
    }
    Ok(ts)
}

/// The UUniFast algorithm (Bini & Buttazzo): draws `n` per-task utilisations
/// that sum exactly to `total` with an unbiased uniform distribution over
/// the simplex.
///
/// # Errors
///
/// Returns an error when `n == 0` or `total` is not strictly positive.
pub fn uunifast<R: Rng + ?Sized>(n: usize, total: f64, rng: &mut R) -> Result<Vec<f64>, TaskError> {
    if n == 0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "uunifast requires at least one task",
        });
    }
    if !total.is_finite() || total <= 0.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "uunifast total utilization must be strictly positive",
        });
    }
    let mut out = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next = sum * rng.random::<f64>().powf(1.0 / (n - i) as f64);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    Ok(out)
}

/// [`uunifast`] with the standard discard rule: the whole vector is redrawn
/// while any share exceeds `cap` (per-task utilisations above 1 — or above
/// a caller-chosen ceiling — are infeasible), with a bounded retry budget
/// so an unlucky or over-constrained draw surfaces a structured error
/// instead of spinning.
///
/// # Errors
///
/// Returns [`TaskError::InvalidGeneratorConfig`] when the inputs are
/// degenerate (`n == 0`, non-positive `total`, non-positive/NaN `cap`, or
/// `total > n · cap`, which no draw can satisfy) and
/// [`TaskError::RetriesExhausted`] when `max_retries` redraws all contained
/// an over-cap share.
pub fn uunifast_capped<R: Rng + ?Sized>(
    n: usize,
    total: f64,
    cap: f64,
    max_retries: usize,
    rng: &mut R,
) -> Result<Vec<f64>, TaskError> {
    if !cap.is_finite() || cap <= 0.0 {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "uunifast cap must be strictly positive",
        });
    }
    if total > n as f64 * cap {
        return Err(TaskError::InvalidGeneratorConfig {
            reason: "uunifast total exceeds n * cap; no draw can satisfy it",
        });
    }
    for _ in 0..max_retries.max(1) {
        let us = uunifast(n, total, rng)?;
        if us.iter().all(|&u| u <= cap) {
            return Ok(us);
        }
    }
    Err(TaskError::RetriesExhausted {
        what: "UUniFast draw under the utilisation cap",
        retries: max_retries.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn default_config_is_valid() {
        GeneratorConfig::default().validate().unwrap();
    }

    #[test]
    fn config_validation_catches_bad_ranges() {
        let base = GeneratorConfig::default;
        let bad = [
            GeneratorConfig {
                period_ms: (0, 10),
                ..base()
            },
            GeneratorConfig {
                period_ms: (200, 100),
                ..base()
            },
            GeneratorConfig {
                task_utilization: (0.0, 0.5),
                ..base()
            },
            GeneratorConfig {
                task_utilization: (0.1, 1.5),
                ..base()
            },
            GeneratorConfig {
                wcet_ratio: (0.5, 2.0),
                ..base()
            },
            GeneratorConfig {
                coefficient_of_variation: (-0.1, 0.2),
                ..base()
            },
            GeneratorConfig {
                p_high: 1.5,
                ..base()
            },
            GeneratorConfig {
                max_tasks: 0,
                ..base()
            },
        ];
        for cfg in bad {
            assert!(cfg.validate().is_err(), "{cfg:?} should be invalid");
        }
    }

    #[test]
    fn inverted_and_nan_ranges_never_reach_a_sampler() {
        // Regression for the silent-coercion hazard: the samplers used to
        // live on the unchecked config, where an inverted range collapsed
        // to `lo` and a NaN bound sailed through. They now require a
        // `CheckedGeneratorConfig`, and these configs can't produce one.
        let bad = [
            GeneratorConfig {
                period_ms: (900, 100),
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                coefficient_of_variation: (f64::NAN, 0.3),
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                coefficient_of_variation: (0.02, f64::NAN),
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                wcet_ratio: (60.0, 5.0),
                ..GeneratorConfig::default()
            },
            GeneratorConfig {
                task_utilization: (0.2, f64::INFINITY),
                ..GeneratorConfig::default()
            },
        ];
        for cfg in bad {
            assert!(cfg.checked().is_err(), "{cfg:?} must not check out");
            let mut r = rng(40);
            assert!(generate_hc_task(TaskId::new(0), 0.1, &cfg, &mut r).is_err());
            assert!(generate_mixed_taskset(0.5, &cfg, &mut rng(41)).is_err());
        }
        // A degenerate-but-valid point range still samples fine.
        let point = GeneratorConfig {
            period_ms: (250, 250),
            wcet_ratio: (8.0, 8.0),
            coefficient_of_variation: (0.1, 0.1),
            ..GeneratorConfig::default()
        };
        let t = generate_hc_task(TaskId::new(0), 0.1, &point, &mut rng(42)).unwrap();
        assert_eq!(t.period(), Duration::from_millis(250));
    }

    #[test]
    fn checked_wrapper_mirrors_validate() {
        let good = GeneratorConfig::default();
        let checked = good.checked().unwrap();
        // Deref exposes the underlying config unchanged.
        assert_eq!(checked.period_ms, good.period_ms);
        let bad = GeneratorConfig {
            max_tasks: 0,
            ..GeneratorConfig::default()
        };
        assert!(bad.checked().is_err());
        assert_eq!(
            bad.checked().unwrap_err().to_string(),
            bad.validate().unwrap_err().to_string(),
        );
    }

    #[test]
    fn hc_task_has_profile_and_paper_period_range() {
        let cfg = GeneratorConfig::default();
        let mut r = rng(1);
        for i in 0..50 {
            let t = generate_hc_task(TaskId::new(i), 0.1, &cfg, &mut r).unwrap();
            assert!(t.is_high());
            let p_ms = t.period().as_millis_f64();
            assert!((100.0..=900.0).contains(&p_ms), "period {p_ms} ms");
            assert!((t.u_hi() - 0.1).abs() < 1e-6);
            assert_eq!(t.c_lo(), t.c_hi(), "C_LO starts pessimistic");
            let profile = t.profile().expect("HC tasks carry a profile");
            assert!(profile.acet() > 0.0);
            assert!(profile.wcet_pes() >= profile.acet());
            let ratio = profile.wcet_ratio();
            assert!((5.0..=60.0).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn lc_task_has_no_profile() {
        let cfg = GeneratorConfig::default();
        let mut r = rng(2);
        let t = generate_lc_task(TaskId::new(0), 0.05, &cfg, &mut r).unwrap();
        assert!(!t.is_high());
        assert!(t.profile().is_none());
        assert!((t.u_lo() - 0.05).abs() < 1e-6);
    }

    #[test]
    fn utilization_out_of_range_is_rejected() {
        let cfg = GeneratorConfig::default();
        let mut r = rng(3);
        assert!(generate_hc_task(TaskId::new(0), 0.0, &cfg, &mut r).is_err());
        assert!(generate_hc_task(TaskId::new(0), 1.5, &cfg, &mut r).is_err());
        assert!(generate_lc_task(TaskId::new(0), -0.1, &cfg, &mut r).is_err());
    }

    #[test]
    fn hc_taskset_hits_the_target_utilization() {
        let cfg = GeneratorConfig::default();
        for seed in 0..20 {
            let mut r = rng(seed);
            let target = 0.4 + 0.025 * (seed % 20) as f64;
            let ts = generate_hc_taskset(target, &cfg, &mut r).unwrap();
            assert!(
                (ts.u_hc_hi() - target).abs() < 2e-3,
                "seed {seed}: got {} want {target}",
                ts.u_hc_hi()
            );
            assert_eq!(ts.lc_count(), 0);
            assert!(!ts.is_empty());
        }
    }

    #[test]
    fn mixed_taskset_hits_the_bound_and_mixes_criticalities() {
        let cfg = GeneratorConfig::default();
        let mut hc_total = 0usize;
        let mut lc_total = 0usize;
        for seed in 100..120 {
            let mut r = rng(seed);
            let ts = generate_mixed_taskset(0.8, &cfg, &mut r).unwrap();
            let bound_u = ts.u_hc_hi() + ts.u_lc_lo();
            assert!((bound_u - 0.8).abs() < 2e-3, "seed {seed}: {bound_u}");
            hc_total += ts.hc_count();
            lc_total += ts.lc_count();
        }
        // With p_high = 0.5 over 20 sets both kinds must appear.
        assert!(hc_total > 0 && lc_total > 0);
        let frac = hc_total as f64 / (hc_total + lc_total) as f64;
        assert!((0.3..0.7).contains(&frac), "HC fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::default();
        let a = generate_mixed_taskset(0.6, &cfg, &mut rng(7)).unwrap();
        let b = generate_mixed_taskset(0.6, &cfg, &mut rng(7)).unwrap();
        assert_eq!(a, b);
        let c = generate_mixed_taskset(0.6, &cfg, &mut rng(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn max_tasks_cap_fires() {
        let cfg = GeneratorConfig {
            max_tasks: 2,
            task_utilization: (0.02, 0.05),
            ..GeneratorConfig::default()
        };
        let mut r = rng(9);
        assert!(generate_hc_taskset(0.9, &cfg, &mut r).is_err());
    }

    #[test]
    fn lo_bounded_taskset_hits_the_lo_bound() {
        let cfg = GeneratorConfig::default();
        for seed in 0..15u64 {
            let mut r = rng(300 + seed);
            let ts = generate_lo_bounded_taskset(0.9, (0.25, 1.0), &cfg, &mut r).unwrap();
            let u_lo = ts.u_total_lo();
            assert!((u_lo - 0.9).abs() < 5e-3, "seed {seed}: U_LO = {u_lo}");
            // The hidden HI-mode demand exceeds the visible LO-mode demand.
            assert!(ts.u_hc_hi() >= ts.u_hc_lo());
            for t in ts.hc_tasks() {
                let lambda = t.c_lo().as_nanos() as f64 / t.c_hi().as_nanos() as f64;
                assert!(
                    (0.24..=1.01).contains(&lambda),
                    "seed {seed}: lambda {lambda}"
                );
                assert!(t.profile().is_some());
            }
        }
    }

    #[test]
    fn lo_bounded_taskset_validates_input() {
        let cfg = GeneratorConfig::default();
        let mut r = rng(0);
        assert!(generate_lo_bounded_taskset(0.0, (0.25, 1.0), &cfg, &mut r).is_err());
        assert!(generate_lo_bounded_taskset(0.5, (0.0, 1.0), &cfg, &mut r).is_err());
        assert!(generate_lo_bounded_taskset(0.5, (0.5, 0.25), &cfg, &mut r).is_err());
        assert!(generate_lo_bounded_taskset(0.5, (0.5, 1.5), &cfg, &mut r).is_err());
    }

    #[test]
    fn uunifast_sums_to_total() {
        let mut r = rng(10);
        for n in [1usize, 2, 5, 20] {
            let us = uunifast(n, 0.75, &mut r).unwrap();
            assert_eq!(us.len(), n);
            let sum: f64 = us.iter().sum();
            assert!((sum - 0.75).abs() < 1e-9, "n={n}: sum {sum}");
            assert!(us.iter().all(|&u| u >= 0.0));
        }
    }

    #[test]
    fn uunifast_rejects_degenerate_input() {
        let mut r = rng(11);
        assert!(uunifast(0, 0.5, &mut r).is_err());
        assert!(uunifast(3, 0.0, &mut r).is_err());
        assert!(uunifast(3, f64::NAN, &mut r).is_err());
    }

    #[test]
    fn uunifast_is_byte_stable_per_seed() {
        let a = uunifast(12, 0.8, &mut rng(99)).unwrap();
        let b = uunifast(12, 0.8, &mut rng(99)).unwrap();
        // Bitwise equality, not approximate: the campaign seed contract
        // relies on identical draws producing identical bytes.
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn uunifast_capped_discards_over_cap_draws() {
        // A loose cap accepts the first draw; a tight-but-feasible cap
        // forces the discard loop to actually fire and still terminate.
        let mut r = rng(12);
        let us = uunifast_capped(8, 0.9, 1.0, 64, &mut r).unwrap();
        assert!((us.iter().sum::<f64>() - 0.9).abs() < 1e-9);
        let mut r = rng(12);
        let tight = uunifast_capped(4, 1.2, 0.4, 10_000, &mut r).unwrap();
        assert!((tight.iter().sum::<f64>() - 1.2).abs() < 1e-9);
        assert!(tight.iter().all(|&u| (0.0..=0.4).contains(&u)));
    }

    #[test]
    fn uunifast_capped_surfaces_structured_errors() {
        let mut r = rng(13);
        // Infeasible outright: total > n * cap.
        assert_eq!(
            uunifast_capped(4, 2.5, 0.5, 100, &mut r),
            Err(TaskError::InvalidGeneratorConfig {
                reason: "uunifast total exceeds n * cap; no draw can satisfy it",
            })
        );
        assert!(uunifast_capped(4, 0.5, f64::NAN, 100, &mut r).is_err());
        assert!(uunifast_capped(4, 0.5, 0.0, 100, &mut r).is_err());
        // Feasible but vanishingly likely (needs an almost perfectly even
        // split): the bounded loop must give up with RetriesExhausted.
        let err = uunifast_capped(4, 1.99, 0.4999, 50, &mut r).unwrap_err();
        assert!(matches!(
            err,
            TaskError::RetriesExhausted { retries: 50, .. }
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn generated_sets_respect_invariants(seed in 0u64..10_000, target in 0.05..0.95f64) {
                let cfg = GeneratorConfig::default();
                let mut r = StdRng::seed_from_u64(seed);
                let ts = generate_mixed_taskset(target, &cfg, &mut r).unwrap();
                for t in &ts {
                    prop_assert!(t.u_hi() <= 1.0 + 1e-9);
                    prop_assert!(t.c_lo() <= t.c_hi());
                    if t.is_high() {
                        let p = t.profile().unwrap();
                        prop_assert!(p.acet() <= p.wcet_pes());
                        prop_assert!(p.sigma() >= 0.0);
                        // Eq. 9 is satisfiable: at n = 1 the level stays below WCET_pes.
                        prop_assert!(p.level(1.0) <= p.wcet_pes() + 1e-6);
                    }
                }
                let bound_u = ts.u_hc_hi() + ts.u_lc_lo();
                prop_assert!((bound_u - target).abs() < 5e-3);
            }

            #[test]
            fn uunifast_is_a_probability_partition(
                seed in 0u64..10_000,
                n in 1usize..30,
                total in 0.01..1.0f64,
            ) {
                let mut r = StdRng::seed_from_u64(seed);
                let us = uunifast(n, total, &mut r).unwrap();
                let sum: f64 = us.iter().sum();
                prop_assert!((sum - total).abs() < 1e-9);
                prop_assert!(us.iter().all(|&u| (0.0..=total + 1e-12).contains(&u)));
            }
        }
    }
}
