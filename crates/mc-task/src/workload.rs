//! Workload files: validated JSON (de)serialisation of task sets.
//!
//! `serde` derives alone would let a hand-edited JSON file smuggle in tasks
//! that violate the model invariants (`c_lo > c_hi`, zero periods, …), so
//! loading goes through [`McTask::validate`]/[`Workload::load_json`], which
//! re-checks every invariant the builders enforce.

use crate::task::McTask;
use crate::taskset::TaskSet;
use crate::TaskError;
use serde::{Deserialize, Serialize};

/// A named, documented task set — the on-disk unit of exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Workload name.
    pub name: String,
    /// Free-form description (provenance, units, assumptions).
    pub description: String,
    /// The tasks.
    pub tasks: TaskSet,
}

impl McTask {
    /// Re-checks every invariant the builder enforces — used when a task
    /// arrives from an untrusted source (deserialisation).
    ///
    /// # Errors
    ///
    /// Returns the same errors [`crate::task::McTaskBuilder::build`] would.
    pub fn validate(&self) -> Result<(), TaskError> {
        let mut builder = McTask::builder(self.id())
            .name(self.name().to_string())
            .criticality(self.criticality())
            .period(self.period())
            .deadline(self.deadline())
            .c_lo(self.c_lo());
        if self.criticality().is_high() {
            builder = builder.c_hi(self.c_hi());
        }
        if let Some(p) = self.profile() {
            builder = builder.profile(*p);
        }
        let rebuilt = builder.build()?;
        debug_assert_eq!(&rebuilt, self);
        Ok(())
    }
}

impl Workload {
    /// Wraps a task set with a name and description.
    pub fn new(name: impl Into<String>, description: impl Into<String>, tasks: TaskSet) -> Self {
        Workload {
            name: name.into(),
            description: description.into(),
            tasks,
        }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when encoding fails
    /// (practically unreachable for valid workloads).
    pub fn to_json(&self) -> Result<String, TaskError> {
        serde_json::to_string_pretty(self).map_err(|_| TaskError::InvalidGeneratorConfig {
            reason: "workload serialisation failed",
        })
    }

    /// Parses and **re-validates** a workload from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] for malformed JSON and
    /// any task/set invariant error for well-formed but invalid content.
    pub fn load_json(json: &str) -> Result<Self, TaskError> {
        let raw: Workload =
            serde_json::from_str(json).map_err(|_| TaskError::InvalidGeneratorConfig {
                reason: "workload JSON is malformed",
            })?;
        for task in raw.tasks.iter() {
            task.validate()?;
        }
        // Re-run set-level validation (duplicate ids) too.
        let tasks = TaskSet::from_tasks(raw.tasks.tasks().to_vec())?;
        Ok(Workload {
            name: raw.name,
            description: raw.description,
            tasks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::criticality::Criticality;
    use crate::profile::ExecutionProfile;
    use crate::task::TaskId;
    use crate::time::Duration;

    fn sample() -> Workload {
        let mut ts = TaskSet::new();
        ts.push(
            McTask::builder(TaskId::new(0))
                .name("ctrl")
                .criticality(Criticality::Hi)
                .period(Duration::from_millis(100))
                .c_lo(Duration::from_millis(10))
                .c_hi(Duration::from_millis(40))
                .profile(ExecutionProfile::new(3.0e6, 1.0e6, 40.0e6).unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        ts.push(
            McTask::builder(TaskId::new(1))
                .name("ui")
                .period(Duration::from_millis(200))
                .c_lo(Duration::from_millis(20))
                .build()
                .unwrap(),
        )
        .unwrap();
        Workload::new("demo", "two-task example", ts)
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let w = sample();
        let json = w.to_json().unwrap();
        let back = Workload::load_json(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Workload::load_json("{").is_err());
        assert!(Workload::load_json("42").is_err());
    }

    #[test]
    fn invariant_violations_survive_no_deserialisation() {
        // Craft a JSON with c_lo > c_hi by string surgery on a valid file.
        let w = sample();
        let json = w.to_json().unwrap();
        let evil = json.replacen("10000000", "90000000", 1); // c_lo 10 ms → 90 ms
        let err = Workload::load_json(&evil);
        assert!(err.is_err(), "c_lo > c_hi must be rejected: {err:?}");
    }

    #[test]
    fn duplicate_ids_in_json_are_rejected() {
        let w = sample();
        let mut json = w.to_json().unwrap();
        // Make both tasks claim id 0.
        json = json.replace("\"id\": 1", "\"id\": 0");
        assert!(Workload::load_json(&json).is_err());
    }

    #[test]
    fn validate_accepts_builder_output() {
        for task in sample().tasks.iter() {
            task.validate().unwrap();
        }
    }
}
