//! Integer time types for cycle-exact simulation.
//!
//! The discrete-event simulator in `mc-sched` must be free of floating-point
//! drift: two jobs released at `k · P` for integer `k` must compare exactly
//! equal. [`Duration`] and [`Instant`] are thin newtypes over unsigned
//! nanoseconds with checked arithmetic; floating-point views are provided at
//! the boundary for utilisation computations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A span of time in integer nanoseconds.
///
/// # Example
///
/// ```
/// use mc_task::time::Duration;
///
/// let period = Duration::from_millis(100);
/// let wcet = Duration::from_micros(2_500);
/// assert!((wcet.ratio(period) - 0.025).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable duration (~584 years).
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a duration of `us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow (more than ~584 000 years of microseconds).
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a duration of `s` whole seconds.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics when `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self::try_from_secs_f64(secs).expect("seconds must be finite, non-negative and in range")
    }

    /// Fallible variant of [`Duration::from_secs_f64`]; returns `None` on
    /// negative, non-finite, or out-of-range input.
    pub fn try_from_secs_f64(secs: f64) -> Option<Self> {
        if !secs.is_finite() || secs < 0.0 {
            return None;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            return None;
        }
        Some(Duration(ns.round() as u64))
    }

    /// Creates a duration from fractional nanoseconds, rounding *up* — the
    /// conservative direction for WCET budgets.
    ///
    /// Returns `None` on negative, non-finite, or out-of-range input.
    pub fn try_from_nanos_f64_ceil(ns: f64) -> Option<Self> {
        if !ns.is_finite() || ns < 0.0 || ns >= u64::MAX as f64 {
            return None;
        }
        Some(Duration(ns.ceil() as u64))
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The dimensionless ratio `self / other`, e.g. a utilisation `C / P`.
    ///
    /// # Panics
    ///
    /// Panics when `other` is zero.
    pub fn ratio(self, other: Duration) -> f64 {
        assert!(other.0 != 0, "cannot take a ratio against a zero duration");
        self.0 as f64 / other.0 as f64
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_add(rhs.0).map(Duration)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        self.0.checked_sub(rhs.0).map(Duration)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by an integer factor, saturating at [`Duration::MAX`].
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// Scales by a non-negative float, rounding to nearest; saturates at
    /// [`Duration::MAX`].
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration(scaled.round() as u64)
        }
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics on overflow; use [`Duration::checked_add`] to handle it.
    fn add(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(rhs.0)
                .expect("duration addition overflowed"),
        )
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics on underflow; use [`Duration::checked_sub`] or
    /// [`Duration::saturating_sub`] to handle it.
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflowed"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics on overflow; use [`Duration::saturating_mul`] to clamp.
    fn mul(self, rhs: u64) -> Duration {
        Duration(
            self.0
                .checked_mul(rhs)
                .expect("duration multiplication overflowed"),
        )
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "0ns")
        } else if self.0.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", self.0 / 1_000_000_000)
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}ms", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A point on the simulation timeline (nanoseconds since time zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Instant(u64);

impl Instant {
    /// Time zero, the start of every simulation.
    pub const ZERO: Instant = Instant(0);
    /// The far future.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Creates an instant `ns` nanoseconds after time zero.
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since time zero.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since time zero.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics when `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Instant) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since called with a later instant"),
        )
    }

    /// Checked forward shift.
    pub fn checked_add(self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d.as_nanos()).map(Instant)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    /// # Panics
    ///
    /// Panics on overflow; use [`Instant::checked_add`] to handle it.
    fn add(self, rhs: Duration) -> Instant {
        Instant(
            self.0
                .checked_add(rhs.as_nanos())
                .expect("instant addition overflowed"),
        )
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    /// # Panics
    ///
    /// Panics when `rhs` is later than `self`.
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn float_constructors_validate() {
        assert!(Duration::try_from_secs_f64(-1.0).is_none());
        assert!(Duration::try_from_secs_f64(f64::NAN).is_none());
        assert!(Duration::try_from_secs_f64(f64::INFINITY).is_none());
        assert!(Duration::try_from_secs_f64(1e30).is_none());
        assert_eq!(
            Duration::try_from_secs_f64(1.0),
            Some(Duration::from_secs(1))
        );
    }

    #[test]
    fn ceil_constructor_rounds_up() {
        assert_eq!(
            Duration::try_from_nanos_f64_ceil(10.1),
            Some(Duration::from_nanos(11))
        );
        assert_eq!(
            Duration::try_from_nanos_f64_ceil(10.0),
            Some(Duration::from_nanos(10))
        );
        assert!(Duration::try_from_nanos_f64_ceil(-0.5).is_none());
    }

    #[test]
    fn ratio_is_utilisation() {
        let c = Duration::from_millis(25);
        let p = Duration::from_millis(100);
        assert!((c.ratio(p) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn ratio_against_zero_panics() {
        let _ = Duration::from_millis(1).ratio(Duration::ZERO);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = Duration::from_millis(30);
        let b = Duration::from_millis(12);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 3, Duration::from_millis(90));
        assert_eq!(a.saturating_sub(b), Duration::from_millis(18));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn subtraction_underflow_panics() {
        let _ = Duration::from_millis(1) - Duration::from_millis(2);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn addition_overflow_panics() {
        let _ = Duration::MAX + Duration::from_nanos(1);
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        let d = Duration::from_nanos(10);
        assert_eq!(d.mul_f64(1.5), Duration::from_nanos(15));
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
        assert_eq!(Duration::MAX.mul_f64(2.0), Duration::MAX);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = Duration::from_nanos(1).mul_f64(-1.0);
    }

    #[test]
    fn instants_order_and_subtract() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_millis(5);
        let t2 = t1 + Duration::from_millis(7);
        assert!(t0 < t1 && t1 < t2);
        assert_eq!(t2 - t0, Duration::from_millis(12));
        assert_eq!(t2.duration_since(t1), Duration::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn duration_since_later_panics() {
        let t1 = Instant::from_nanos(10);
        let t2 = Instant::from_nanos(20);
        let _ = t1.duration_since(t2);
    }

    #[test]
    fn display_picks_the_tightest_unit() {
        assert_eq!(Duration::ZERO.to_string(), "0ns");
        assert_eq!(Duration::from_nanos(17).to_string(), "17ns");
        assert_eq!(Duration::from_micros(3).to_string(), "3us");
        assert_eq!(Duration::from_millis(40).to_string(), "40ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2s");
        assert_eq!(
            (Instant::ZERO + Duration::from_millis(1)).to_string(),
            "t+1ms"
        );
    }

    #[test]
    fn periodic_releases_are_exact() {
        // The motivating property: k-th release of a 100 ms task is exactly
        // k · 100 ms with no float drift.
        let period = Duration::from_millis(100);
        let mut t = Instant::ZERO;
        for _ in 0..1_000_000 {
            t += period;
        }
        assert_eq!(t.as_nanos(), 100_000_000u64 * 1_000_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn add_sub_round_trip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
                let da = Duration::from_nanos(a);
                let db = Duration::from_nanos(b);
                prop_assert_eq!(da + db - db, da);
            }

            #[test]
            fn ratio_times_denominator_recovers_numerator(
                c in 1u64..1_000_000_000,
                p in 1u64..1_000_000_000,
            ) {
                let r = Duration::from_nanos(c).ratio(Duration::from_nanos(p));
                prop_assert!((r * p as f64 - c as f64).abs() < 1e-3);
            }

            #[test]
            fn display_round_trips_through_nanos(ns in 0u64..1_000_000_000_000) {
                // Display never loses the underlying value's identity.
                let d = Duration::from_nanos(ns);
                prop_assert_eq!(d.as_nanos(), ns);
            }

            #[test]
            fn instant_ordering_is_consistent_with_nanos(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
                let ia = Instant::from_nanos(a);
                let ib = Instant::from_nanos(b);
                prop_assert_eq!(ia < ib, a < b);
            }
        }
    }
}
