//! Deterministic shared worker pool for the `chebymc` workspace.
//!
//! Every parallel hot path in the workspace — the batch pipelines that fan
//! out over synthetic task sets and the GA's per-generation fitness
//! evaluation — shares the same execution model: a fixed index range
//! `0..count`, a pure function per index, and results written to
//! per-index slots. That model is *deterministic by construction*: the
//! value at index `i` never depends on which thread computes it or in
//! which order, so output is bit-identical for any thread count.
//!
//! This crate extracts that model into two pieces:
//!
//! * [`ThreadBudget`] — an explicit thread budget. Nested parallelism
//!   (batch layer × GA layer) splits one budget instead of oversubscribing
//!   the machine: the outer fan-out claims its workers via
//!   [`ThreadBudget::split`] and hands each job the remaining per-job
//!   budget (usually 1, i.e. a serial inner GA).
//! * [`WorkerPool`] — a persistent pool of parked worker threads. Workers
//!   are spawned once and reused across dispatches (a GA reuses one pool
//!   for all its generations; a batch pipeline for all its utilisation
//!   points), so the per-dispatch cost is a wake/park cycle, not a thread
//!   spawn. The calling thread always participates in the work, so a pool
//!   of budget `n` uses `n − 1` spawned workers and dispatching on a
//!   busy/empty pool can never deadlock.
//!
//! Work is distributed by an atomic chunk cursor (dynamic self-scheduling),
//! which balances uneven per-index cost without affecting results.
//!
//! # Example
//!
//! ```
//! use mc_par::{ThreadBudget, WorkerPool};
//!
//! let pool = WorkerPool::with_budget(ThreadBudget::explicit(4));
//! let mut squares = vec![0u64; 1000];
//! pool.fill(&mut squares, |i| (i as u64) * (i as u64));
//! assert_eq!(squares[31], 961);
//! ```

#![warn(missing_docs)]

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Hard cap on any resolved thread budget, guarding against a
/// misconfigured `threads` knob spawning an absurd number of OS threads.
pub const MAX_THREADS: usize = 1024;

/// A shared view of a mutable slice for caller-proven disjoint writes.
///
/// [`WorkerPool::for_each`] hands every index to exactly one thread, which
/// makes "each thread writes its own slots" sound — but the borrow checker
/// cannot see that, so parallel scatter-writes need a raw-pointer escape
/// hatch. `DisjointSlice` packages that escape hatch once, with the
/// obligations spelled out, instead of each call site re-deriving its own
/// `*mut T` wrapper.
///
/// The wrapper borrows the slice mutably for `'a`, so no other access to
/// the underlying data can exist while it is alive; the only aliasing risk
/// left is between concurrent [`write`](Self::write) /
/// [`slice_mut`](Self::slice_mut) calls, which the caller rules out by
/// construction (distinct indices / disjoint ranges — exactly what the
/// pool's one-thread-per-index contract provides).
///
/// ```
/// use mc_par::{DisjointSlice, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let mut out = vec![0u64; 128];
/// let slots = DisjointSlice::new(&mut out);
/// pool.for_each(slots.len(), |i| {
///     // SAFETY: the pool claims each index exactly once, so no two
///     // threads ever write the same slot.
///     unsafe { slots.write(i, (i as u64) * 3) };
/// });
/// assert_eq!(out[100], 300);
/// ```
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: sharing the wrapper across threads only enables `unsafe` writes
// whose disjointness the caller must prove; `T: Send` ensures the values
// themselves may be constructed on one thread and dropped on another.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}
// SAFETY: the wrapper owns a unique borrow of the slice; moving that
// borrow to another thread is safe for `T: Send` (same rule as `&mut [T]`).
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}

impl<'a, T: Send> DisjointSlice<'a, T> {
    /// Wraps `slice` for disjoint parallel writes. The slice stays
    /// exclusively borrowed until the wrapper is dropped.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: std::marker::PhantomData,
        }
    }

    /// Length of the wrapped slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `value` into slot `idx`, dropping the previous value in
    /// place. Out-of-bounds indices panic.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access slot `idx` (the usual
    /// pattern: `idx` comes off a [`WorkerPool`] dispatch, which claims
    /// each index exactly once).
    // SAFETY: obligations are on the caller, stated in `# Safety` above.
    pub unsafe fn write(&self, idx: usize, value: T) {
        assert!(idx < self.len, "index {idx} out of bounds ({})", self.len);
        // SAFETY: bounds just checked; exclusivity of the slot is the
        // caller's contract; the previous value is initialised (the
        // wrapper was built from a live slice), so plain assignment drops
        // it correctly.
        unsafe { *self.ptr.add(idx) = value };
    }

    /// Reborrows `len` slots starting at `start` as a mutable subslice.
    /// Out-of-bounds ranges panic.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access any slot in
    /// `start..start + len` — concurrent callers must hold ranges that are
    /// pairwise disjoint (e.g. per-index rows of a flattened matrix).
    // SAFETY: obligations are on the caller, stated in `# Safety` above.
    #[allow(clippy::mut_from_ref)] // the shared-ref-to-mut escape is the point
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        assert!(
            start <= self.len && len <= self.len - start,
            "range {start}..{} out of bounds ({})",
            start + len,
            self.len
        );
        // SAFETY: bounds just checked; the caller guarantees no concurrent
        // access to this range, so a unique reborrow is sound for as long
        // as the wrapper's borrow of the underlying slice.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

/// An explicit thread budget for one layer of parallelism.
///
/// A budget is the *total* number of threads a computation may occupy,
/// including the calling thread. Budgets make nested parallelism additive
/// rather than multiplicative: an outer fan-out [`split`](Self::split)s
/// its budget across jobs, and each job runs its inner parallelism within
/// the returned per-job budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBudget {
    threads: usize,
}

impl ThreadBudget {
    /// The machine's available parallelism (at least 1).
    pub fn available() -> Self {
        ThreadBudget {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_THREADS),
        }
    }

    /// A single-threaded budget.
    pub fn serial() -> Self {
        ThreadBudget { threads: 1 }
    }

    /// The workspace's `threads` knob convention: `0` means "all available
    /// cores", any other value is taken literally (capped at
    /// [`MAX_THREADS`]).
    pub fn explicit(threads: usize) -> Self {
        if threads == 0 {
            Self::available()
        } else {
            ThreadBudget {
                threads: threads.min(MAX_THREADS),
            }
        }
    }

    /// The number of threads in the budget (≥ 1).
    pub fn get(self) -> usize {
        self.threads
    }

    /// Splits the budget over an outer fan-out of `jobs` independent jobs.
    ///
    /// Returns `(outer, inner)`: the number of workers the outer layer
    /// should run, and the budget each job may use internally. The product
    /// `outer × inner.get()` never exceeds the original budget, so nested
    /// parallelism cannot oversubscribe.
    pub fn split(self, jobs: usize) -> (usize, ThreadBudget) {
        let outer = self.threads.min(jobs.max(1));
        let inner = ThreadBudget {
            threads: (self.threads / outer).max(1),
        };
        (outer, inner)
    }
}

impl Default for ThreadBudget {
    /// Defaults to [`ThreadBudget::available`].
    fn default() -> Self {
        Self::available()
    }
}

/// Lifetime-erased pointer to the job closure. Sound because
/// [`WorkerPool::for_each_dyn`] blocks until every worker has finished
/// with the job before returning (or unwinding), so the pointee outlives
/// all uses.
struct FnPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from many threads are safe)
// and the pointer itself is only dereferenced while the owning call frame
// is alive (see `FnPtr` docs), so sending the pointer between threads is
// safe.
unsafe impl Send for FnPtr {}

/// One published dispatch: the erased closure, the index count, and the
/// chunk size workers grab at a time.
struct Job {
    f: FnPtr,
    count: usize,
    chunk: usize,
}

struct State {
    /// Bumped once per dispatch so each worker runs each job exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers still owing a decrement for the current job.
    active: usize,
    shutdown: bool,
    /// First worker panic, rethrown on the calling thread.
    panic: Option<Box<dyn Any + Send + 'static>>,
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    done: Condvar,
    /// Next unclaimed index of the current job.
    cursor: AtomicUsize,
}

/// Locks a mutex, ignoring poisoning (state updates are panic-free; job
/// panics are caught before the lock is taken).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Claims chunks of `0..count` off the shared cursor and applies `f`.
///
/// When tracing is on, each claimed chunk's latency lands in the
/// `par.chunk_ns` histogram (per-thread buffers, so workers never contend
/// recording it). The enabled check is hoisted out of the claim loop.
fn drain(f: &(dyn Fn(usize) + Sync), count: usize, chunk: usize, cursor: &AtomicUsize) {
    let traced = mc_obs::is_enabled();
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= count {
            return;
        }
        let t0 = if traced { mc_obs::now_ns() } else { 0 };
        for i in start..(start + chunk).min(count) {
            f(i);
        }
        if traced {
            mc_obs::record_f64("par.chunk_ns", mc_obs::now_ns().saturating_sub(t0) as f64);
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let (job, epoch) = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    let job = st.job.as_ref().expect("a new epoch always carries a job");
                    break (
                        Job {
                            f: FnPtr(job.f.0),
                            count: job.count,
                            chunk: job.chunk,
                        },
                        st.epoch,
                    );
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        seen = epoch;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: `for_each_dyn` keeps the closure alive until this
            // worker decrements `active` below.
            let f = unsafe { &*job.f.0 };
            drain(f, job.count, job.chunk, &shared.cursor);
        }));
        let mut st = lock(&shared.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_all();
        }
    }
}

/// A persistent, deterministic worker pool.
///
/// See the [crate docs](crate) for the execution model. The pool is safe
/// to share (`&WorkerPool` dispatches take an internal run lock and are
/// serialised), and dropping it parks, wakes, and joins all workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serialises concurrent dispatches; the single-job protocol supports
    /// one in-flight job at a time.
    run_lock: Mutex<()>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// A pool with the given total parallelism (`0` = all available
    /// cores). A pool of `n` threads spawns `n − 1` workers; the calling
    /// thread supplies the last lane during dispatches.
    pub fn new(threads: usize) -> Self {
        Self::with_budget(ThreadBudget::explicit(threads))
    }

    /// A pool sized to a [`ThreadBudget`].
    pub fn with_budget(budget: ThreadBudget) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let workers = budget.get().saturating_sub(1);
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mc-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawn")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            run_lock: Mutex::new(()),
        }
    }

    /// A pool that runs everything inline on the calling thread.
    pub fn serial() -> Self {
        Self::with_budget(ThreadBudget::serial())
    }

    /// Total parallelism of the pool, including the calling thread.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Applies `f` to every index in `0..count`, fanning out over the
    /// pool. Returns once every index has been processed. A panic inside
    /// `f` is rethrown here after all workers have quiesced.
    ///
    /// `f` must be safe to call concurrently for distinct indices; each
    /// index is processed exactly once.
    pub fn for_each<F>(&self, count: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_dyn(count, &f);
    }

    fn for_each_dyn(&self, count: usize, f: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        let _span = mc_obs::span("par.dispatch");
        if mc_obs::is_enabled() {
            // "Queue depth" for a cursor-fed pool is the number of indices
            // published per dispatch: how much work the wake fans out over.
            mc_obs::counter("par.indices", count as u64);
            mc_obs::record_f64("par.queue_depth", count as f64);
        }
        if self.handles.is_empty() || count == 1 {
            for i in 0..count {
                f(i);
            }
            return;
        }
        let _dispatch = lock(&self.run_lock);
        // Several chunks per lane so uneven per-index cost still balances.
        let chunk = (count / (4 * self.threads())).max(1);
        // SAFETY: only the lifetime is erased; the pointer is dropped from
        // `State` before this frame returns (see the wait loop below).
        let ptr = FnPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
                f,
            )
        });
        {
            let mut st = lock(&self.shared.state);
            self.shared.cursor.store(0, Ordering::Relaxed);
            st.job = Some(Job {
                f: ptr,
                count,
                chunk,
            });
            st.active = self.handles.len();
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.work.notify_all();
        }
        // The caller is a full work lane: with all workers busy elsewhere
        // progress is still guaranteed, so nested/queued dispatches cannot
        // deadlock.
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drain(f, count, chunk, &self.shared.cursor);
        }));
        let worker_panic = {
            let mut st = lock(&self.shared.state);
            while st.active > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Like [`WorkerPool::for_each`], but `f` returns a *continue* flag:
    /// returning `false` requests cancellation. Indices already claimed
    /// keep running to completion; unclaimed chunks are skipped. Whether
    /// trailing indices run after a `false` depends on thread timing, so
    /// this is only for abandoning work whose results no longer matter
    /// (a failed campaign unit, say) — never for results that feed later
    /// computation.
    ///
    /// Returns `true` when every index ran without any cancellation
    /// request, `false` when at least one call returned `false`.
    pub fn for_each_while<F>(&self, count: usize, f: F) -> bool
    where
        F: Fn(usize) -> bool + Sync,
    {
        let stop = AtomicBool::new(false);
        self.for_each(count, |i| {
            if !stop.load(Ordering::Relaxed) && !f(i) {
                stop.store(true, Ordering::Relaxed);
            }
        });
        !stop.load(Ordering::Relaxed)
    }

    /// Computes `out[i] = f(i)` for every slot of `out` in parallel.
    ///
    /// This is the allocation-free workhorse behind the GA's fitness
    /// evaluation and the batch pipelines: callers keep reusable output
    /// buffers and the pool scatters results straight into them.
    pub fn fill<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Serial fast path, fully monomorphized: the parallel route erases
        // `f` to `&dyn Fn` for dispatch, which blocks inlining — too
        // expensive when the pool has no workers and `f` is a few
        // nanoseconds of arithmetic (the GA's objective, say).
        if self.handles.is_empty() || out.len() <= 1 {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(i);
            }
            return;
        }
        let slots = DisjointSlice::new(out);
        let slots = &slots;
        self.for_each(slots.len(), |i| {
            let value = f(i);
            // SAFETY: `for_each` hands each index to exactly one thread,
            // so this thread is the sole writer of slot `i`.
            unsafe { slots.write(i, value) };
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn budget_resolution() {
        assert_eq!(ThreadBudget::serial().get(), 1);
        assert!(ThreadBudget::available().get() >= 1);
        assert_eq!(ThreadBudget::explicit(3).get(), 3);
        assert_eq!(ThreadBudget::explicit(0), ThreadBudget::available());
        assert_eq!(ThreadBudget::explicit(usize::MAX).get(), MAX_THREADS);
        assert_eq!(ThreadBudget::default(), ThreadBudget::available());
    }

    #[test]
    fn budget_split_never_oversubscribes() {
        for total in 1..=16usize {
            for jobs in 1..=40usize {
                let (outer, inner) = ThreadBudget::explicit(total).split(jobs);
                assert!(outer >= 1 && inner.get() >= 1);
                assert!(outer <= jobs.max(1));
                assert!(
                    outer * inner.get() <= total,
                    "split({total}, {jobs}) = ({outer}, {})",
                    inner.get()
                );
            }
        }
        // Degenerate fan-out: everything goes to the inner budget.
        let (outer, inner) = ThreadBudget::explicit(8).split(0);
        assert_eq!((outer, inner.get()), (1, 8));
        let (outer, inner) = ThreadBudget::explicit(8).split(2);
        assert_eq!((outer, inner.get()), (2, 4));
    }

    #[test]
    fn every_index_runs_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
            pool.for_each(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}, {threads} threads");
            }
        }
    }

    #[test]
    fn fill_is_bit_identical_across_thread_counts() {
        let f = |i: usize| ((i as f64) * 0.1).sin().exp();
        let mut reference = vec![0.0f64; 1000];
        WorkerPool::serial().fill(&mut reference, f);
        for threads in [2, 5, 8] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0.0f64; 1000];
            pool.fill(&mut out, f);
            assert!(
                reference
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let pool = WorkerPool::new(4);
        for round in 0..50usize {
            let mut out = vec![0usize; 64];
            pool.fill(&mut out, |i| i + round);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i + round));
        }
    }

    #[test]
    fn empty_and_tiny_dispatches() {
        let pool = WorkerPool::new(4);
        pool.for_each(0, |_| panic!("must not run"));
        let mut one = [0u8];
        pool.fill(&mut one, |_| 7);
        assert_eq!(one[0], 7);
    }

    #[test]
    fn for_each_while_runs_everything_without_cancellation() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            let complete = pool.for_each_while(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                true
            });
            assert!(complete);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_while_cancellation_skips_pending_work() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let ran = AtomicU64::new(0);
            let complete = pool.for_each_while(10_000, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i != 5 // cancel once index 5 is seen
            });
            assert!(!complete);
            // Index 5 is claimed early (low indices come off the cursor
            // first), so a large tail of the range must have been skipped.
            assert!(
                ran.load(Ordering::Relaxed) < 10_000,
                "{} indices ran despite cancellation ({threads} threads)",
                ran.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_each(100, |i| {
                if i == 63 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(result.is_err());
        // The pool still works after a caught panic.
        let mut out = vec![0usize; 32];
        pool.fill(&mut out, |i| i);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn nested_dispatch_from_inside_a_job_does_not_deadlock() {
        let outer = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        outer.for_each(4, |_| {
            // Each job runs its own serial inner budget, as the batch ×
            // GA layering does.
            let inner = WorkerPool::serial();
            inner.for_each(10, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn disjoint_slice_row_writes_match_serial() {
        // Each index owns a 4-slot row; parallel row writes must produce
        // exactly the serial result for any thread count.
        const ROW: usize = 4;
        let rows = 301usize;
        let fill_row = |i: usize, row: &mut [u64]| {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = (i * ROW + j) as u64 * 7;
            }
        };
        let mut reference = vec![0u64; rows * ROW];
        for i in 0..rows {
            fill_row(i, &mut reference[i * ROW..(i + 1) * ROW]);
        }
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0u64; rows * ROW];
            let slots = DisjointSlice::new(&mut out);
            pool.for_each(rows, |i| {
                // SAFETY: rows are disjoint per index and each index is
                // claimed by exactly one thread.
                let row = unsafe { slots.slice_mut(i * ROW, ROW) };
                fill_row(i, row);
            });
            assert_eq!(out, reference, "{threads} threads");
        }
    }

    #[test]
    fn disjoint_slice_drops_previous_values() {
        let mut data = vec![String::from("old"); 8];
        let slots = DisjointSlice::new(&mut data);
        for i in 0..slots.len() {
            // SAFETY: single-threaded, each index written once.
            unsafe { slots.write(i, format!("new-{i}")) };
        }
        assert_eq!(data[3], "new-3");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_slice_bounds_checked() {
        let mut data = [0u8; 4];
        let slots = DisjointSlice::new(&mut data);
        // SAFETY: single-threaded; the call must panic on bounds, not UB.
        unsafe { slots.write(4, 1) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_slice_range_bounds_checked() {
        let mut data = [0u8; 4];
        let slots = DisjointSlice::new(&mut data);
        // SAFETY: single-threaded; the call must panic on bounds, not UB.
        let _ = unsafe { slots.slice_mut(2, 3) };
    }

    #[test]
    fn shared_pool_dispatches_from_many_threads() {
        let pool = WorkerPool::new(3);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    let mut out = vec![0usize; 200];
                    pool.fill(&mut out, |i| i * t);
                    assert!(out.iter().enumerate().all(|(i, &v)| v == i * t));
                });
            }
        });
    }
}
