//! A from-scratch genetic algorithm.
//!
//! The paper solves its WCET-assignment problem (Eq. 13) with DEAP using
//! two-point crossover, single-point mutation, and tournament selection
//! with five participants (§V: `p_c = 0.8`, `p_m = 0.2`). This module
//! implements exactly that algorithm over bounded real-valued chromosomes,
//! generic in the fitness function, fully deterministic per seed.
//!
//! # Hot-path architecture
//!
//! The inner loop is allocation-free and parallel:
//!
//! * The population lives in one flat strided
//!   [`FlatPopulation`](crate::incremental::FlatPopulation) (individual
//!   `i` occupies `[i·genes, (i+1)·genes)`), double-buffered across
//!   generations — variation writes offspring straight into the back
//!   buffer and the buffers swap, so no per-individual `Vec` is ever
//!   cloned.
//! * Fitness evaluation goes through a pluggable backend. The generic
//!   closure backend memoises genome → fitness and fans misses out over a
//!   shared [`mc_par::WorkerPool`] (`F: Sync`). The incremental backend
//!   (see [`crate::incremental`]) instead tracks each child's
//!   *provenance* — parent, crossover span, mutated gene — and patches
//!   the parent's cached partial reductions, or carries the parent's
//!   score outright when the variation was a bitwise no-op.
//! * All randomness stays confined to the serial variation phase, so
//!   results are **bit-identical for any thread count**
//!   ([`GaConfig::threads`]), and identical across backends (a backend
//!   changes evaluation cost, never values).
//! * When a generation's evaluation work (`pending genomes × genes`)
//!   falls below [`GaConfig::serial_eval_threshold`], dispatch stays on
//!   the calling thread even on a multi-thread pool — paper-scale
//!   problems are far cheaper than a wake/park cycle.

use crate::incremental::{Block, FlatPopulation, ObjectiveCache};
use crate::OptError;
use mc_par::{DisjointSlice, ThreadBudget, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Inclusive bounds for one gene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneBounds {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound (≥ `lo`).
    pub hi: f64,
}

impl GeneBounds {
    /// Creates bounds after validating `lo ≤ hi` and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] on violation.
    pub fn new(lo: f64, hi: f64) -> Result<Self, OptError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(OptError::InvalidConfig {
                reason: "gene bounds must be finite with lo <= hi",
            });
        }
        Ok(GeneBounds { lo, hi })
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.hi > self.lo {
            rng.random_range(self.lo..=self.hi)
        } else {
            self.lo
        }
    }

    fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

/// GA hyper-parameters. Defaults match the paper's §V setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population_size: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability that a selected pair undergoes two-point crossover.
    pub crossover_probability: f64,
    /// Probability that an offspring undergoes single-point mutation.
    pub mutation_probability: f64,
    /// Participants per tournament.
    pub tournament_size: usize,
    /// Best individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for fitness evaluation: `0` = all available cores,
    /// `1` = serial. A pure performance knob — results are bit-identical
    /// for any value because the RNG never leaves the serial variation
    /// phase. Batch pipelines that already fan out over task sets force
    /// this to their per-job [`mc_par::ThreadBudget`] (usually 1) so the
    /// two layers never oversubscribe the machine.
    #[serde(default)]
    pub threads: usize,
    /// Disables the genome-keyed memo cache on the closure fitness path.
    /// Another pure performance knob: memo hits return the bit-identical
    /// value a fresh evaluation would (fitness functions are required to
    /// be pure), so results never depend on this flag.
    #[serde(default)]
    pub disable_memo: bool,
    /// Per-generation evaluation work (`pending genomes × genes`) below
    /// which dispatch stays serial even on a multi-thread pool, because
    /// the work is cheaper than waking the workers. `0` disables the
    /// fallback (always dispatch to the pool). Results are bit-identical
    /// either way; deserialized configs that omit the field get `0` (the
    /// historical always-dispatch behaviour), while
    /// [`GaConfig::default`] enables the fallback at a threshold
    /// comfortably above paper-scale generations (64 × 6 = 384).
    #[serde(default)]
    pub serial_eval_threshold: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population_size: 64,
            generations: 80,
            crossover_probability: 0.8,
            mutation_probability: 0.2,
            tournament_size: 5,
            elitism: 2,
            seed: 0,
            threads: 0,
            disable_memo: false,
            serial_eval_threshold: 8192,
        }
    }
}

impl GaConfig {
    fn validate(&self) -> Result<(), OptError> {
        let err = |reason| Err(OptError::InvalidConfig { reason });
        if self.population_size < 2 {
            return err("population_size must be at least 2");
        }
        if self.generations == 0 {
            return err("generations must be non-zero");
        }
        for (p, name) in [
            (self.crossover_probability, "crossover_probability"),
            (self.mutation_probability, "mutation_probability"),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                let _ = name;
                return err("probabilities must be in [0, 1]");
            }
        }
        if self.tournament_size == 0 || self.tournament_size > self.population_size {
            return err("tournament_size must be in [1, population_size]");
        }
        if self.elitism >= self.population_size {
            return err("elitism must be smaller than the population");
        }
        Ok(())
    }
}

/// Per-generation statistics, for convergence plots and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness in the generation.
    pub best: f64,
    /// Mean fitness of the generation.
    pub mean: f64,
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaResult {
    /// The best chromosome found across all generations.
    pub best: Vec<f64>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation convergence statistics.
    pub history: Vec<GenerationStats>,
}

/// How a run's objective evaluations were served. `considered` counts
/// every slot the GA asked a score for
/// (`full_evals + delta_evals + carried + memo_hits + batch_dups`);
/// `genes_evaluated / genes_total` is the fraction of gene-terms actually
/// folded — the incremental backend's work saving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Score requests across all generations (elites excluded — their
    /// scores carry over structurally).
    pub considered: u64,
    /// Full objective evaluations (every gene folded).
    pub full_evals: u64,
    /// Incremental evaluations (only changed blocks re-folded).
    pub delta_evals: u64,
    /// Children bitwise identical to their parent: score copied, nothing
    /// folded.
    pub carried: u64,
    /// Memo-cache hits on the closure path.
    pub memo_hits: u64,
    /// Within-generation duplicate genomes served from the batch table.
    pub batch_dups: u64,
    /// Gene-terms folded (full evaluations contribute their whole genome,
    /// deltas only the re-folded blocks).
    pub genes_evaluated: u64,
    /// Gene-terms a full-recompute evaluator would have folded
    /// (`considered × genes`).
    pub genes_total: u64,
}

/// Index sentinel in [`Provenance`]: no crossover / no mutation.
const NO_INDEX: u32 = u32::MAX;

/// Where one next-generation individual came from: its first parent and
/// the gene ranges variation may have touched. Genes outside the
/// crossover span and the mutated gene are bitwise inherited from the
/// parent (clamping is the identity on in-bounds genes), which is what
/// lets the incremental backend patch instead of recompute.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Provenance {
    parent: u32,
    x_lo: u32,
    x_hi: u32,
    mutated: u32,
}

impl Provenance {
    fn child_of(parent: usize) -> Self {
        Provenance {
            parent: parent as u32,
            x_lo: NO_INDEX,
            x_hi: NO_INDEX,
            mutated: NO_INDEX,
        }
    }

    fn parent(self) -> usize {
        self.parent as usize
    }

    /// The inclusive crossover gene span, if the pair was crossed.
    fn crossover(self) -> Option<(usize, usize)> {
        (self.x_lo != NO_INDEX).then_some((self.x_lo as usize, self.x_hi as usize))
    }

    /// The mutated gene, if the child was mutated.
    fn mutation(self) -> Option<usize> {
        (self.mutated != NO_INDEX).then_some(self.mutated as usize)
    }
}

/// The previous generation, as the evaluation backends see it: genomes,
/// scores, and the provenance of every current-generation individual
/// (indexed by *current* slot; parents index into `pop`/`scores`).
pub(crate) struct PrevGen<'a> {
    pub pop: &'a FlatPopulation,
    pub scores: &'a [f64],
    pub prov: &'a [Provenance],
}

/// One generation's fitness evaluation. Implementations must be pure in
/// the genomes: `scores[i]` may depend only on genome `i` (and, through
/// carried scores, on bitwise-identical ancestors), never on thread
/// count or evaluation order.
pub(crate) trait EvalBackend {
    /// Writes `scores[i]` for every `i ≥ skip` (slots below `skip` hold
    /// carried-over elite scores). `prev` is `None` for the initial
    /// population and the previous generation afterwards.
    fn evaluate(
        &mut self,
        pool: &WorkerPool,
        pop: &FlatPopulation,
        prev: Option<PrevGen<'_>>,
        scores: &mut [f64],
        skip: usize,
        stats: &mut EvalStats,
    );
}

/// Maximises `fitness` over chromosomes bounded by `bounds`.
///
/// Fitness values must be finite; non-finite values are treated as
/// `f64::NEG_INFINITY` (never selected).
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] for invalid hyper-parameters and
/// [`OptError::EmptyChromosome`] when `bounds` is empty.
///
/// # Example
///
/// ```
/// use mc_opt::ga::{optimize, GaConfig, GeneBounds};
///
/// # fn main() -> Result<(), mc_opt::OptError> {
/// // Maximise -(x-3)² over [0, 10]: optimum at x = 3.
/// let bounds = [GeneBounds::new(0.0, 10.0)?];
/// let result = optimize(&bounds, |c| -(c[0] - 3.0).powi(2), &GaConfig::default())?;
/// assert!((result.best[0] - 3.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn optimize<F>(bounds: &[GeneBounds], fitness: F, cfg: &GaConfig) -> Result<GaResult, OptError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    optimize_with_stats(bounds, fitness, cfg).map(|(result, _)| result)
}

/// [`optimize`], additionally reporting how the evaluations were served
/// (memo hits, batch duplicates, full evaluations).
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_with_stats<F>(
    bounds: &[GeneBounds],
    fitness: F,
    cfg: &GaConfig,
) -> Result<(GaResult, EvalStats), OptError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    cfg.validate()?;
    if bounds.is_empty() {
        return Err(OptError::EmptyChromosome);
    }
    let pool = WorkerPool::with_budget(ThreadBudget::explicit(cfg.threads));
    optimize_with_stats_pool(bounds, fitness, cfg, &pool)
}

/// [`optimize`] on a caller-supplied [`WorkerPool`], for callers that run
/// many GA instances and want to reuse one pool (and its thread budget)
/// across all of them. `cfg.threads` is ignored; the pool decides.
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_with_pool<F>(
    bounds: &[GeneBounds],
    fitness: F,
    cfg: &GaConfig,
    pool: &WorkerPool,
) -> Result<GaResult, OptError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    optimize_with_stats_pool(bounds, fitness, cfg, pool).map(|(result, _)| result)
}

/// [`optimize_with_stats`] on a caller-supplied pool.
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_with_stats_pool<F>(
    bounds: &[GeneBounds],
    fitness: F,
    cfg: &GaConfig,
    pool: &WorkerPool,
) -> Result<(GaResult, EvalStats), OptError>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let mut backend = ClosureBackend::new(&fitness, !cfg.disable_memo, cfg.serial_eval_threshold);
    run_ga(bounds, cfg, pool, &mut backend)
}

/// The GA loop shared by every backend: selection, variation, elitism and
/// provenance tracking happen here, scoring is delegated.
pub(crate) fn run_ga<B: EvalBackend>(
    bounds: &[GeneBounds],
    cfg: &GaConfig,
    pool: &WorkerPool,
    backend: &mut B,
) -> Result<(GaResult, EvalStats), OptError> {
    cfg.validate()?;
    if bounds.is_empty() {
        return Err(OptError::EmptyChromosome);
    }
    let _run_span = mc_obs::span("ga.run");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let genes = bounds.len();
    let pop_n = cfg.population_size;

    // Flat strided population, double-buffered: `pop` is the current
    // generation, `next` the one under construction. Scores ride along in
    // matching buffers so elite fitness carries over without re-evaluation.
    let mut pop = FlatPopulation::zeroed(pop_n, genes);
    let mut next = FlatPopulation::zeroed(pop_n, genes);
    let mut scores = vec![0.0f64; pop_n];
    let mut next_scores = vec![0.0f64; pop_n];
    // Overflow slot: the last pair's second child when the remaining room
    // is odd. It is bred (and consumes RNG draws) but never admitted.
    let mut spare = vec![0.0f64; genes];
    let mut order: Vec<usize> = Vec::with_capacity(pop_n);
    // Provenance of each `next` slot, for the incremental backend.
    let mut prov = vec![Provenance::child_of(0); pop_n];
    let mut stats = EvalStats::default();

    // Initial population: uniformly sampled within bounds.
    for chromosome in pop.as_mut_slice().chunks_exact_mut(genes) {
        for (x, b) in chromosome.iter_mut().zip(bounds) {
            *x = b.sample(&mut rng);
        }
    }
    stats.considered += pop_n as u64;
    stats.genes_total += (pop_n * genes) as u64;
    backend.evaluate(pool, &pop, None, &mut scores, 0, &mut stats);

    let mut best = pop.genome(0).to_vec();
    let mut best_fitness = scores[0];
    let mut history = Vec::with_capacity(cfg.generations);

    for generation in 0..cfg.generations {
        let _gen_span = mc_obs::span("ga.generation");
        // Track statistics and the all-time best.
        let mut gen_best = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for (c, &s) in pop.genomes().zip(&scores) {
            if s > best_fitness {
                best_fitness = s;
                best.copy_from_slice(c);
            }
            gen_best = gen_best.max(s);
            sum += if s.is_finite() { s } else { 0.0 };
        }
        history.push(GenerationStats {
            generation,
            best: gen_best,
            mean: sum / pop_n as f64,
        });
        // Stream the per-generation stats we already computed into the
        // trace, so convergence is visible without post-processing history.
        mc_obs::value("ga.gen_best", gen_best);
        mc_obs::value("ga.gen_mean", sum / pop_n as f64);

        // Elitism: carry the top individuals over unchanged, scores
        // included. `select_nth_unstable_by` partitions the top `elitism`
        // in O(n) instead of sorting the whole population; ties break by
        // index so the elite set (and its order, restored by the small
        // sort below) matches a stable full descending sort.
        let elites = cfg.elitism;
        order.clear();
        order.extend(0..pop_n);
        // `total_cmp` keeps the ordering well-defined even for NaN: the
        // sanitize pass makes NaN unreachable today, but an ordering that
        // can panic is the wrong place to rely on that invariant.
        let by_score_desc =
            |&a: &usize, &b: &usize| scores[b].total_cmp(&scores[a]).then(a.cmp(&b));
        if elites > 0 {
            if elites < pop_n {
                order.select_nth_unstable_by(elites - 1, by_score_desc);
            }
            order[..elites].sort_unstable_by(by_score_desc);
        }
        for (slot, &i) in order[..elites].iter().enumerate() {
            next.genome_mut(slot).copy_from_slice(pop.genome(i));
            next_scores[slot] = scores[i];
            prov[slot] = Provenance::child_of(i);
        }

        // Fill the rest via tournament selection + variation. All RNG
        // draws happen here, on one serial stream.
        let mut filled = elites;
        while filled < pop_n {
            let a = tournament(&scores, cfg.tournament_size, &mut rng);
            let b = tournament(&scores, cfg.tournament_size, &mut rng);
            let paired = filled + 1 < pop_n;
            let (head, tail) = next.as_mut_slice().split_at_mut((filled + 1) * genes);
            let child1 = &mut head[filled * genes..];
            let child2: &mut [f64] = if paired {
                &mut tail[..genes]
            } else {
                &mut spare[..]
            };
            child1.copy_from_slice(pop.genome(a));
            child2.copy_from_slice(pop.genome(b));
            let mut pv1 = Provenance::child_of(a);
            let mut pv2 = Provenance::child_of(b);
            if rng.random::<f64>() < cfg.crossover_probability {
                let (p1, p2) = two_point_crossover(child1, child2, &mut rng);
                (pv1.x_lo, pv1.x_hi) = (p1 as u32, p2 as u32);
                (pv2.x_lo, pv2.x_hi) = (p1 as u32, p2 as u32);
            }
            for (child, pv) in [(&mut *child1, &mut pv1), (child2, &mut pv2)] {
                if rng.random::<f64>() < cfg.mutation_probability {
                    let g = rng.random_range(0..genes);
                    child[g] = bounds[g].sample(&mut rng);
                    pv.mutated = g as u32;
                }
                for (x, b) in child.iter_mut().zip(bounds) {
                    *x = b.clamp(*x);
                }
            }
            prov[filled] = pv1;
            if paired {
                prov[filled + 1] = pv2;
            }
            filled += if paired { 2 } else { 1 };
        }

        std::mem::swap(&mut pop, &mut next);
        std::mem::swap(&mut scores, &mut next_scores);
        stats.considered += (pop_n - elites) as u64;
        stats.genes_total += ((pop_n - elites) * genes) as u64;
        backend.evaluate(
            pool,
            &pop,
            Some(PrevGen {
                pop: &next,
                scores: &next_scores,
                prov: &prov,
            }),
            &mut scores,
            elites,
            &mut stats,
        );
    }

    // Final sweep over the last generation.
    for (c, &s) in pop.genomes().zip(&scores) {
        if s > best_fitness {
            best_fitness = s;
            best.copy_from_slice(c);
        }
    }

    Ok((
        GaResult {
            best,
            best_fitness,
            history,
        },
        stats,
    ))
}

/// Clamps non-finite fitness to `NEG_INFINITY` (never selected).
fn sanitize(f: f64) -> f64 {
    if f.is_finite() {
        f
    } else {
        f64::NEG_INFINITY
    }
}

/// Entries past this point evict the whole cache — a backstop for huge
/// search budgets, far above the paper-scale 64 × 80 runs.
const MEMO_CAPACITY: usize = 1 << 17;

/// Hashes a chromosome's IEEE-754 bit patterns with a SplitMix-style
/// multiplicative mix. The WCET objective is only a handful of FMAs per
/// task, so a memo probe must cost nanoseconds to pay for itself —
/// SipHash (or hashing the genome more than once per evaluation) would
/// cost more than the evaluations it saves. Genome bit patterns are not
/// attacker-controlled, so a fast non-cryptographic mix is safe here.
fn hash_genome(chromosome: &[f64]) -> u64 {
    let mut h = 0xA076_1D64_78BD_642Fu64;
    for x in chromosome {
        h = (h ^ x.to_bits())
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }
    // Final avalanche so the table's bucket index (the low bits) depends
    // on every gene.
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 31)
}

/// Slot sentinel: `offset == usize::MAX` marks an empty slot.
const EMPTY: usize = usize::MAX;

#[derive(Clone, Copy)]
struct Slot<V> {
    hash: u64,
    /// Start of the key's bit pattern in the arena, or [`EMPTY`].
    offset: usize,
    value: V,
}

/// Open-addressed genome → value table, tuned for the evaluation hot
/// path: the caller hashes each genome once (via [`hash_genome`]) and
/// passes the hash to every operation, keys live back-to-back in a
/// shared arena (no per-entry boxing), and lookups are a masked index
/// plus a linear probe. Keys are the genes' bit patterns, so a hit is
/// bit-exact: it returns the identical value a fresh evaluation would
/// (fitness functions are required to be pure).
struct GenomeTable<V> {
    /// Power-of-two slot array; load factor kept below 0.7.
    slots: Vec<Slot<V>>,
    /// Key storage: each entry's genes as `f64::to_bits`, contiguous.
    arena: Vec<u64>,
    len: usize,
}

impl<V: Copy + Default> GenomeTable<V> {
    fn new() -> Self {
        GenomeTable {
            slots: Vec::new(),
            arena: Vec::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Drops all entries but keeps the allocations.
    fn clear(&mut self) {
        self.slots.fill(Slot {
            hash: 0,
            offset: EMPTY,
            value: V::default(),
        });
        self.arena.clear();
        self.len = 0;
    }

    fn key_eq(&self, offset: usize, key: &[f64]) -> bool {
        self.arena[offset..offset + key.len()]
            .iter()
            .zip(key)
            .all(|(&stored, x)| stored == x.to_bits())
    }

    fn get(&self, hash: u64, key: &[f64]) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut idx = hash as usize & mask;
        loop {
            let slot = &self.slots[idx];
            if slot.offset == EMPTY {
                return None;
            }
            if slot.hash == hash && self.key_eq(slot.offset, key) {
                return Some(slot.value);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Inserts a key the caller has just verified absent via [`get`].
    fn insert(&mut self, hash: u64, key: &[f64], value: V) {
        if (self.len + 1) * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let offset = self.arena.len();
        self.arena.extend(key.iter().map(|x| x.to_bits()));
        let mask = self.slots.len() - 1;
        let mut idx = hash as usize & mask;
        while self.slots[idx].offset != EMPTY {
            idx = (idx + 1) & mask;
        }
        self.slots[idx] = Slot {
            hash,
            offset,
            value,
        };
        self.len += 1;
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(64);
        let old = std::mem::replace(
            &mut self.slots,
            vec![
                Slot {
                    hash: 0,
                    offset: EMPTY,
                    value: V::default(),
                };
                cap
            ],
        );
        let mask = cap - 1;
        for slot in old {
            if slot.offset == EMPTY {
                continue;
            }
            let mut idx = slot.hash as usize & mask;
            while self.slots[idx].offset != EMPTY {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = slot;
        }
    }
}

/// Closure-fitness backend: memo cache plus reusable dispatch buffers, so
/// the per-generation evaluation allocates nothing on the steady path
/// (table growth amortizes away once the cache warms up).
struct ClosureBackend<'f, F> {
    fitness: &'f F,
    /// Probe/fill the memo and batch tables. Off, every slot is freshly
    /// evaluated (the memo-ablation mode).
    use_memo: bool,
    serial_threshold: usize,
    /// Genome → fitness, persistent across generations.
    memo: GenomeTable<f64>,
    /// Genome → pending slot for the current batch only. Converged
    /// populations breed many identical offspring per generation; each
    /// unique genome is dispatched exactly once.
    batch: GenomeTable<usize>,
    /// Indices whose genome missed the memo cache this round.
    pending: Vec<usize>,
    /// Their genome hashes, kept so the post-evaluation memo insert
    /// does not hash a second time.
    pending_hashes: Vec<u64>,
    /// Their freshly computed scores, filled in parallel.
    pending_scores: Vec<f64>,
    /// Within-batch duplicates: `(individual, pending slot to copy)`.
    dups: Vec<(usize, usize)>,
}

impl<'f, F> ClosureBackend<'f, F> {
    fn new(fitness: &'f F, use_memo: bool, serial_threshold: usize) -> Self {
        ClosureBackend {
            fitness,
            use_memo,
            serial_threshold,
            memo: GenomeTable::new(),
            batch: GenomeTable::new(),
            pending: Vec::new(),
            pending_hashes: Vec::new(),
            pending_scores: Vec::new(),
            dups: Vec::new(),
        }
    }
}

impl<F> EvalBackend for ClosureBackend<'_, F>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    /// Memo hits are served serially; unique misses fan out over `pool`
    /// (or stay on the calling thread below the serial threshold). Each
    /// genome is hashed exactly once per call.
    fn evaluate(
        &mut self,
        pool: &WorkerPool,
        pop: &FlatPopulation,
        _prev: Option<PrevGen<'_>>,
        scores: &mut [f64],
        skip: usize,
        stats: &mut EvalStats,
    ) {
        let _batch_span = mc_obs::span("ga.fitness_batch");
        let genes = pop.genes();
        let flat = pop.as_slice();
        self.pending.clear();
        self.pending_hashes.clear();
        self.dups.clear();
        if self.use_memo {
            self.batch.clear();
            for (i, score) in scores.iter_mut().enumerate().skip(skip) {
                let key = pop.genome(i);
                let hash = hash_genome(key);
                if let Some(cached) = self.memo.get(hash, key) {
                    *score = cached;
                } else if let Some(slot) = self.batch.get(hash, key) {
                    self.dups.push((i, slot));
                } else {
                    self.batch.insert(hash, key, self.pending.len());
                    self.pending_hashes.push(hash);
                    self.pending.push(i);
                }
            }
        } else {
            self.pending.extend(skip..scores.len());
        }
        let considered = (scores.len() - skip) as u64;
        let misses = self.pending.len() as u64;
        let dups = self.dups.len() as u64;
        stats.full_evals += misses;
        stats.memo_hits += considered - misses - dups;
        stats.batch_dups += dups;
        stats.genes_evaluated += misses * genes as u64;
        if mc_obs::is_enabled() {
            mc_obs::counter("ga.evals", misses);
            mc_obs::counter("ga.memo_hits", considered - misses - dups);
            mc_obs::counter("ga.batch_dups", dups);
        }
        self.pending_scores.resize(self.pending.len(), 0.0);
        let pending = &self.pending;
        let fitness = self.fitness;
        let score_of = |j: usize| {
            let i = pending[j];
            sanitize(fitness(&flat[i * genes..(i + 1) * genes]))
        };
        if self.serial_threshold > 0 && pending.len() * genes < self.serial_threshold {
            for (j, slot) in self.pending_scores.iter_mut().enumerate() {
                *slot = score_of(j);
            }
        } else {
            pool.fill(&mut self.pending_scores, score_of);
        }
        if self.use_memo {
            if self.memo.len() + self.pending.len() >= MEMO_CAPACITY {
                self.memo.clear();
            }
            for ((&i, &hash), &s) in self
                .pending
                .iter()
                .zip(&self.pending_hashes)
                .zip(&self.pending_scores)
            {
                scores[i] = s;
                self.memo.insert(hash, pop.genome(i), s);
            }
            for &(i, slot) in &self.dups {
                scores[i] = self.pending_scores[slot];
            }
        } else {
            for (&i, &s) in self.pending.iter().zip(&self.pending_scores) {
                scores[i] = s;
            }
        }
    }
}

/// Incremental delta-fitness backend over an
/// [`ObjectiveCache`](crate::incremental::ObjectiveCache): each
/// individual's per-block partial reductions are kept alongside its
/// genome (double-buffered the same way), children are scored by patching
/// their parent's partials, and bitwise-unchanged children carry the
/// parent's score without touching a single gene.
pub(crate) struct IncrementalBackend<'c> {
    cache: &'c ObjectiveCache,
    serial_threshold: usize,
    /// Block partials of the generation being scored (row `i` is
    /// individual `i`'s blocks).
    cur: Vec<Block>,
    /// Block partials of the previous generation.
    prev: Vec<Block>,
}

impl<'c> IncrementalBackend<'c> {
    pub(crate) fn new(cache: &'c ObjectiveCache, serial_threshold: usize) -> Self {
        IncrementalBackend {
            cache,
            serial_threshold,
            cur: Vec::new(),
            prev: Vec::new(),
        }
    }
}

impl EvalBackend for IncrementalBackend<'_> {
    fn evaluate(
        &mut self,
        pool: &WorkerPool,
        pop: &FlatPopulation,
        prev: Option<PrevGen<'_>>,
        scores: &mut [f64],
        skip: usize,
        stats: &mut EvalStats,
    ) {
        let _batch_span = mc_obs::span("ga.fitness_batch");
        let nb = self.cache.n_blocks();
        let n = scores.len();
        let genes = pop.genes();
        let serial = |work: usize| self.serial_threshold > 0 && work < self.serial_threshold;
        let Some(pg) = prev else {
            // Initial population: full evaluation, partials materialised.
            self.cur.clear();
            self.cur.resize(n * nb, Block::default());
            self.prev.clear();
            self.prev.resize(n * nb, Block::default());
            let cache = self.cache;
            if serial(n * genes) || pool.threads() == 1 {
                for (i, row) in self.cur.chunks_exact_mut(nb).enumerate() {
                    scores[i] = cache.eval_full(pop.genome(i), row).fitness;
                }
            } else {
                let rows = DisjointSlice::new(&mut self.cur);
                let slots = DisjointSlice::new(scores);
                let (rows, slots) = (&rows, &slots);
                pool.for_each(n, |i| {
                    // SAFETY: per-index rows are pairwise disjoint and the
                    // pool claims each index exactly once.
                    let row = unsafe { rows.slice_mut(i * nb, nb) };
                    let value = cache.eval_full(pop.genome(i), row);
                    // SAFETY: sole writer of slot `i` (same claim).
                    unsafe { slots.write(i, value.fitness) };
                });
            }
            stats.full_evals += n as u64;
            stats.genes_evaluated += (n * genes) as u64;
            if mc_obs::is_enabled() {
                mc_obs::counter("ga.evals", n as u64);
                mc_obs::counter("ga.genes_evaluated", (n * genes) as u64);
            }
            return;
        };

        // `cur` holds the previous generation's rows (written when that
        // generation was scored); swap so they become the delta source and
        // this generation's rows overwrite the older scratch buffer.
        std::mem::swap(&mut self.cur, &mut self.prev);
        let cache = self.cache;
        let (cur, prev_rows) = (&mut self.cur, &self.prev);
        // Elites first: their rows copy over with their carried scores.
        for slot in 0..skip {
            let parent = pg.prov[slot].parent();
            cur[slot * nb..(slot + 1) * nb]
                .copy_from_slice(&prev_rows[parent * nb..(parent + 1) * nb]);
        }
        let mut delta = 0u64;
        let mut carried = 0u64;
        let mut genes_re = 0u64;
        if serial((n - skip) * genes) || pool.threads() == 1 {
            for i in skip..n {
                let pv = pg.prov[i];
                let parent = pv.parent();
                let d = cache.eval_delta(
                    pop.genome(i),
                    pg.pop.genome(parent),
                    &prev_rows[parent * nb..(parent + 1) * nb],
                    &mut cur[i * nb..(i + 1) * nb],
                    pv.crossover(),
                    pv.mutation(),
                );
                match d.value {
                    Some(v) => {
                        scores[i] = v.fitness;
                        delta += 1;
                        genes_re += u64::from(d.genes_recomputed);
                    }
                    None => {
                        scores[i] = pg.scores[parent];
                        carried += 1;
                    }
                }
            }
        } else {
            let delta_ct = AtomicU64::new(0);
            let carried_ct = AtomicU64::new(0);
            let genes_ct = AtomicU64::new(0);
            let rows = DisjointSlice::new(cur);
            let slots = DisjointSlice::new(scores);
            let (rows, slots) = (&rows, &slots);
            pool.for_each(n - skip, |j| {
                let i = skip + j;
                let pv = pg.prov[i];
                let parent = pv.parent();
                // SAFETY: the pool claims each index exactly once and
                // per-index rows are pairwise disjoint (elite rows below
                // `skip` are never indexed here).
                let row = unsafe { rows.slice_mut(i * nb, nb) };
                let d = cache.eval_delta(
                    pop.genome(i),
                    pg.pop.genome(parent),
                    &prev_rows[parent * nb..(parent + 1) * nb],
                    row,
                    pv.crossover(),
                    pv.mutation(),
                );
                match d.value {
                    Some(v) => {
                        // SAFETY: sole writer of slot `i` (same claim).
                        unsafe { slots.write(i, v.fitness) };
                        delta_ct.fetch_add(1, Ordering::Relaxed);
                        genes_ct.fetch_add(u64::from(d.genes_recomputed), Ordering::Relaxed);
                    }
                    None => {
                        // SAFETY: sole writer of slot `i` (same claim).
                        unsafe { slots.write(i, pg.scores[parent]) };
                        carried_ct.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            delta = delta_ct.into_inner();
            carried = carried_ct.into_inner();
            genes_re = genes_ct.into_inner();
        }
        stats.delta_evals += delta;
        stats.carried += carried;
        stats.genes_evaluated += genes_re;
        if mc_obs::is_enabled() {
            mc_obs::counter("ga.evals", delta);
            mc_obs::counter("ga.delta_evals", delta);
            mc_obs::counter("ga.carried", carried);
            mc_obs::counter("ga.genes_evaluated", genes_re);
        }
    }
}

/// Tournament selection: the fittest of `k` uniformly drawn individuals.
fn tournament<R: Rng + ?Sized>(scores: &[f64], k: usize, rng: &mut R) -> usize {
    let mut winner = rng.random_range(0..scores.len());
    for _ in 1..k {
        let challenger = rng.random_range(0..scores.len());
        if scores[challenger] > scores[winner] {
            winner = challenger;
        }
    }
    winner
}

/// Two-point crossover: swaps the segment between two cut points and
/// returns the inclusive `(lo, hi)` span that was exchanged.
/// Degenerates to a full swap for single-gene chromosomes.
fn two_point_crossover<R: Rng + ?Sized>(
    a: &mut [f64],
    b: &mut [f64],
    rng: &mut R,
) -> (usize, usize) {
    let n = a.len();
    if n == 1 {
        std::mem::swap(&mut a[0], &mut b[0]);
        return (0, 0);
    }
    let mut p1 = rng.random_range(0..n);
    let mut p2 = rng.random_range(0..n);
    if p1 > p2 {
        std::mem::swap(&mut p1, &mut p2);
    }
    for i in p1..=p2 {
        std::mem::swap(&mut a[i], &mut b[i]);
    }
    (p1, p2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let ok = GaConfig::default();
        assert!(ok.validate().is_ok());
        assert!(GaConfig {
            population_size: 1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            generations: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            crossover_probability: 1.1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            mutation_probability: -0.1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            tournament_size: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            tournament_size: 100,
            population_size: 10,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig { elitism: 64, ..ok }.validate().is_err());
    }

    #[test]
    fn config_deserializes_without_new_knobs() {
        // Configs serialized before the memo/serial knobs existed must keep
        // their historical behaviour: memo on, fallback disabled.
        let cfg: GaConfig = serde_json::from_str(
            r#"{"population_size":64,"generations":80,"crossover_probability":0.8,
                "mutation_probability":0.2,"tournament_size":5,"elitism":2,"seed":0}"#,
        )
        .unwrap();
        assert!(!cfg.disable_memo);
        assert_eq!(cfg.serial_eval_threshold, 0);
        assert_eq!(cfg.threads, 0);
    }

    #[test]
    fn bounds_validation() {
        assert!(GeneBounds::new(1.0, 0.0).is_err());
        assert!(GeneBounds::new(f64::NAN, 1.0).is_err());
        assert!(GeneBounds::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn empty_chromosome_is_rejected() {
        let r = optimize(&[], |_| 0.0, &GaConfig::default());
        assert!(matches!(r.unwrap_err(), OptError::EmptyChromosome));
    }

    #[test]
    fn finds_one_dimensional_optimum() {
        let bounds = [GeneBounds::new(0.0, 10.0).unwrap()];
        let r = optimize(&bounds, |c| -(c[0] - 7.0).powi(2), &GaConfig::default()).unwrap();
        assert!((r.best[0] - 7.0).abs() < 0.3, "got {}", r.best[0]);
    }

    #[test]
    fn finds_multi_dimensional_optimum() {
        // Sphere function, optimum at (1, 2, 3, 4).
        let target = [1.0, 2.0, 3.0, 4.0];
        let bounds: Vec<GeneBounds> = (0..4).map(|_| GeneBounds::new(0.0, 5.0).unwrap()).collect();
        let cfg = GaConfig {
            generations: 200,
            population_size: 128,
            ..GaConfig::default()
        };
        let r = optimize(
            &bounds,
            |c| {
                -c.iter()
                    .zip(&target)
                    .map(|(x, t)| (x - t).powi(2))
                    .sum::<f64>()
            },
            &cfg,
        )
        .unwrap();
        for (x, t) in r.best.iter().zip(&target) {
            assert!((x - t).abs() < 0.5, "got {:?}", r.best);
        }
    }

    #[test]
    fn respects_bounds() {
        let bounds = [
            GeneBounds::new(2.0, 3.0).unwrap(),
            GeneBounds::new(-1.0, 0.5).unwrap(),
        ];
        let r = optimize(&bounds, |c| c.iter().sum(), &GaConfig::default()).unwrap();
        assert!((2.0..=3.0).contains(&r.best[0]));
        assert!((-1.0..=0.5).contains(&r.best[1]));
        // Maximising the sum drives genes to their upper bounds.
        assert!(r.best[0] > 2.9);
        assert!(r.best[1] > 0.4);
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap(); 3];
        let cfg = GaConfig::default();
        let a = optimize(&bounds, |c| c.iter().sum(), &cfg).unwrap();
        let b = optimize(&bounds, |c| c.iter().sum(), &cfg).unwrap();
        assert_eq!(a, b);
        let cfg2 = GaConfig { seed: 1, ..cfg };
        let c = optimize(&bounds, |x| x.iter().sum(), &cfg2).unwrap();
        // Different seed explores differently (history differs even if the
        // optimum coincides).
        assert_ne!(a.history, c.history);
    }

    #[test]
    fn memo_and_serial_threshold_are_pure_perf_knobs() {
        // The memo cache and the auto-serial fallback change evaluation
        // cost, never values: every knob combination must produce the
        // byte-identical GaResult.
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap(); 5];
        let f = |c: &[f64]| c.iter().map(|x| x * (1.0 - x)).sum::<f64>();
        let cfg = GaConfig {
            generations: 20,
            population_size: 32,
            threads: 1,
            ..GaConfig::default()
        };
        let reference = optimize(&bounds, f, &cfg).unwrap();
        for disable_memo in [false, true] {
            for serial_eval_threshold in [0, 1, 8192, usize::MAX] {
                for threads in [1, 2] {
                    let cfg = GaConfig {
                        disable_memo,
                        serial_eval_threshold,
                        threads,
                        ..cfg
                    };
                    let r = optimize(&bounds, f, &cfg).unwrap();
                    assert_eq!(
                        r, reference,
                        "memo off={disable_memo} threshold={serial_eval_threshold} \
                         threads={threads} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn eval_stats_are_consistent() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap(); 4];
        let f = |c: &[f64]| c.iter().sum::<f64>();
        let cfg = GaConfig {
            generations: 15,
            population_size: 24,
            threads: 1,
            ..GaConfig::default()
        };
        let (_, stats) = optimize_with_stats(&bounds, f, &cfg).unwrap();
        // Every considered slot was served exactly one way.
        assert_eq!(
            stats.considered,
            stats.full_evals
                + stats.delta_evals
                + stats.carried
                + stats.memo_hits
                + stats.batch_dups
        );
        // Gen 0 evaluates the whole population; later generations skip
        // elites.
        assert_eq!(stats.considered, 24 + 15 * (24 - 2));
        assert_eq!(stats.genes_total, stats.considered * 4);
        assert_eq!(stats.genes_evaluated, stats.full_evals * 4);
        // A converging run must hit the memo at least once.
        assert!(stats.memo_hits > 0);
        // The closure path never delta-patches or carries.
        assert_eq!(stats.delta_evals, 0);
        assert_eq!(stats.carried, 0);

        let cfg = GaConfig {
            disable_memo: true,
            ..cfg
        };
        let (_, ablated) = optimize_with_stats(&bounds, f, &cfg).unwrap();
        // Memo off: every considered slot is a fresh full evaluation.
        assert_eq!(ablated.considered, ablated.full_evals);
        assert_eq!(ablated.memo_hits, 0);
        assert_eq!(ablated.batch_dups, 0);
    }

    #[test]
    fn best_fitness_is_monotone_over_generations() {
        let bounds = [GeneBounds::new(-5.0, 5.0).unwrap(); 2];
        let r = optimize(
            &bounds,
            |c| -(c[0].powi(2) + c[1].powi(2)),
            &GaConfig::default(),
        )
        .unwrap();
        // With elitism, the running best never regresses.
        let mut prev = f64::NEG_INFINITY;
        for g in &r.history {
            assert!(g.best >= prev - 1e-12, "generation {}", g.generation);
            prev = g.best;
        }
    }

    #[test]
    fn every_genome_non_finite_still_completes() {
        // Regression: with *every* objective value non-finite the elitism
        // ordering must stay total (no partial_cmp panic) and the run must
        // finish with the sentinel best rather than aborting.
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap(); 2];
        let cfg = GaConfig {
            generations: 5,
            population_size: 16,
            elitism: 4,
            ..GaConfig::default()
        };
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = optimize(&bounds, |_| bad, &cfg).unwrap();
            assert_eq!(r.best_fitness, f64::NEG_INFINITY, "objective {bad}");
            assert!(r.history.iter().all(|g| g.best == f64::NEG_INFINITY));
        }
    }

    #[test]
    fn non_finite_fitness_is_never_selected_as_best() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap()];
        // NaN on the left half, increasing on the right half.
        let r = optimize(
            &bounds,
            |c| {
                if c[0] < 0.5 {
                    f64::NAN
                } else {
                    c[0]
                }
            },
            &GaConfig::default(),
        )
        .unwrap();
        assert!(r.best[0] >= 0.5);
        assert!(r.best_fitness.is_finite());
    }

    #[test]
    fn single_gene_crossover_swaps() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = [1.0];
        let mut b = [2.0];
        assert_eq!(two_point_crossover(&mut a, &mut b, &mut rng), (0, 0));
        assert_eq!(a[0], 2.0);
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn crossover_preserves_multiset_of_genes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut a = [1.0, 2.0, 3.0, 4.0, 5.0];
            let mut b = [10.0, 20.0, 30.0, 40.0, 50.0];
            let (p1, p2) = two_point_crossover(&mut a, &mut b, &mut rng);
            assert!(p1 <= p2 && p2 < 5);
            for i in 0..5 {
                let pair = (a[i].min(b[i]), a[i].max(b[i]));
                assert_eq!(pair, ((i + 1) as f64, ((i + 1) * 10) as f64));
                // The reported span is exactly the swapped range.
                let swapped = (p1..=p2).contains(&i);
                assert_eq!(a[i] > 6.0, swapped, "gene {i}, span ({p1}, {p2})");
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn result_respects_bounds(seed in 0u64..1_000, genes in 1usize..6) {
                let bounds: Vec<GeneBounds> = (0..genes)
                    .map(|i| GeneBounds::new(i as f64, i as f64 + 2.0).unwrap())
                    .collect();
                let cfg = GaConfig { seed, generations: 10, population_size: 16, ..GaConfig::default() };
                let r = optimize(&bounds, |c| c.iter().sum(), &cfg).unwrap();
                for (x, b) in r.best.iter().zip(&bounds) {
                    prop_assert!((b.lo..=b.hi).contains(x));
                }
            }

            #[test]
            fn ga_beats_random_baseline(seed in 0u64..200) {
                // On a smooth unimodal function, 80 generations of GA must
                // at least match the best of its own initial population.
                let bounds = [GeneBounds::new(-10.0, 10.0).unwrap(); 3];
                let f = |c: &[f64]| -c.iter().map(|x| (x - 1.5).powi(2)).sum::<f64>();
                let cfg = GaConfig { seed, ..GaConfig::default() };
                let r = optimize(&bounds, f, &cfg).unwrap();
                prop_assert!(r.best_fitness >= r.history[0].best);
            }
        }
    }
}
