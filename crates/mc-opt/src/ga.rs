//! A from-scratch genetic algorithm.
//!
//! The paper solves its WCET-assignment problem (Eq. 13) with DEAP using
//! two-point crossover, single-point mutation, and tournament selection
//! with five participants (§V: `p_c = 0.8`, `p_m = 0.2`). This module
//! implements exactly that algorithm over bounded real-valued chromosomes,
//! generic in the fitness function, fully deterministic per seed.

use crate::OptError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inclusive bounds for one gene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneBounds {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound (≥ `lo`).
    pub hi: f64,
}

impl GeneBounds {
    /// Creates bounds after validating `lo ≤ hi` and finiteness.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] on violation.
    pub fn new(lo: f64, hi: f64) -> Result<Self, OptError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(OptError::InvalidConfig {
                reason: "gene bounds must be finite with lo <= hi",
            });
        }
        Ok(GeneBounds { lo, hi })
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.hi > self.lo {
            rng.random_range(self.lo..=self.hi)
        } else {
            self.lo
        }
    }

    fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

/// GA hyper-parameters. Defaults match the paper's §V setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population_size: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability that a selected pair undergoes two-point crossover.
    pub crossover_probability: f64,
    /// Probability that an offspring undergoes single-point mutation.
    pub mutation_probability: f64,
    /// Participants per tournament.
    pub tournament_size: usize,
    /// Best individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population_size: 64,
            generations: 80,
            crossover_probability: 0.8,
            mutation_probability: 0.2,
            tournament_size: 5,
            elitism: 2,
            seed: 0,
        }
    }
}

impl GaConfig {
    fn validate(&self) -> Result<(), OptError> {
        let err = |reason| Err(OptError::InvalidConfig { reason });
        if self.population_size < 2 {
            return err("population_size must be at least 2");
        }
        if self.generations == 0 {
            return err("generations must be non-zero");
        }
        for (p, name) in [
            (self.crossover_probability, "crossover_probability"),
            (self.mutation_probability, "mutation_probability"),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                let _ = name;
                return err("probabilities must be in [0, 1]");
            }
        }
        if self.tournament_size == 0 || self.tournament_size > self.population_size {
            return err("tournament_size must be in [1, population_size]");
        }
        if self.elitism >= self.population_size {
            return err("elitism must be smaller than the population");
        }
        Ok(())
    }
}

/// Per-generation statistics, for convergence plots and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness in the generation.
    pub best: f64,
    /// Mean fitness of the generation.
    pub mean: f64,
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaResult {
    /// The best chromosome found across all generations.
    pub best: Vec<f64>,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation convergence statistics.
    pub history: Vec<GenerationStats>,
}

/// Maximises `fitness` over chromosomes bounded by `bounds`.
///
/// Fitness values must be finite; non-finite values are treated as
/// `f64::NEG_INFINITY` (never selected).
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] for invalid hyper-parameters and
/// [`OptError::EmptyChromosome`] when `bounds` is empty.
///
/// # Example
///
/// ```
/// use mc_opt::ga::{optimize, GaConfig, GeneBounds};
///
/// # fn main() -> Result<(), mc_opt::OptError> {
/// // Maximise -(x-3)² over [0, 10]: optimum at x = 3.
/// let bounds = [GeneBounds::new(0.0, 10.0)?];
/// let result = optimize(&bounds, |c| -(c[0] - 3.0).powi(2), &GaConfig::default())?;
/// assert!((result.best[0] - 3.0).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
pub fn optimize<F>(bounds: &[GeneBounds], fitness: F, cfg: &GaConfig) -> Result<GaResult, OptError>
where
    F: Fn(&[f64]) -> f64,
{
    cfg.validate()?;
    if bounds.is_empty() {
        return Err(OptError::EmptyChromosome);
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let genes = bounds.len();
    let eval = |c: &[f64]| {
        let f = fitness(c);
        if f.is_finite() {
            f
        } else {
            f64::NEG_INFINITY
        }
    };

    // Initial population: uniformly sampled within bounds.
    let mut population: Vec<Vec<f64>> = (0..cfg.population_size)
        .map(|_| bounds.iter().map(|b| b.sample(&mut rng)).collect())
        .collect();
    let mut scores: Vec<f64> = population.iter().map(|c| eval(c)).collect();

    let mut best = population[0].clone();
    let mut best_fitness = scores[0];
    let mut history = Vec::with_capacity(cfg.generations);

    for generation in 0..cfg.generations {
        // Track statistics and the all-time best.
        let mut gen_best = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for (c, &s) in population.iter().zip(&scores) {
            if s > best_fitness {
                best_fitness = s;
                best = c.clone();
            }
            gen_best = gen_best.max(s);
            sum += if s.is_finite() { s } else { 0.0 };
        }
        history.push(GenerationStats {
            generation,
            best: gen_best,
            mean: sum / population.len() as f64,
        });

        // Elitism: carry the top individuals over unchanged.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));
        let mut next: Vec<Vec<f64>> = order
            .iter()
            .take(cfg.elitism)
            .map(|&i| population[i].clone())
            .collect();

        // Fill the rest via tournament selection + variation.
        while next.len() < cfg.population_size {
            let a = tournament(&scores, cfg.tournament_size, &mut rng);
            let b = tournament(&scores, cfg.tournament_size, &mut rng);
            let (mut child1, mut child2) = (population[a].clone(), population[b].clone());
            if rng.random::<f64>() < cfg.crossover_probability {
                two_point_crossover(&mut child1, &mut child2, &mut rng);
            }
            for child in [&mut child1, &mut child2] {
                if rng.random::<f64>() < cfg.mutation_probability {
                    let g = rng.random_range(0..genes);
                    child[g] = bounds[g].sample(&mut rng);
                }
                for (x, b) in child.iter_mut().zip(bounds) {
                    *x = b.clamp(*x);
                }
            }
            next.push(child1);
            if next.len() < cfg.population_size {
                next.push(child2);
            }
        }
        population = next;
        scores = population.iter().map(|c| eval(c)).collect();
    }

    // Final sweep over the last generation.
    for (c, &s) in population.iter().zip(&scores) {
        if s > best_fitness {
            best_fitness = s;
            best = c.clone();
        }
    }

    Ok(GaResult {
        best,
        best_fitness,
        history,
    })
}

/// Tournament selection: the fittest of `k` uniformly drawn individuals.
fn tournament<R: Rng + ?Sized>(scores: &[f64], k: usize, rng: &mut R) -> usize {
    let mut winner = rng.random_range(0..scores.len());
    for _ in 1..k {
        let challenger = rng.random_range(0..scores.len());
        if scores[challenger] > scores[winner] {
            winner = challenger;
        }
    }
    winner
}

/// Two-point crossover: swaps the segment between two cut points.
/// Degenerates to a full swap for single-gene chromosomes.
fn two_point_crossover<R: Rng + ?Sized>(a: &mut [f64], b: &mut [f64], rng: &mut R) {
    let n = a.len();
    if n == 1 {
        std::mem::swap(&mut a[0], &mut b[0]);
        return;
    }
    let mut p1 = rng.random_range(0..n);
    let mut p2 = rng.random_range(0..n);
    if p1 > p2 {
        std::mem::swap(&mut p1, &mut p2);
    }
    for i in p1..=p2 {
        std::mem::swap(&mut a[i], &mut b[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let ok = GaConfig::default();
        assert!(ok.validate().is_ok());
        assert!(GaConfig {
            population_size: 1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            generations: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            crossover_probability: 1.1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            mutation_probability: -0.1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            tournament_size: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig {
            tournament_size: 100,
            population_size: 10,
            ..ok
        }
        .validate()
        .is_err());
        assert!(GaConfig { elitism: 64, ..ok }.validate().is_err());
    }

    #[test]
    fn bounds_validation() {
        assert!(GeneBounds::new(1.0, 0.0).is_err());
        assert!(GeneBounds::new(f64::NAN, 1.0).is_err());
        assert!(GeneBounds::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn empty_chromosome_is_rejected() {
        let r = optimize(&[], |_| 0.0, &GaConfig::default());
        assert!(matches!(r.unwrap_err(), OptError::EmptyChromosome));
    }

    #[test]
    fn finds_one_dimensional_optimum() {
        let bounds = [GeneBounds::new(0.0, 10.0).unwrap()];
        let r = optimize(&bounds, |c| -(c[0] - 7.0).powi(2), &GaConfig::default()).unwrap();
        assert!((r.best[0] - 7.0).abs() < 0.3, "got {}", r.best[0]);
    }

    #[test]
    fn finds_multi_dimensional_optimum() {
        // Sphere function, optimum at (1, 2, 3, 4).
        let target = [1.0, 2.0, 3.0, 4.0];
        let bounds: Vec<GeneBounds> = (0..4).map(|_| GeneBounds::new(0.0, 5.0).unwrap()).collect();
        let cfg = GaConfig {
            generations: 200,
            population_size: 128,
            ..GaConfig::default()
        };
        let r = optimize(
            &bounds,
            |c| {
                -c.iter()
                    .zip(&target)
                    .map(|(x, t)| (x - t).powi(2))
                    .sum::<f64>()
            },
            &cfg,
        )
        .unwrap();
        for (x, t) in r.best.iter().zip(&target) {
            assert!((x - t).abs() < 0.5, "got {:?}", r.best);
        }
    }

    #[test]
    fn respects_bounds() {
        let bounds = [
            GeneBounds::new(2.0, 3.0).unwrap(),
            GeneBounds::new(-1.0, 0.5).unwrap(),
        ];
        let r = optimize(&bounds, |c| c.iter().sum(), &GaConfig::default()).unwrap();
        assert!((2.0..=3.0).contains(&r.best[0]));
        assert!((-1.0..=0.5).contains(&r.best[1]));
        // Maximising the sum drives genes to their upper bounds.
        assert!(r.best[0] > 2.9);
        assert!(r.best[1] > 0.4);
    }

    #[test]
    fn deterministic_per_seed() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap(); 3];
        let cfg = GaConfig::default();
        let a = optimize(&bounds, |c| c.iter().sum(), &cfg).unwrap();
        let b = optimize(&bounds, |c| c.iter().sum(), &cfg).unwrap();
        assert_eq!(a, b);
        let cfg2 = GaConfig { seed: 1, ..cfg };
        let c = optimize(&bounds, |x| x.iter().sum(), &cfg2).unwrap();
        // Different seed explores differently (history differs even if the
        // optimum coincides).
        assert_ne!(a.history, c.history);
    }

    #[test]
    fn best_fitness_is_monotone_over_generations() {
        let bounds = [GeneBounds::new(-5.0, 5.0).unwrap(); 2];
        let r = optimize(
            &bounds,
            |c| -(c[0].powi(2) + c[1].powi(2)),
            &GaConfig::default(),
        )
        .unwrap();
        // With elitism, the running best never regresses.
        let mut prev = f64::NEG_INFINITY;
        for g in &r.history {
            assert!(g.best >= prev - 1e-12, "generation {}", g.generation);
            prev = g.best;
        }
    }

    #[test]
    fn non_finite_fitness_is_never_selected_as_best() {
        let bounds = [GeneBounds::new(0.0, 1.0).unwrap()];
        // NaN on the left half, increasing on the right half.
        let r = optimize(
            &bounds,
            |c| {
                if c[0] < 0.5 {
                    f64::NAN
                } else {
                    c[0]
                }
            },
            &GaConfig::default(),
        )
        .unwrap();
        assert!(r.best[0] >= 0.5);
        assert!(r.best_fitness.is_finite());
    }

    #[test]
    fn single_gene_crossover_swaps() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut a = [1.0];
        let mut b = [2.0];
        two_point_crossover(&mut a, &mut b, &mut rng);
        assert_eq!(a[0], 2.0);
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn crossover_preserves_multiset_of_genes() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let mut a = [1.0, 2.0, 3.0, 4.0, 5.0];
            let mut b = [10.0, 20.0, 30.0, 40.0, 50.0];
            two_point_crossover(&mut a, &mut b, &mut rng);
            for i in 0..5 {
                let pair = (a[i].min(b[i]), a[i].max(b[i]));
                assert_eq!(pair, ((i + 1) as f64, ((i + 1) * 10) as f64));
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn result_respects_bounds(seed in 0u64..1_000, genes in 1usize..6) {
                let bounds: Vec<GeneBounds> = (0..genes)
                    .map(|i| GeneBounds::new(i as f64, i as f64 + 2.0).unwrap())
                    .collect();
                let cfg = GaConfig { seed, generations: 10, population_size: 16, ..GaConfig::default() };
                let r = optimize(&bounds, |c| c.iter().sum(), &cfg).unwrap();
                for (x, b) in r.best.iter().zip(&bounds) {
                    prop_assert!((b.lo..=b.hi).contains(x));
                }
            }

            #[test]
            fn ga_beats_random_baseline(seed in 0u64..200) {
                // On a smooth unimodal function, 80 generations of GA must
                // at least match the best of its own initial population.
                let bounds = [GeneBounds::new(-10.0, 10.0).unwrap(); 3];
                let f = |c: &[f64]| -c.iter().map(|x| (x - 1.5).powi(2)).sum::<f64>();
                let cfg = GaConfig { seed, ..GaConfig::default() };
                let r = optimize(&bounds, f, &cfg).unwrap();
                prop_assert!(r.best_fitness >= r.history[0].best);
            }
        }
    }
}
