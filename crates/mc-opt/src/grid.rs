//! Grid-based search over Chebyshev factors.
//!
//! Two uses: the *uniform-n sweep* behind the paper's Figs. 2–3 (one shared
//! factor for all HC tasks), and a brute-force per-task grid search used in
//! tests as an independent cross-check of the GA.

use crate::problem::{ObjectiveValue, Solution, WcetProblem};
use crate::OptError;
use serde::{Deserialize, Serialize};

/// One point of a uniform-n sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The uniform factor applied to all HC tasks.
    pub n: f64,
    /// The objective at that factor.
    pub objective: ObjectiveValue,
}

/// Evaluates the objective at each uniform factor in `ns` (Fig. 2a/2b data).
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] when `ns` is empty or contains a
/// negative/non-finite factor.
pub fn uniform_sweep(problem: &WcetProblem, ns: &[f64]) -> Result<Vec<SweepPoint>, OptError> {
    uniform_sweep_with_pool(problem, ns, &mc_par::WorkerPool::serial())
}

/// [`uniform_sweep`] with the points evaluated in parallel on `pool`.
/// Each point is independent, so the output is identical for any thread
/// count; the figure binaries sweep hundreds of points per task set and
/// share the batch layer's pool here.
///
/// # Errors
///
/// Same conditions as [`uniform_sweep`].
pub fn uniform_sweep_with_pool(
    problem: &WcetProblem,
    ns: &[f64],
    pool: &mc_par::WorkerPool,
) -> Result<Vec<SweepPoint>, OptError> {
    if ns.is_empty() {
        return Err(OptError::InvalidConfig {
            reason: "sweep requires at least one factor",
        });
    }
    if ns.iter().any(|&n| !n.is_finite() || n < 0.0) {
        return Err(OptError::InvalidConfig {
            reason: "sweep factors must be finite and non-negative",
        });
    }
    let mut points = vec![
        SweepPoint {
            n: 0.0,
            objective: ObjectiveValue {
                p_ms: 0.0,
                max_u_lc_lo: 0.0,
                u_hc_lo: 0.0,
                fitness: 0.0,
            },
        };
        ns.len()
    ];
    pool.fill(&mut points, |i| SweepPoint {
        n: ns[i],
        objective: problem.objective_uniform(ns[i]),
    });
    Ok(points)
}

/// The uniform factor (among `ns`) maximising Eq. 13 — the paper's
/// "optimum n" in Fig. 2b.
///
/// # Errors
///
/// Same conditions as [`uniform_sweep`], plus [`OptError::InvalidConfig`]
/// if the sweep comes back empty.
pub fn best_uniform(problem: &WcetProblem, ns: &[f64]) -> Result<SweepPoint, OptError> {
    let sweep = uniform_sweep(problem, ns)?;
    // `total_cmp` never panics, and demoting NaN to -inf first keeps a
    // pathological objective from *winning* the argmax (total order puts
    // positive NaN above +inf): bad points lose, the campaign survives.
    let key = |p: &SweepPoint| {
        let f = p.objective.fitness;
        if f.is_nan() {
            f64::NEG_INFINITY
        } else {
            f
        }
    };
    sweep
        .into_iter()
        .max_by(|a, b| key(a).total_cmp(&key(b)))
        .ok_or(OptError::InvalidConfig {
            reason: "uniform sweep produced no points",
        })
}

/// Integer sweep `0..=max_n`, the grid the paper plots.
///
/// # Errors
///
/// Same conditions as [`uniform_sweep`].
pub fn integer_sweep(problem: &WcetProblem, max_n: u32) -> Result<Vec<SweepPoint>, OptError> {
    let ns: Vec<f64> = (0..=max_n).map(f64::from).collect();
    uniform_sweep(problem, &ns)
}

/// Exhaustive per-task grid search: every combination of the given factor
/// grid across all HC tasks. Exponential in the task count — use only for
/// small problems (tests cross-check the GA against this).
///
/// # Errors
///
/// Returns [`OptError::InvalidConfig`] when the grid is empty or the search
/// space exceeds `10^7` combinations, and [`OptError::EmptyChromosome`] for
/// a problem with no HC tasks.
pub fn exhaustive_search(problem: &WcetProblem, grid: &[f64]) -> Result<Solution, OptError> {
    if grid.is_empty() {
        return Err(OptError::InvalidConfig {
            reason: "grid must be non-empty",
        });
    }
    let dim = problem.dimension();
    if dim == 0 {
        return Err(OptError::EmptyChromosome);
    }
    let combos = (grid.len() as f64).powi(dim as i32);
    if combos > 1e7 {
        return Err(OptError::InvalidConfig {
            reason: "exhaustive search space too large",
        });
    }
    let mut indices = vec![0usize; dim];
    let mut best: Option<Solution> = None;
    loop {
        let factors: Vec<f64> = indices.iter().map(|&i| grid[i]).collect();
        let objective = problem.objective(&factors);
        let better = best
            .as_ref()
            .is_none_or(|b| objective.fitness > b.objective.fitness);
        if better {
            best = Some(Solution { factors, objective });
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == dim {
                return Ok(best.expect("at least one combination evaluated"));
            }
            indices[k] += 1;
            if indices[k] < grid.len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::GaConfig;
    use crate::problem::ProblemConfig;
    use mc_task::time::Duration;
    use mc_task::{Criticality, ExecutionProfile, McTask, TaskId, TaskSet};

    fn problem() -> WcetProblem {
        let t0 = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(30))
            .c_hi(Duration::from_millis(30))
            .profile(ExecutionProfile::new(3.0e6, 0.5e6, 30.0e6).unwrap())
            .build()
            .unwrap();
        let t1 = McTask::builder(TaskId::new(1))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(200))
            .c_lo(Duration::from_millis(50))
            .c_hi(Duration::from_millis(50))
            .profile(ExecutionProfile::new(5.0e6, 2.0e6, 50.0e6).unwrap())
            .build()
            .unwrap();
        let ts = TaskSet::from_tasks(vec![t0, t1]).unwrap();
        WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap()
    }

    #[test]
    fn sweep_evaluates_each_point() {
        let p = problem();
        let sweep = uniform_sweep(&p, &[0.0, 1.0, 2.0]).unwrap();
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].n, 0.0);
        // n = 0 → P_MS = 1 → fitness 0.
        assert_eq!(sweep[0].objective.fitness, 0.0);
        assert!(sweep[1].objective.fitness > 0.0);
    }

    #[test]
    fn pooled_sweep_is_identical_for_any_thread_count() {
        let p = problem();
        let ns: Vec<f64> = (0..=60).map(|i| f64::from(i) * 0.5).collect();
        let serial = uniform_sweep(&p, &ns).unwrap();
        for threads in [2usize, 0] {
            let pool = mc_par::WorkerPool::new(threads);
            let pooled = uniform_sweep_with_pool(&p, &ns, &pool).unwrap();
            assert_eq!(serial, pooled);
        }
    }

    #[test]
    fn sweep_rejects_bad_input() {
        let p = problem();
        assert!(uniform_sweep(&p, &[]).is_err());
        assert!(uniform_sweep(&p, &[-1.0]).is_err());
        assert!(uniform_sweep(&p, &[f64::NAN]).is_err());
        // best_uniform surfaces the same errors instead of panicking on
        // an empty sweep.
        assert!(matches!(
            best_uniform(&p, &[]),
            Err(OptError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn p_ms_monotone_decreasing_along_sweep() {
        let p = problem();
        let sweep = integer_sweep(&p, 30).unwrap();
        for pair in sweep.windows(2) {
            assert!(pair[1].objective.p_ms <= pair[0].objective.p_ms + 1e-12);
            assert!(pair[1].objective.max_u_lc_lo <= pair[0].objective.max_u_lc_lo + 1e-12);
        }
    }

    #[test]
    fn best_uniform_is_the_argmax() {
        let p = problem();
        let ns: Vec<f64> = (0..=40).map(f64::from).collect();
        let best = best_uniform(&p, &ns).unwrap();
        for &n in &ns {
            assert!(
                best.objective.fitness >= p.objective_uniform(n).fitness - 1e-12,
                "uniform n = {n} beats the reported best"
            );
        }
        // The optimum is interior: better than both extremes.
        assert!(best.n > 0.0);
        assert!(best.n < 40.0);
    }

    #[test]
    fn exhaustive_matches_or_beats_uniform() {
        let p = problem();
        let grid: Vec<f64> = (0..=20).map(f64::from).collect();
        let ex = exhaustive_search(&p, &grid).unwrap();
        let bu = best_uniform(&p, &grid).unwrap();
        assert!(ex.objective.fitness >= bu.objective.fitness - 1e-12);
    }

    #[test]
    fn ga_finds_nearly_exhaustive_quality() {
        let p = problem();
        let grid: Vec<f64> = (0..=25).map(f64::from).collect();
        let ex = exhaustive_search(&p, &grid).unwrap();
        let ga = p
            .solve_ga(&GaConfig {
                generations: 120,
                population_size: 96,
                ..GaConfig::default()
            })
            .unwrap();
        // The GA works over a continuous space, so it must reach at least
        // ~99 % of the integer-grid optimum.
        assert!(
            ga.objective.fitness >= 0.99 * ex.objective.fitness,
            "GA {} vs exhaustive {}",
            ga.objective.fitness,
            ex.objective.fitness
        );
    }

    #[test]
    fn exhaustive_guards() {
        let p = problem();
        assert!(exhaustive_search(&p, &[]).is_err());
        // 10^8 combinations refused: grid of 10 over 8 tasks would pass,
        // simulate via huge grid on 2 tasks: 10^4 fine; use dim trick —
        // a 4000-point grid on 2 tasks is 1.6·10^7 > 10^7.
        let grid: Vec<f64> = (0..4_000).map(|i| i as f64 / 100.0).collect();
        assert!(exhaustive_search(&p, &grid).is_err());
    }
}
