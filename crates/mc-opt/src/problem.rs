//! The paper's optimisation problem (§IV-C).
//!
//! Decision variables: one Chebyshev factor `nᵢ ≥ 0` per HC task, which
//! fixes its optimistic WCET `Cᵢ_LO = ACETᵢ + nᵢ·σᵢ` (Eq. 6) subject to
//! `Cᵢ_LO ≤ WCETᵢ_pes` (Eq. 9). Objective (Eq. 13): maximise
//! `(1 − P_MS_sys) · max(U_LC^LO)` where `P_MS_sys` composes the per-task
//! Chebyshev bounds (Eq. 10) and `max(U_LC^LO)` is the EDF-VD bound of
//! Eqs. 11–12. Infeasible HC demand receives zero fitness (death penalty);
//! Eq. 9 is enforced structurally through the gene bounds (clamp repair).

use crate::ga::{GaConfig, GeneBounds};
use crate::incremental::ObjectiveCache;
use crate::incremental::{optimize_incremental, optimize_incremental_with_pool, FlatPopulation};
use crate::OptError;
use mc_task::time::Duration;
use mc_task::{TaskId, TaskSet};
use serde::{Deserialize, Serialize};

/// Per-HC-task parameters extracted from a task set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HcTaskParams {
    /// The task's identifier in the originating set.
    pub id: TaskId,
    /// ACET in nanoseconds.
    pub acet: f64,
    /// Execution-time standard deviation in nanoseconds.
    pub sigma: f64,
    /// Pessimistic WCET in nanoseconds.
    pub wcet_pes: f64,
    /// Period in nanoseconds.
    pub period: f64,
}

impl HcTaskParams {
    /// `Cᵢ_LO = ACET + n·σ` in nanoseconds (Eq. 6).
    pub fn c_lo(&self, n: f64) -> f64 {
        self.acet + n * self.sigma
    }

    /// LO-mode utilisation contribution at factor `n`.
    pub fn u_lo(&self, n: f64) -> f64 {
        self.c_lo(n) / self.period
    }

    /// HI-mode utilisation contribution.
    pub fn u_hi(&self) -> f64 {
        self.wcet_pes / self.period
    }

    /// Largest factor satisfying Eq. 9.
    pub fn max_factor(&self) -> f64 {
        if self.sigma == 0.0 {
            f64::INFINITY
        } else {
            ((self.wcet_pes - self.acet) / self.sigma).max(0.0)
        }
    }
}

/// The value of the paper's objective at one factor assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveValue {
    /// System mode-switching probability bound (Eq. 10).
    pub p_ms: f64,
    /// Maximum LC utilisation admissible under EDF-VD (Eqs. 11–12).
    pub max_u_lc_lo: f64,
    /// `U_HC^LO` implied by the factors.
    pub u_hc_lo: f64,
    /// The Eq. 13 product `(1 − P_MS) · max(U_LC^LO)`.
    pub fitness: f64,
}

/// A solved factor assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Per-HC-task Chebyshev factors, in [`WcetProblem::tasks`] order.
    pub factors: Vec<f64>,
    /// The objective at those factors.
    pub objective: ObjectiveValue,
}

/// Configuration of the factor search space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemConfig {
    /// Upper cap on any factor, independent of Eq. 9 (the bound
    /// `1/(1+n²)` flattens out long before this; the paper's Fig. 2
    /// explores up to n ≈ 30).
    pub factor_cap: f64,
}

impl Default for ProblemConfig {
    fn default() -> Self {
        ProblemConfig { factor_cap: 50.0 }
    }
}

/// The WCET-assignment optimisation problem for one task set.
#[derive(Debug, Clone, PartialEq)]
pub struct WcetProblem {
    tasks: Vec<HcTaskParams>,
    u_hc_hi: f64,
    config: ProblemConfig,
    /// Derived hot-loop invariants (per-task coefficients in SoA layout
    /// plus the blocked-reduction machinery — see
    /// [`crate::incremental`]) — never serialized; rebuilt from `tasks`
    /// whenever a problem is constructed or deserialized.
    cache: ObjectiveCache,
}

/// Wire-format shadow of [`WcetProblem`]: exactly the serialized fields,
/// so the derived `cache` never leaks into (or gets read from) JSON and
/// the format stays identical to earlier releases.
#[derive(Serialize, Deserialize)]
struct WcetProblemWire {
    tasks: Vec<HcTaskParams>,
    u_hc_hi: f64,
    config: ProblemConfig,
}

impl Serialize for WcetProblem {
    fn to_value(&self) -> serde::Value {
        WcetProblemWire {
            tasks: self.tasks.clone(),
            u_hc_hi: self.u_hc_hi,
            config: self.config,
        }
        .to_value()
    }
}

impl Deserialize for WcetProblem {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let wire = WcetProblemWire::from_value(v)?;
        Ok(WcetProblem::from_parts(
            wire.tasks,
            wire.u_hc_hi,
            wire.config,
        ))
    }
}

impl WcetProblem {
    fn from_parts(tasks: Vec<HcTaskParams>, u_hc_hi: f64, config: ProblemConfig) -> Self {
        let cache = ObjectiveCache::new(&tasks, u_hc_hi);
        WcetProblem {
            tasks,
            u_hc_hi,
            config,
            cache,
        }
    }

    /// Extracts the problem from a task set. Every HC task must carry an
    /// execution profile.
    ///
    /// # Errors
    ///
    /// Returns [`OptError::MissingProfile`] for an HC task without one.
    pub fn from_taskset(ts: &TaskSet, config: ProblemConfig) -> Result<Self, OptError> {
        let mut tasks = Vec::new();
        for t in ts.hc_tasks() {
            let p = t.profile().ok_or(OptError::MissingProfile { id: t.id() })?;
            tasks.push(HcTaskParams {
                id: t.id(),
                acet: p.acet(),
                sigma: p.sigma(),
                wcet_pes: p.wcet_pes(),
                period: t.period().as_nanos() as f64,
            });
        }
        let u_hc_hi = tasks.iter().map(HcTaskParams::u_hi).sum();
        Ok(WcetProblem::from_parts(tasks, u_hc_hi, config))
    }

    /// The per-task parameters, in chromosome order.
    pub fn tasks(&self) -> &[HcTaskParams] {
        &self.tasks
    }

    /// Number of decision variables (HC tasks).
    pub fn dimension(&self) -> usize {
        self.tasks.len()
    }

    /// `U_HC^HI` of the underlying set.
    pub fn u_hc_hi(&self) -> f64 {
        self.u_hc_hi
    }

    /// Gene bounds `[0, min(max_factor, cap)]` (Eq. 9 as clamp repair).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] when the cap is not positive.
    pub fn bounds(&self) -> Result<Vec<GeneBounds>, OptError> {
        if !self.config.factor_cap.is_finite() || self.config.factor_cap <= 0.0 {
            return Err(OptError::InvalidConfig {
                reason: "factor_cap must be finite and positive",
            });
        }
        self.tasks
            .iter()
            .map(|t| GeneBounds::new(0.0, t.max_factor().min(self.config.factor_cap)))
            .collect()
    }

    /// Gene bounds `[0, cap]` that deliberately ignore Eq. 9, leaving the
    /// constraint to the objective's death penalty. Used by the
    /// constraint-handling ablation (DESIGN.md §5) as the alternative to
    /// the default clamp-repair [`WcetProblem::bounds`].
    ///
    /// # Errors
    ///
    /// Returns [`OptError::InvalidConfig`] when the cap is not positive.
    pub fn bounds_penalty_only(&self) -> Result<Vec<GeneBounds>, OptError> {
        if !self.config.factor_cap.is_finite() || self.config.factor_cap <= 0.0 {
            return Err(OptError::InvalidConfig {
                reason: "factor_cap must be finite and positive",
            });
        }
        Ok(vec![
            GeneBounds::new(0.0, self.config.factor_cap)?;
            self.tasks.len()
        ])
    }

    /// Evaluates the paper's objective (Eqs. 10–13) at a factor vector.
    ///
    /// # Panics
    ///
    /// Panics when `factors.len() != self.dimension()`.
    pub fn objective(&self, factors: &[f64]) -> ObjectiveValue {
        assert_eq!(
            factors.len(),
            self.tasks.len(),
            "factor vector must have one entry per HC task"
        );
        self.cache.eval_iter(factors.iter().copied())
    }

    /// The precomputed hot-loop invariants behind [`WcetProblem::objective`]
    /// (per-task SoA coefficients plus blocked partial reductions). Hand
    /// this to [`optimize_incremental`] or the batch entry points to
    /// evaluate without going through the problem's convenience wrappers.
    pub fn objective_cache(&self) -> &ObjectiveCache {
        &self.cache
    }

    /// Evaluates the objective for every genome of a flat population in
    /// one contiguous pass (see [`ObjectiveCache::objective_batch`]).
    ///
    /// # Panics
    ///
    /// Panics on population/output dimension mismatches.
    pub fn objective_batch(&self, genomes: &FlatPopulation, out: &mut [ObjectiveValue]) {
        self.cache.objective_batch(genomes, out);
    }

    /// [`WcetProblem::objective_batch`] fanned out over a worker pool,
    /// bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics on population/output dimension mismatches.
    pub fn objective_batch_with_pool(
        &self,
        pool: &mc_par::WorkerPool,
        genomes: &FlatPopulation,
        out: &mut [ObjectiveValue],
    ) {
        self.cache.objective_batch_with_pool(pool, genomes, out);
    }

    /// Evaluates the objective at a single uniform factor (Fig. 2/3 mode).
    /// Clamps per task to Eq. 9 and the cap, without materialising a
    /// factor vector — the sweep binaries call this in a tight loop.
    pub fn objective_uniform(&self, n: f64) -> ObjectiveValue {
        let cap = self.config.factor_cap;
        self.cache
            .eval_iter(self.tasks.iter().map(|t| n.min(t.max_factor()).min(cap)))
    }

    /// Solves for per-task factors with the genetic algorithm.
    ///
    /// A problem with no HC task has the trivial solution: empty factors,
    /// `P_MS = 0`, `max(U_LC^LO) = 1`.
    ///
    /// # Errors
    ///
    /// Propagates GA configuration errors.
    pub fn solve_ga(&self, cfg: &GaConfig) -> Result<Solution, OptError> {
        if self.tasks.is_empty() {
            return Ok(Self::trivial_solution());
        }
        let bounds = self.bounds()?;
        let (result, _stats) = optimize_incremental(&self.cache, &bounds, cfg)?;
        let objective = self.objective(&result.best);
        Ok(Solution {
            factors: result.best,
            objective,
        })
    }

    /// [`WcetProblem::solve_ga`] on a caller-supplied worker pool, for
    /// batch layers that solve many problems and share one pool (and one
    /// thread budget) across all of them. `cfg.threads` is ignored.
    ///
    /// # Errors
    ///
    /// Propagates GA configuration errors.
    pub fn solve_ga_with_pool(
        &self,
        cfg: &GaConfig,
        pool: &mc_par::WorkerPool,
    ) -> Result<Solution, OptError> {
        if self.tasks.is_empty() {
            return Ok(Self::trivial_solution());
        }
        let bounds = self.bounds()?;
        let (result, _stats) = optimize_incremental_with_pool(&self.cache, &bounds, cfg, pool)?;
        let objective = self.objective(&result.best);
        Ok(Solution {
            factors: result.best,
            objective,
        })
    }

    /// The no-HC-task solution: empty factors, `P_MS = 0`, full LC budget.
    fn trivial_solution() -> Solution {
        Solution {
            factors: Vec::new(),
            objective: ObjectiveValue {
                p_ms: 0.0,
                max_u_lc_lo: 1.0,
                u_hc_lo: 0.0,
                fitness: 1.0,
            },
        }
    }

    /// Applies a solved factor vector back onto the task set, setting each
    /// HC task's `C_LO` (rounded up to whole nanoseconds, conservatively).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::DimensionMismatch`] when the factor count does
    /// not match the set's HC tasks, or [`OptError::Task`] when a computed
    /// `C_LO` violates the task invariants.
    pub fn apply(&self, ts: &mut TaskSet, factors: &[f64]) -> Result<(), OptError> {
        if factors.len() != self.tasks.len() {
            return Err(OptError::DimensionMismatch {
                expected: self.tasks.len(),
                got: factors.len(),
            });
        }
        for (params, &n) in self.tasks.iter().zip(factors) {
            let c_lo_ns = params.c_lo(n).min(params.wcet_pes);
            let c_lo = Duration::try_from_nanos_f64_ceil(c_lo_ns)
                .ok_or(OptError::InvalidConfig {
                    reason: "computed C_LO is not representable",
                })?
                .max(Duration::from_nanos(1));
            let task = ts
                .get_mut(params.id)
                .ok_or(OptError::UnknownTask { id: params.id })?;
            // Ceil rounding can land one nanosecond above C_HI; clamp.
            let c_lo = c_lo.min(task.c_hi());
            task.set_c_lo(c_lo).map_err(OptError::Task)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_task::time::Duration;
    use mc_task::{Criticality, ExecutionProfile, McTask};

    /// Two HC tasks with round numbers: periods 100 ms, WCET_pes 30/40 ms,
    /// ACET 3/4 ms, σ 0.5/1.0 ms.
    fn sample_taskset() -> TaskSet {
        let t0 = McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(30))
            .c_hi(Duration::from_millis(30))
            .profile(ExecutionProfile::new(3.0e6, 0.5e6, 30.0e6).unwrap())
            .build()
            .unwrap();
        let t1 = McTask::builder(TaskId::new(1))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(40))
            .c_hi(Duration::from_millis(40))
            .profile(ExecutionProfile::new(4.0e6, 1.0e6, 40.0e6).unwrap())
            .build()
            .unwrap();
        let t2 = McTask::builder(TaskId::new(2))
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .build()
            .unwrap();
        TaskSet::from_tasks(vec![t0, t1, t2]).unwrap()
    }

    fn problem() -> WcetProblem {
        WcetProblem::from_taskset(&sample_taskset(), ProblemConfig::default()).unwrap()
    }

    #[test]
    fn extraction_pulls_hc_tasks_only() {
        let p = problem();
        assert_eq!(p.dimension(), 2);
        assert!((p.u_hc_hi() - 0.7).abs() < 1e-9);
        assert_eq!(p.tasks()[0].id, TaskId::new(0));
    }

    #[test]
    fn missing_profile_is_an_error() {
        let ts = TaskSet::from_tasks(vec![McTask::builder(TaskId::new(0))
            .criticality(Criticality::Hi)
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .c_hi(Duration::from_millis(10))
            .build()
            .unwrap()])
        .unwrap();
        assert!(matches!(
            WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap_err(),
            OptError::MissingProfile { .. }
        ));
    }

    #[test]
    fn objective_hand_computed() {
        let p = problem();
        // n = (2, 2): C_LO = 3+1=4 ms and 4+2=6 ms → u_hc_lo = 0.04+0.06 = 0.1.
        let o = p.objective(&[2.0, 2.0]);
        assert!((o.u_hc_lo - 0.1).abs() < 1e-9);
        // P_MS = 1 − 0.8·0.8 = 0.36 (Eq. 10 with bound 0.2 each).
        assert!((o.p_ms - 0.36).abs() < 1e-9);
        // max U_LC_LO = min(1 − 0.1, 0.3/(0.3+0.1)) = min(0.9, 0.75) = 0.75.
        assert!((o.max_u_lc_lo - 0.75).abs() < 1e-9);
        assert!((o.fitness - 0.64 * 0.75).abs() < 1e-9);
    }

    #[test]
    fn infeasible_factors_get_zero_fitness() {
        let p = problem();
        // Task 0's max factor is (30−3)/0.5 = 54 → n = 60 violates Eq. 9.
        let o = p.objective(&[60.0, 0.0]);
        assert_eq!(o.fitness, 0.0);
        let o = p.objective(&[-1.0, 0.0]);
        assert_eq!(o.fitness, 0.0);
        let o = p.objective(&[f64::NAN, 0.0]);
        assert_eq!(o.fitness, 0.0);
    }

    #[test]
    #[should_panic(expected = "one entry per HC task")]
    fn wrong_dimension_panics() {
        let p = problem();
        let _ = p.objective(&[1.0]);
    }

    #[test]
    fn bounds_respect_eq9_and_cap() {
        let p = problem();
        let b = p.bounds().unwrap();
        // Task 0: max factor 54 → capped at 50. Task 1: (40−4)/1 = 36.
        assert_eq!(b[0].hi, 50.0);
        assert_eq!(b[1].hi, 36.0);
        assert_eq!(b[0].lo, 0.0);

        let bad = WcetProblem {
            config: ProblemConfig { factor_cap: 0.0 },
            ..p
        };
        assert!(bad.bounds().is_err());
    }

    #[test]
    fn uniform_objective_clamps_per_task() {
        let p = problem();
        let o = p.objective_uniform(40.0);
        // Task 1 clamps to 36; neither task is infeasible.
        assert!(o.fitness > 0.0);
    }

    #[test]
    fn ga_solution_beats_extreme_uniform_choices() {
        let p = problem();
        let cfg = GaConfig {
            generations: 60,
            ..GaConfig::default()
        };
        let sol = p.solve_ga(&cfg).unwrap();
        assert!(sol.objective.fitness >= p.objective_uniform(0.0).fitness);
        assert!(sol.objective.fitness >= p.objective_uniform(50.0).fitness);
        // And it should essentially dominate every uniform choice.
        let best_uniform = (0..=50)
            .map(|n| p.objective_uniform(n as f64).fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            sol.objective.fitness >= best_uniform - 1e-3,
            "GA {} vs best uniform {}",
            sol.objective.fitness,
            best_uniform
        );
    }

    #[test]
    fn empty_problem_has_trivial_solution() {
        let ts = TaskSet::from_tasks(vec![McTask::builder(TaskId::new(0))
            .period(Duration::from_millis(100))
            .c_lo(Duration::from_millis(10))
            .build()
            .unwrap()])
        .unwrap();
        let p = WcetProblem::from_taskset(&ts, ProblemConfig::default()).unwrap();
        let sol = p.solve_ga(&GaConfig::default()).unwrap();
        assert!(sol.factors.is_empty());
        assert_eq!(sol.objective.fitness, 1.0);
    }

    #[test]
    fn apply_writes_c_lo_back() {
        let mut ts = sample_taskset();
        let p = problem();
        p.apply(&mut ts, &[2.0, 4.0]).unwrap();
        // C_LO(τ0) = 3 + 2·0.5 = 4 ms; C_LO(τ1) = 4 + 4·1 = 8 ms.
        assert_eq!(
            ts.get(TaskId::new(0)).unwrap().c_lo(),
            Duration::from_millis(4)
        );
        assert_eq!(
            ts.get(TaskId::new(1)).unwrap().c_lo(),
            Duration::from_millis(8)
        );
        // LC task untouched.
        assert_eq!(
            ts.get(TaskId::new(2)).unwrap().c_lo(),
            Duration::from_millis(10)
        );
        // And the set is EDF-VD schedulable afterwards.
        assert!(mc_sched::analysis::edf_vd::analyze(&ts).schedulable);
    }

    #[test]
    fn apply_rejects_wrong_dimension() {
        let mut ts = sample_taskset();
        let p = problem();
        assert!(matches!(
            p.apply(&mut ts, &[1.0]).unwrap_err(),
            OptError::DimensionMismatch { .. }
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn objective_is_in_unit_square(n0 in 0.0..54.0f64, n1 in 0.0..36.0f64) {
                let p = problem();
                let o = p.objective(&[n0, n1]);
                prop_assert!((0.0..=1.0).contains(&o.p_ms));
                prop_assert!((0.0..=1.0).contains(&o.max_u_lc_lo));
                prop_assert!((0.0..=1.0).contains(&o.fitness));
            }

            #[test]
            fn p_ms_decreases_and_u_hc_lo_increases_with_n(
                n in 0.0..35.0f64,
                dn in 0.0..1.0f64,
            ) {
                let p = problem();
                let a = p.objective(&[n, n]);
                let b = p.objective(&[n + dn, n + dn]);
                prop_assert!(b.p_ms <= a.p_ms + 1e-12);
                prop_assert!(b.u_hc_lo >= a.u_hc_lo - 1e-12);
                prop_assert!(b.max_u_lc_lo <= a.max_u_lc_lo + 1e-12);
            }
        }
    }
}
